//! Degree statistics and structural property checks.

use crate::graph::{Graph, NodeId};
use std::collections::BTreeMap;

/// Summary of a graph's degree structure, as reported in the experiment
/// tables (the paper's claims are all about node counts and degree bounds).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct DegreeStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Histogram: degree → number of nodes with that degree.
    pub histogram: BTreeMap<usize, usize>,
}

/// Computes [`DegreeStats`] for a graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let mut histogram = BTreeMap::new();
    for v in g.nodes() {
        *histogram.entry(g.degree(v)).or_insert(0usize) += 1;
    }
    DegreeStats {
        nodes: g.node_count(),
        edges: g.edge_count(),
        min_degree: g.min_degree(),
        max_degree: g.max_degree(),
        histogram,
    }
}

/// Returns `true` if every node has exactly degree `d`.
pub fn is_regular(g: &Graph, d: usize) -> bool {
    g.nodes().all(|v| g.degree(v) == d)
}

/// The average degree (`2|E| / |V|`), or 0 for the empty graph.
pub fn average_degree(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        0.0
    } else {
        2.0 * g.edge_count() as f64 / g.node_count() as f64
    }
}

/// Nodes attaining the maximum degree.
pub fn max_degree_nodes(g: &Graph) -> Vec<NodeId> {
    let max = g.max_degree();
    g.nodes().filter(|&v| g.degree(v) == max).collect()
}

/// Returns `true` if the two graphs have identical node counts, edge counts
/// and degree sequences. This is a cheap necessary condition for isomorphism
/// used as a sanity check when comparing alternative constructions of the
/// same topology.
pub fn same_degree_profile(a: &Graph, b: &Graph) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && a.degree_sequence() == b.degree_sequence()
}

/// Checks whether two graphs on the same node set have exactly the same edge
/// set (i.e. are equal as labelled graphs).
pub fn same_edge_set(a: &Graph, b: &Graph) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && a.edges().all(|(u, v)| b.has_edge(u, v))
}

/// Number of triangles in the graph (each triangle counted once).
///
/// Useful as a cheap structural fingerprint when cross-checking the two edge
/// definitions of the de Bruijn graphs.
pub fn triangle_count(g: &Graph) -> usize {
    let mut count = 0;
    for u in g.nodes() {
        for &v in g.neighbors(u) {
            let v = v as NodeId;
            if v <= u {
                continue;
            }
            // Count common neighbours w > v to count each triangle once.
            for &w in g.neighbors(v) {
                if w as NodeId > v && g.has_edge(u, w as NodeId) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_cycle() {
        let c = generators::cycle(6);
        let s = degree_stats(&c);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.edges, 6);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.histogram.get(&2), Some(&6));
        assert!(is_regular(&c, 2));
        assert!(!is_regular(&generators::path(4), 2));
    }

    #[test]
    fn average_degree_values() {
        assert!((average_degree(&generators::complete(5)) - 4.0).abs() < 1e-12);
        assert_eq!(average_degree(&crate::Graph::empty(0)), 0.0);
    }

    #[test]
    fn max_degree_nodes_of_star() {
        let s = generators::star(5);
        assert_eq!(max_degree_nodes(&s), vec![0]);
    }

    #[test]
    fn degree_profile_comparison() {
        let a = generators::cycle(6);
        let b = crate::ops::relabel(&a, &[5, 4, 3, 2, 1, 0]);
        assert!(same_degree_profile(&a, &b));
        assert!(!same_degree_profile(&a, &generators::path(6)));
    }

    #[test]
    fn edge_set_equality() {
        let a = generators::cycle(5);
        let b = generators::cycle(5);
        assert!(same_edge_set(&a, &b));
        assert!(!same_edge_set(&a, &generators::path(5)));
    }

    #[test]
    fn triangles() {
        assert_eq!(triangle_count(&generators::complete(4)), 4);
        assert_eq!(triangle_count(&generators::cycle(5)), 0);
        assert_eq!(triangle_count(&generators::complete(5)), 10);
    }
}
