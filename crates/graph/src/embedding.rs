//! Graph embeddings (injective edge-preserving node maps).
//!
//! The paper defines: an embedding of `G` into `G'` is a 1-to-1 function
//! `φ : V(G) → V(G')` such that for each edge `(x, y) ∈ E(G)` the pair
//! `(φ(x), φ(y))` is an edge of `G'`. The `(k, G)`-tolerance property is then
//! "for every set `W` of `|V(G')| - k` nodes there is an embedding of `G`
//! into the subgraph induced by `W`". This module provides the embedding
//! type and its verification.

use crate::graph::{Graph, NodeId};

/// An embedding `φ : V(G) → V(H)` represented as a dense map
/// (`map[x] = φ(x)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Embedding {
    map: Vec<NodeId>,
}

/// Why an embedding verification failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EmbeddingError {
    /// The domain size does not match the guest graph.
    DomainSizeMismatch {
        /// Number of nodes in the guest graph.
        expected: usize,
        /// Number of entries in the embedding.
        actual: usize,
    },
    /// Some image node id is not a node of the host graph.
    ImageOutOfRange {
        /// Guest node whose image is invalid.
        guest: NodeId,
        /// The invalid image.
        image: NodeId,
    },
    /// Two guest nodes map to the same host node.
    NotInjective {
        /// First guest node.
        first: NodeId,
        /// Second guest node.
        second: NodeId,
        /// Their common image.
        image: NodeId,
    },
    /// A guest edge is not preserved.
    MissingEdge {
        /// The guest edge that is not preserved.
        guest_edge: (NodeId, NodeId),
        /// Its image, which is not an edge of the host.
        image_edge: (NodeId, NodeId),
    },
}

impl std::fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbeddingError::DomainSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "embedding domain has {actual} entries, guest graph has {expected} nodes"
                )
            }
            EmbeddingError::ImageOutOfRange { guest, image } => {
                write!(f, "image {image} of guest node {guest} is not a host node")
            }
            EmbeddingError::NotInjective {
                first,
                second,
                image,
            } => {
                write!(
                    f,
                    "guest nodes {first} and {second} both map to host node {image}"
                )
            }
            EmbeddingError::MissingEdge {
                guest_edge,
                image_edge,
            } => write!(
                f,
                "guest edge ({}, {}) maps to ({}, {}), which is not a host edge",
                guest_edge.0, guest_edge.1, image_edge.0, image_edge.1
            ),
        }
    }
}

impl std::error::Error for EmbeddingError {}

impl Embedding {
    /// Creates an embedding from the dense map `map[x] = φ(x)`.
    pub fn from_map(map: Vec<NodeId>) -> Self {
        Embedding { map }
    }

    /// The identity embedding on `n` nodes.
    pub fn identity(n: usize) -> Self {
        Embedding {
            map: (0..n).collect(),
        }
    }

    /// The image of guest node `x`.
    pub fn apply(&self, x: NodeId) -> NodeId {
        self.map[x]
    }

    /// The number of guest nodes mapped.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if the embedding maps no nodes.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The underlying dense map.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.map
    }

    /// Composes two embeddings: if `self : G → H` and `outer : H → K`, the
    /// result maps `G → K` by `x ↦ outer(self(x))`.
    pub fn then(&self, outer: &Embedding) -> Embedding {
        Embedding {
            map: self.map.iter().map(|&m| outer.apply(m)).collect(),
        }
    }

    /// Returns the inverse partial map as a vector indexed by host node:
    /// `inv[h] = Some(g)` iff `φ(g) = h`.
    pub fn inverse(&self, host_size: usize) -> Vec<Option<NodeId>> {
        let mut inv = vec![None; host_size];
        for (g, &h) in self.map.iter().enumerate() {
            if h < host_size {
                inv[h] = Some(g);
            }
        }
        inv
    }

    /// Verifies that `self` is an embedding of `guest` into `host`:
    /// the map must be total on `V(guest)`, injective, land inside
    /// `V(host)`, and preserve every guest edge.
    pub fn verify(&self, guest: &Graph, host: &Graph) -> Result<(), EmbeddingError> {
        if self.map.len() != guest.node_count() {
            return Err(EmbeddingError::DomainSizeMismatch {
                expected: guest.node_count(),
                actual: self.map.len(),
            });
        }
        let mut seen: Vec<Option<NodeId>> = vec![None; host.node_count()];
        for (g, &h) in self.map.iter().enumerate() {
            if h >= host.node_count() {
                return Err(EmbeddingError::ImageOutOfRange { guest: g, image: h });
            }
            if let Some(first) = seen[h] {
                return Err(EmbeddingError::NotInjective {
                    first,
                    second: g,
                    image: h,
                });
            }
            seen[h] = Some(g);
        }
        for (x, y) in guest.edges() {
            let (hx, hy) = (self.map[x], self.map[y]);
            if !host.has_edge(hx, hy) {
                return Err(EmbeddingError::MissingEdge {
                    guest_edge: (x, y),
                    image_edge: (hx, hy),
                });
            }
        }
        Ok(())
    }

    /// Convenience wrapper around [`Embedding::verify`] returning a boolean.
    pub fn is_valid(&self, guest: &Graph, host: &Graph) -> bool {
        self.verify(guest, host).is_ok()
    }

    /// The dilation of the embedding: the maximum distance in `host` between
    /// the images of adjacent guest nodes (1 for a true subgraph embedding).
    /// Returns `None` if some image pair is disconnected in the host.
    pub fn dilation(&self, guest: &Graph, host: &Graph) -> Option<usize> {
        let mut searcher = crate::traversal::Searcher::with_capacity(host.node_count());
        let mut path = Vec::new();
        let mut worst = 0usize;
        for (x, y) in guest.edges() {
            if !searcher.shortest_path_into(host, self.map[x], self.map[y], &mut path) {
                return None;
            }
            worst = worst.max(path.len() - 1);
        }
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn identity_embedding_of_subgraph() {
        let c4 = generators::cycle(4);
        let p4 = generators::path(4);
        let id = Embedding::identity(4);
        assert!(id.verify(&p4, &c4).is_ok());
        // The reverse direction fails: the cycle edge (0,3) is not in the path.
        assert!(matches!(
            id.verify(&c4, &p4),
            Err(EmbeddingError::MissingEdge { .. })
        ));
    }

    #[test]
    fn rejects_non_injective() {
        let p2 = generators::path(2);
        let host = generators::complete(3);
        let bad = Embedding::from_map(vec![1, 1]);
        assert!(matches!(
            bad.verify(&p2, &host),
            Err(EmbeddingError::NotInjective { image: 1, .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_and_size_mismatch() {
        let p2 = generators::path(2);
        let host = generators::complete(3);
        assert!(matches!(
            Embedding::from_map(vec![0, 9]).verify(&p2, &host),
            Err(EmbeddingError::ImageOutOfRange { image: 9, .. })
        ));
        assert!(matches!(
            Embedding::from_map(vec![0]).verify(&p2, &host),
            Err(EmbeddingError::DomainSizeMismatch { .. })
        ));
    }

    #[test]
    fn composition() {
        let inner = Embedding::from_map(vec![2, 0, 1]);
        let outer = Embedding::from_map(vec![10, 11, 12]);
        let composed = inner.then(&outer);
        assert_eq!(composed.as_slice(), &[12, 10, 11]);
    }

    #[test]
    fn inverse_map() {
        let e = Embedding::from_map(vec![3, 1]);
        let inv = e.inverse(5);
        assert_eq!(inv, vec![None, Some(1), None, Some(0), None]);
    }

    #[test]
    fn dilation_of_spread_embedding() {
        // Map the path 0-1 onto opposite corners of a 6-cycle: dilation 3.
        let p2 = generators::path(2);
        let c6 = generators::cycle(6);
        let e = Embedding::from_map(vec![0, 3]);
        assert_eq!(e.dilation(&p2, &c6), Some(3));
        assert!(!e.is_valid(&p2, &c6));
    }

    #[test]
    fn display_messages_are_informative() {
        let msg = EmbeddingError::MissingEdge {
            guest_edge: (1, 2),
            image_edge: (5, 7),
        }
        .to_string();
        assert!(msg.contains("(1, 2)") && msg.contains("(5, 7)"));
    }
}
