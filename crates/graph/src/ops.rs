//! Whole-graph operations: induced subgraphs, relabelling, unions.

use crate::bitset::BitSet;
use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};

/// The result of taking an induced subgraph: the subgraph itself plus the
/// correspondence between its (re-numbered) nodes and the original nodes.
///
/// The paper's `(k, G)`-tolerance definition works with the subgraph of `G'`
/// induced by the non-faulty nodes `W`; this type keeps the two labelings
/// linked so that embeddings into the induced subgraph can be translated back
/// to node ids of `G'`.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The induced subgraph, with nodes re-numbered `0..|W|`.
    pub graph: Graph,
    /// `original[i]` is the node of the host graph that node `i` of
    /// `graph` corresponds to. Sorted ascending.
    pub original: Vec<NodeId>,
}

impl InducedSubgraph {
    /// Translates a node of the induced subgraph back to the host graph.
    pub fn to_original(&self, v: NodeId) -> NodeId {
        self.original[v]
    }

    /// Translates a host-graph node into the induced subgraph, if it is part
    /// of it.
    pub fn from_original(&self, original: NodeId) -> Option<NodeId> {
        self.original.binary_search(&original).ok()
    }
}

/// Returns the subgraph of `g` induced by the node set `keep`.
///
/// Nodes are re-numbered `0..keep.count()` in increasing order of their
/// original id, exactly like the paper's rank-based reconfiguration mapping
/// (`Rank(x, W)`), so `InducedSubgraph::original` doubles as the inverse of
/// that mapping.
pub fn induced_subgraph(g: &Graph, keep: &BitSet) -> InducedSubgraph {
    let original: Vec<NodeId> = keep.iter().filter(|&v| v < g.node_count()).collect();
    let mut index_of = vec![usize::MAX; g.node_count()];
    for (new, &old) in original.iter().enumerate() {
        index_of[old] = new;
    }
    let mut b = GraphBuilder::new(original.len());
    for (new_u, &old_u) in original.iter().enumerate() {
        for &old_v in g.neighbors(old_u) {
            let old_v = old_v as NodeId;
            if old_v > old_u && index_of[old_v] != usize::MAX {
                b.add_edge(new_u, index_of[old_v]);
            }
        }
    }
    InducedSubgraph {
        graph: b
            .build()
            .with_name(format!("{}[induced {} nodes]", g.name(), original.len())),
        original,
    }
}

/// Returns the subgraph induced by all nodes of `g` *except* those in
/// `removed` (e.g. a fault set).
pub fn remove_nodes(g: &Graph, removed: &BitSet) -> InducedSubgraph {
    let mut keep = BitSet::full(g.node_count());
    for v in removed.iter() {
        if v < g.node_count() {
            keep.remove(v);
        }
    }
    induced_subgraph(g, &keep)
}

/// Relabels the nodes of `g` by the permutation `perm`, where node `v` of the
/// input becomes node `perm[v]` of the output.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..g.node_count()`.
pub fn relabel(g: &Graph, perm: &[NodeId]) -> Graph {
    assert_eq!(perm.len(), g.node_count(), "permutation length mismatch");
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        assert!(p < perm.len() && !seen[p], "not a permutation");
        seen[p] = true;
    }
    let mut b = GraphBuilder::new(g.node_count());
    for (u, v) in g.edges() {
        b.add_edge(perm[u], perm[v]);
    }
    b.build().with_name(format!("{}[relabelled]", g.name()))
}

/// Returns `true` if `sub` is a subgraph of `host` under the *identity*
/// labeling: every node id of `sub` must exist in `host` and every edge of
/// `sub` must be an edge of `host`.
pub fn is_identity_subgraph(sub: &Graph, host: &Graph) -> bool {
    sub.node_count() <= host.node_count() && sub.edges().all(|(u, v)| host.has_edge(u, v))
}

/// Returns the union of two graphs on the same node set: an edge is present
/// if it is present in either input.
///
/// # Panics
/// Panics if the node counts differ.
pub fn union(a: &Graph, b: &Graph) -> Graph {
    assert_eq!(a.node_count(), b.node_count(), "union: node count mismatch");
    let mut builder = GraphBuilder::new(a.node_count());
    builder.add_edges(a.edges());
    builder.add_edges(b.edges());
    builder.build()
}

/// Returns the graph with the same nodes as `g` and exactly the edges of `g`
/// that connect two nodes inside `within` (without renumbering).
pub fn restrict_edges(g: &Graph, within: &BitSet) -> Graph {
    let mut b = GraphBuilder::new(g.node_count());
    for (u, v) in g.edges() {
        if within.contains(u) && within.contains(v) {
            b.add_edge(u, v);
        }
    }
    b.build().with_name(format!("{}[restricted]", g.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn induced_cycle_minus_node_is_path() {
        let c5 = generators::cycle(5);
        let faults = BitSet::from_iter(5, [2]);
        let ind = remove_nodes(&c5, &faults);
        assert_eq!(ind.graph.node_count(), 4);
        assert_eq!(ind.graph.edge_count(), 3); // path on 4 nodes
        assert_eq!(ind.original, vec![0, 1, 3, 4]);
        assert_eq!(ind.to_original(2), 3);
        assert_eq!(ind.from_original(3), Some(2));
        assert_eq!(ind.from_original(2), None);
    }

    #[test]
    fn induced_respects_rank_order() {
        let g = generators::complete(6);
        let keep = BitSet::from_iter(6, [1, 3, 5]);
        let ind = induced_subgraph(&g, &keep);
        assert_eq!(ind.original, vec![1, 3, 5]);
        assert_eq!(ind.graph.edge_count(), 3); // K3
    }

    #[test]
    fn relabel_preserves_structure() {
        let p = generators::path(4); // 0-1-2-3
        let relabelled = relabel(&p, &[3, 2, 1, 0]);
        assert!(relabelled.has_edge(3, 2));
        assert!(relabelled.has_edge(1, 0));
        assert_eq!(relabelled.degree_sequence(), p.degree_sequence());
    }

    #[test]
    #[should_panic]
    fn relabel_rejects_non_permutation() {
        let p = generators::path(3);
        relabel(&p, &[0, 0, 1]);
    }

    #[test]
    fn identity_subgraph_check() {
        let c4 = generators::cycle(4);
        let p4 = generators::path(4);
        // The path 0-1-2-3 is a subgraph of the cycle 0-1-2-3-0.
        assert!(is_identity_subgraph(&p4, &c4));
        assert!(!is_identity_subgraph(&c4, &p4));
    }

    #[test]
    fn union_and_restrict() {
        let a = crate::builder::graph_from_edges(4, &[(0, 1)]);
        let b = crate::builder::graph_from_edges(4, &[(2, 3), (0, 1)]);
        let u = union(&a, &b);
        assert_eq!(u.edge_count(), 2);
        let only01 = restrict_edges(&u, &BitSet::from_iter(4, [0, 1, 2]));
        assert_eq!(only01.edge_count(), 1);
        assert_eq!(only01.node_count(), 4);
    }
}
