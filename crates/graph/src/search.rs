//! Backtracking subgraph-embedding search.
//!
//! The paper's fault-tolerant shuffle-exchange construction relies on the
//! external structural result that the shuffle-exchange network `SE_h` is a
//! subgraph of the base-2 de Bruijn graph `B_{2,h}` of the same size. The
//! paper imports that result ([7]) as a black box; we make it constructive by
//! searching for an explicit embedding with a classic backtracking
//! subgraph-isomorphism procedure (candidate filtering by degree and by
//! adjacency to already-placed neighbours, most-constrained-first variable
//! ordering).
//!
//! The search is exact: if it returns an embedding, [`crate::Embedding::verify`]
//! holds by construction; if it returns `NoEmbedding`, none exists. A node
//! budget protects against pathological instances.

use crate::bitset::BitSet;
use crate::embedding::Embedding;
use crate::graph::{Graph, NodeId};

/// Configuration for [`find_embedding`].
#[derive(Clone, Debug)]
pub struct SearchOptions {
    /// Maximum number of search-tree nodes to expand before giving up.
    pub node_budget: u64,
    /// If set, the search seeds guest node `fixed.0` to host node `fixed.1`.
    /// Useful to exploit symmetry (e.g. pinning node 0).
    pub fixed: Option<(NodeId, NodeId)>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            node_budget: 50_000_000,
            fixed: None,
        }
    }
}

/// Result of a subgraph-embedding search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchResult {
    /// An embedding was found.
    Found(Embedding),
    /// The search space was exhausted: no embedding exists.
    NoEmbedding,
    /// The node budget was exhausted before the search completed.
    BudgetExhausted,
}

impl SearchResult {
    /// Returns the embedding if one was found.
    pub fn into_embedding(self) -> Option<Embedding> {
        match self {
            SearchResult::Found(e) => Some(e),
            _ => None,
        }
    }
}

struct Searcher<'a> {
    guest: &'a Graph,
    host: &'a Graph,
    /// assignment[g] = host node or usize::MAX
    assignment: Vec<NodeId>,
    used: BitSet,
    order: Vec<NodeId>,
    budget: u64,
    expanded: u64,
}

/// Chooses a guest-node elimination order: start from the highest-degree
/// node, then repeatedly pick the unplaced node with the most already-placed
/// neighbours (ties broken by higher degree). This keeps the partial
/// assignment as constrained as possible, which is what makes the search on
/// the highly regular de Bruijn / shuffle-exchange instances tractable.
fn variable_order(guest: &Graph, seed: Option<NodeId>) -> Vec<NodeId> {
    let n = guest.node_count();
    let mut placed = vec![false; n];
    let mut placed_neighbors = vec![0usize; n];
    let mut order = Vec::with_capacity(n);
    let first = seed.unwrap_or_else(|| (0..n).max_by_key(|&v| guest.degree(v)).unwrap_or(0));
    let mut next = Some(first);
    while let Some(v) = next {
        placed[v] = true;
        order.push(v);
        for &u in guest.neighbors(v) {
            placed_neighbors[u as usize] += 1;
        }
        next = (0..n)
            .filter(|&u| !placed[u])
            .max_by_key(|&u| (placed_neighbors[u], guest.degree(u)));
    }
    order
}

impl<'a> Searcher<'a> {
    fn candidates(&self, g: NodeId) -> Vec<NodeId> {
        // Host candidates must (a) be unused, (b) have enough degree, and
        // (c) be adjacent to the images of every already-placed guest
        // neighbour of `g`.
        let placed_neighbor_images: Vec<NodeId> = self
            .guest
            .neighbors(g)
            .iter()
            .filter_map(|&u| {
                let img = self.assignment[u as usize];
                (img != usize::MAX).then_some(img)
            })
            .collect();
        let needed_degree = self.guest.degree(g);
        if let Some(&anchor) = placed_neighbor_images.first() {
            // Intersect the neighbourhoods starting from one anchor image.
            self.host
                .neighbors(anchor)
                .iter()
                .map(|&h| h as NodeId)
                .filter(|&h| {
                    !self.used.contains(h)
                        && self.host.degree(h) >= needed_degree
                        && placed_neighbor_images[1..]
                            .iter()
                            .all(|&img| self.host.has_edge(h, img))
                })
                .collect()
        } else {
            self.host
                .nodes()
                .filter(|&h| !self.used.contains(h) && self.host.degree(h) >= needed_degree)
                .collect()
        }
    }

    fn solve(&mut self, depth: usize) -> Option<bool> {
        if depth == self.order.len() {
            return Some(true);
        }
        self.expanded += 1;
        if self.expanded > self.budget {
            return None; // budget exhausted
        }
        let g = self.order[depth];
        if self.assignment[g] != usize::MAX {
            // pre-seeded node
            return self.solve(depth + 1);
        }
        for h in self.candidates(g) {
            self.assignment[g] = h;
            self.used.insert(h);
            match self.solve(depth + 1) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            self.used.remove(h);
            self.assignment[g] = usize::MAX;
        }
        Some(false)
    }
}

/// Searches for an embedding of `guest` into `host`.
pub fn find_embedding(guest: &Graph, host: &Graph, opts: &SearchOptions) -> SearchResult {
    if guest.node_count() > host.node_count() || guest.max_degree() > host.max_degree() {
        return SearchResult::NoEmbedding;
    }
    if guest.node_count() == 0 {
        return SearchResult::Found(Embedding::from_map(Vec::new()));
    }
    let mut assignment = vec![usize::MAX; guest.node_count()];
    let mut used = BitSet::new(host.node_count());
    let seed = opts.fixed.map(|(g, h)| {
        assignment[g] = h;
        used.insert(h);
        g
    });
    let order = variable_order(guest, seed);
    let mut searcher = Searcher {
        guest,
        host,
        assignment,
        used,
        order,
        budget: opts.node_budget,
        expanded: 0,
    };
    match searcher.solve(0) {
        Some(true) => {
            let embedding = Embedding::from_map(searcher.assignment);
            debug_assert!(embedding.verify(guest, host).is_ok());
            SearchResult::Found(embedding)
        }
        Some(false) => SearchResult::NoEmbedding,
        None => SearchResult::BudgetExhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_embeds_in_cycle() {
        let guest = generators::path(5);
        let host = generators::cycle(8);
        match find_embedding(&guest, &host, &SearchOptions::default()) {
            SearchResult::Found(e) => e.verify(&guest, &host).unwrap(),
            other => panic!("expected embedding, got {other:?}"),
        }
    }

    #[test]
    fn cycle_does_not_embed_in_path() {
        let guest = generators::cycle(4);
        let host = generators::path(10);
        assert_eq!(
            find_embedding(&guest, &host, &SearchOptions::default()),
            SearchResult::NoEmbedding
        );
    }

    #[test]
    fn triangle_does_not_embed_in_square() {
        let guest = generators::complete(3);
        let host = generators::cycle(4);
        assert_eq!(
            find_embedding(&guest, &host, &SearchOptions::default()),
            SearchResult::NoEmbedding
        );
    }

    #[test]
    fn larger_guest_is_rejected_immediately() {
        let guest = generators::complete(5);
        let host = generators::complete(4);
        assert_eq!(
            find_embedding(&guest, &host, &SearchOptions::default()),
            SearchResult::NoEmbedding
        );
    }

    #[test]
    fn hypercube_contains_cycle_of_full_length() {
        // Q3 is Hamiltonian, so C8 embeds into it.
        let guest = generators::cycle(8);
        let host = generators::hypercube(3);
        match find_embedding(&guest, &host, &SearchOptions::default()) {
            SearchResult::Found(e) => e.verify(&guest, &host).unwrap(),
            other => panic!("expected embedding, got {other:?}"),
        }
    }

    #[test]
    fn fixed_seed_is_respected() {
        let guest = generators::path(3);
        let host = generators::cycle(6);
        let opts = SearchOptions {
            fixed: Some((0, 4)),
            ..Default::default()
        };
        match find_embedding(&guest, &host, &opts) {
            SearchResult::Found(e) => {
                assert_eq!(e.apply(0), 4);
                e.verify(&guest, &host).unwrap();
            }
            other => panic!("expected embedding, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // A deliberately hard instance with a tiny budget.
        let guest = generators::cycle(9);
        let host = generators::hypercube(4);
        let opts = SearchOptions {
            node_budget: 1,
            ..Default::default()
        };
        assert_eq!(
            find_embedding(&guest, &host, &opts),
            SearchResult::BudgetExhausted
        );
    }

    #[test]
    fn empty_guest_embeds_trivially() {
        let guest = crate::Graph::empty(0);
        let host = generators::path(3);
        assert!(matches!(
            find_embedding(&guest, &host, &SearchOptions::default()),
            SearchResult::Found(_)
        ));
    }
}
