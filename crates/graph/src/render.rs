//! Text renderers used to regenerate the paper's figures.
//!
//! The paper contains five figures, all of which are drawings of small graphs
//! (`B_{2,4}`, `B^1_{2,4}`, the relabelled `B^1_{2,4}` after one fault, and
//! the bus implementation of `B^1_{2,3}`). We regenerate them as DOT files
//! (for graphical rendering with Graphviz) and as adjacency tables (for plain
//! terminal inspection and for EXPERIMENTS.md).

use crate::graph::{Graph, NodeId};
use std::fmt::Write as _;

/// Options controlling DOT output.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Optional label per node (defaults to the node id).
    pub node_labels: Option<Vec<String>>,
    /// Node ids to highlight (drawn filled); used for fault sets.
    pub highlighted: Vec<NodeId>,
    /// Edges to emphasise (drawn bold); used for the "edges used after
    /// reconfiguration" in Fig. 3.
    pub bold_edges: Vec<(NodeId, NodeId)>,
}

/// Renders the graph in Graphviz DOT format.
pub fn to_dot(g: &Graph, opts: &DotOptions) -> String {
    let mut out = String::new();
    let name = if g.name().is_empty() { "G" } else { g.name() };
    let _ = writeln!(out, "graph \"{}\" {{", name.replace('"', "'"));
    let _ = writeln!(out, "  node [shape=circle];");
    for v in g.nodes() {
        let label = opts
            .node_labels
            .as_ref()
            .and_then(|l| l.get(v).cloned())
            .unwrap_or_else(|| v.to_string());
        let style = if opts.highlighted.contains(&v) {
            ", style=filled, fillcolor=gray"
        } else {
            ""
        };
        let _ = writeln!(out, "  n{v} [label=\"{label}\"{style}];");
    }
    for (u, v) in g.edges() {
        let bold = opts.bold_edges.contains(&(u, v)) || opts.bold_edges.contains(&(v, u));
        let attr = if bold { " [style=bold]" } else { "" };
        let _ = writeln!(out, "  n{u} -- n{v}{attr};");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the graph as a plain adjacency table, one node per line:
/// `node: neighbour neighbour ...`.
pub fn adjacency_table(g: &Graph) -> String {
    adjacency_table_with_labels(g, |v| v.to_string())
}

/// Renders the adjacency table with a custom node label function (e.g. the
/// binary labels the paper uses for de Bruijn nodes).
pub fn adjacency_table_with_labels<F: Fn(NodeId) -> String>(g: &Graph, label: F) -> String {
    let mut out = String::new();
    if !g.name().is_empty() {
        let _ = writeln!(
            out,
            "# {} : {} nodes, {} edges, max degree {}",
            g.name(),
            g.node_count(),
            g.edge_count(),
            g.max_degree()
        );
    }
    let width = g.nodes().map(|v| label(v).len()).max().unwrap_or(1);
    for v in g.nodes() {
        let neighbours: Vec<String> = g.neighbors(v).iter().map(|&u| label(u as NodeId)).collect();
        let _ = writeln!(
            out,
            "{:>width$} : {}",
            label(v),
            neighbours.join(" "),
            width = width
        );
    }
    out
}

/// Renders a compact single-line summary of a graph, used in experiment logs.
pub fn summary_line(g: &Graph) -> String {
    format!(
        "{}: |V|={} |E|={} degree(min/max)={}/{}",
        if g.name().is_empty() {
            "graph"
        } else {
            g.name()
        },
        g.node_count(),
        g.edge_count(),
        g.min_degree(),
        g.max_degree()
    )
}

/// Renders a two-column correspondence table (e.g. the reconfiguration map
/// `x → φ(x)` of Fig. 3).
pub fn mapping_table(title: &str, pairs: &[(String, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let left = pairs.iter().map(|(a, _)| a.len()).max().unwrap_or(1);
    for (a, b) in pairs {
        let _ = writeln!(out, "{a:>left$} -> {b}", left = left);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = generators::cycle(3).with_name("C3");
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.contains("graph \"C3\""));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("n0 [label=\"0\"]"));
        assert_eq!(dot.matches("--").count(), 3);
    }

    #[test]
    fn dot_highlights_and_bold_edges() {
        let g = generators::path(3);
        let opts = DotOptions {
            node_labels: Some(vec!["a".into(), "b".into(), "c".into()]),
            highlighted: vec![1],
            bold_edges: vec![(2, 1)],
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("fillcolor=gray"));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.contains("n1 -- n2 [style=bold]"));
    }

    #[test]
    fn adjacency_table_lists_all_nodes() {
        let g = generators::star(4).with_name("S4");
        let table = adjacency_table(&g);
        assert!(table.contains("# S4"));
        assert_eq!(table.lines().count(), 5); // header + 4 nodes
        assert!(table.contains("0 : 1 2 3"));
    }

    #[test]
    fn adjacency_table_custom_labels() {
        let g = generators::path(2);
        let t = adjacency_table_with_labels(&g, |v| format!("{v:02b}"));
        assert!(t.contains("00 : 01"));
    }

    #[test]
    fn summary_and_mapping() {
        let g = generators::complete(3).with_name("K3");
        assert_eq!(summary_line(&g), "K3: |V|=3 |E|=3 degree(min/max)=2/2");
        let m = mapping_table("phi", &[("0".into(), "1".into())]);
        assert!(m.contains("# phi"));
        assert!(m.contains("0 -> 1"));
    }
}
