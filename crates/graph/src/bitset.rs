//! A small fixed-capacity bit set.
//!
//! Used throughout the workspace for fault sets, visited markers and
//! candidate filtering in the subgraph-embedding search. Implemented from
//! scratch so the workspace does not pull in an external bitset crate.

/// A fixed-capacity set of `usize` values in `0..len`.
///
/// The capacity is fixed at construction time; inserting an out-of-range
/// value panics. All operations are O(1) except the iterators and the
/// whole-set operations, which are O(len / 64).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty bit set with capacity for values in `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit set with capacity `len` containing every value in the
    /// iterator.
    pub fn from_iter<I: IntoIterator<Item = usize>>(len: usize, iter: I) -> Self {
        let mut s = Self::new(len);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Creates a bit set containing all values in `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// The capacity (universe size) of the set.
    pub fn capacity(&self) -> usize {
        self.len
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 && !self.words.is_empty() {
            let last = self.words.len() - 1;
            self.words[last] &= u64::MAX >> extra;
        }
    }

    /// Inserts `value`, returning `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if `value >= capacity`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(
            value < self.len,
            "BitSet: value {value} out of range {}",
            self.len
        );
        let (w, b) = (value / 64, value % 64);
        let present = self.words[w] >> b & 1 == 1;
        self.words[w] |= 1 << b;
        !present
    }

    /// Removes `value`, returning `true` if it was present.
    pub fn remove(&mut self, value: usize) -> bool {
        assert!(
            value < self.len,
            "BitSet: value {value} out of range {}",
            self.len
        );
        let (w, b) = (value / 64, value % 64);
        let present = self.words[w] >> b & 1 == 1;
        self.words[w] &= !(1 << b);
        present
    }

    /// Returns whether `value` is in the set. Out-of-range values are never
    /// contained.
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.len {
            return false;
        }
        self.words[value / 64] >> (value % 64) & 1 == 1
    }

    /// Number of values currently in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every value from the set.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Iterates over the values in the set in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Iterates over the values of `0..capacity` that are *not* in the set,
    /// in increasing order. Word-wise like [`BitSet::iter`] — `O(len / 64)`
    /// plus one step per yielded value, not one `contains` per candidate.
    pub fn iter_complement(&self) -> impl Iterator<Item = usize> + '_ {
        let last = self.words.len().wrapping_sub(1);
        let tail = self.len % 64;
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = !w;
            if wi == last && tail != 0 {
                bits &= u64::MAX >> (64 - tail);
            }
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// In-place union with `other`. Both sets must have the same capacity.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection with `other`. Both sets must have the same capacity.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Returns `true` if the two sets share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every element of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a bit set whose capacity is one more than the
    /// maximum value (or 0 for an empty iterator).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |m| m + 1);
        BitSet::from_iter(cap, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(128));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_is_sorted() {
        let mut s = BitSet::new(200);
        for v in [199, 3, 77, 64, 65, 0] {
            s.insert(v);
        }
        let out: Vec<usize> = s.iter().collect();
        assert_eq!(out, vec![0, 3, 64, 65, 77, 199]);
    }

    #[test]
    fn complement_iter() {
        let s = BitSet::from_iter(6, [1, 3, 5]);
        let out: Vec<usize> = s.iter_complement().collect();
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter(10, [1, 2, 3]);
        let b = BitSet::from_iter(10, [3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);
        assert!(!a.is_disjoint(&b));
        assert!(BitSet::from_iter(10, [5, 6]).is_disjoint(&a));
        assert!(BitSet::from_iter(10, [1, 3]).is_subset(&a));
        assert!(!b.is_subset(&a));
    }

    #[test]
    #[should_panic]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn collect_from_iterator() {
        let s: BitSet = [2usize, 9, 4].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 4, 9]);
    }
}
