//! Incremental graph construction.

use crate::graph::{Graph, NodeId};

/// Builds a [`Graph`] incrementally.
///
/// The builder silently ignores self-loops (the paper's arithmetic edge
/// definitions produce a handful of them — e.g. node 0 of a de Bruijn graph
/// maps to itself under `x -> 2x mod 2^h` — and the paper states that such
/// self-loops "should be ignored") and de-duplicates parallel edges when the
/// graph is finalised.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    adjacency: Vec<Vec<NodeId>>,
    name: String,
    ignored_self_loops: usize,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            adjacency: vec![Vec::new(); n],
            name: String::new(),
            ignored_self_loops: 0,
        }
    }

    /// Sets the descriptive name of the graph being built.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of nodes the resulting graph will have.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Self-loops (`u == v`) are counted but ignored; duplicates are removed
    /// when the graph is built.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        let n = self.adjacency.len();
        assert!(u < n && v < n, "edge ({u},{v}) out of range for {n} nodes");
        if u == v {
            self.ignored_self_loops += 1;
            return;
        }
        self.adjacency[u].push(v);
        self.adjacency[v].push(u);
    }

    /// Adds every edge produced by the iterator.
    pub fn add_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, edges: I) {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    /// The number of self-loops that were requested and ignored so far.
    pub fn ignored_self_loops(&self) -> usize {
        self.ignored_self_loops
    }

    /// Finalises the graph: sorts adjacency lists, removes duplicates and
    /// packs the result into the CSR layout.
    ///
    /// # Panics
    /// Panics if the graph exceeds the `u32`-indexed CSR limits (more than
    /// `u32::MAX` nodes or directed edges). The builder cannot produce the
    /// other [`crate::graph::GraphError`] conditions: self-loops are elided
    /// and edges are always inserted symmetrically.
    pub fn build(self) -> Graph {
        Graph::from_adjacency(self.adjacency, self.name)
            .expect("GraphBuilder maintains the simple-graph invariants")
    }
}

/// Convenience constructor: builds a graph with `n` nodes from an edge list.
///
/// Self-loops and duplicate edges are ignored, matching [`GraphBuilder`].
pub fn graph_from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    b.add_edges(edges.iter().copied());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_and_self_loops_are_elided() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(2, 2);
        assert_eq!(b.ignored_self_loops(), 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn from_edge_list() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree_sequence(), vec![2, 2, 2, 2]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn builder_name_propagates() {
        let g = GraphBuilder::new(1).name("lonely").build();
        assert_eq!(g.name(), "lonely");
    }
}
