//! Breadth/depth-first traversal, connectivity and distance computations.
//!
//! The hot path is [`Searcher`], a reusable scratch object holding the
//! distance, parent, queue and visited-mark buffers a BFS needs. A kernel
//! that runs many searches (adaptive routing, diameter sweeps, the
//! verifier's reachability checks) creates one `Searcher` and reuses it —
//! after the first search no allocation happens, and the visited marks are
//! invalidated in O(1) per search with a round counter instead of a clear.
//!
//! The free functions ([`bfs_distances`], [`shortest_path`], …) are
//! convenience wrappers that allocate a fresh `Searcher` per call; they keep
//! the simple API for tests and one-off computations.

use crate::bitset::BitSet;
use crate::graph::{Graph, NodeId};

/// Sentinel distance/parent value meaning "not reached".
const UNREACHED: u32 = u32::MAX;

/// Reusable BFS scratch: preallocated dist/parent/queue/visited buffers.
///
/// All searches share the buffers; a round counter invalidates previous
/// results without clearing, so a search costs `O(reached + edges scanned)`
/// with zero heap allocation once the buffers have grown to the graph size.
#[derive(Clone, Debug, Default)]
pub struct Searcher {
    dist: Vec<u32>,
    parent: Vec<u32>,
    mark: Vec<u32>,
    queue: Vec<u32>,
    round: u32,
    reached: usize,
    max_dist: u32,
    sum_dist: u64,
}

impl Searcher {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Searcher::default()
    }

    /// Creates a scratch with buffers sized for graphs of `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = Searcher::new();
        s.ensure(n);
        s
    }

    fn ensure(&mut self, n: usize) {
        if self.mark.len() < n {
            self.dist.resize(n, 0);
            self.parent.resize(n, UNREACHED);
            self.mark.resize(n, 0);
        }
    }

    /// Starts a new search round: bumps the round stamp (resetting all marks
    /// only on the rare wrap-around) and clears the per-search statistics.
    fn begin(&mut self, n: usize) {
        self.ensure(n);
        if self.round == u32::MAX {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.round = 0;
        }
        self.round += 1;
        self.queue.clear();
        self.reached = 0;
        self.max_dist = 0;
        self.sum_dist = 0;
    }

    fn visit(&mut self, v: usize, parent: u32, d: u32) {
        self.mark[v] = self.round;
        self.dist[v] = d;
        self.parent[v] = parent;
        self.queue.push(v as u32);
        self.reached += 1;
        self.max_dist = self.max_dist.max(d);
        self.sum_dist += d as u64;
    }

    /// Runs a full BFS from `source`, filling the distance table.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn bfs(&mut self, g: &Graph, source: NodeId) {
        self.bfs_filtered(g, source, |_| true);
    }

    /// Runs a full BFS from `source` restricted to nodes satisfying `allow`
    /// (the source itself is visited regardless — callers that need to
    /// exclude it check it first, as the routing layer does for faults).
    pub fn bfs_filtered<F: Fn(NodeId) -> bool>(&mut self, g: &Graph, source: NodeId, allow: F) {
        assert!(source < g.node_count(), "source out of range");
        self.begin(g.node_count());
        self.visit(source, source as u32, 0);
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head] as usize;
            head += 1;
            let du = self.dist[u];
            for &v in g.neighbors(u) {
                let vi = v as usize;
                if self.mark[vi] != self.round && allow(vi) {
                    self.visit(vi, u as u32, du + 1);
                }
            }
        }
    }

    /// BFS from `source` that stops as soon as `target` is reached and
    /// writes the shortest path (source and target inclusive) into `out`.
    ///
    /// Returns `true` and fills `out` if a path exists; returns `false` and
    /// leaves `out` empty otherwise. `out` is cleared first and reused — no
    /// allocation once its capacity covers the path length.
    pub fn shortest_path_into(
        &mut self,
        g: &Graph,
        source: NodeId,
        target: NodeId,
        out: &mut Vec<NodeId>,
    ) -> bool {
        self.shortest_path_filtered_into(g, source, target, |_| true, out)
    }

    /// [`Searcher::shortest_path_into`] restricted to nodes satisfying
    /// `allow`. The search fails immediately if the source or target is
    /// disallowed.
    pub fn shortest_path_filtered_into<F: Fn(NodeId) -> bool>(
        &mut self,
        g: &Graph,
        source: NodeId,
        target: NodeId,
        allow: F,
        out: &mut Vec<NodeId>,
    ) -> bool {
        self.shortest_path_avoiding_into(g, source, target, allow, |_| true, out)
    }

    /// [`Searcher::shortest_path_filtered_into`] with an additional filter on
    /// directed CSR edge slots: the hop `u → v` stored at index `s` of the
    /// CSR adjacency array is taken only when `allow_slot(s)` holds, so a
    /// search can route around individual dead directed links rather than
    /// whole nodes. When `allow_slot` admits every slot the traversal order —
    /// and therefore the returned path — is identical to the node-only
    /// variant.
    pub fn shortest_path_avoiding_into<F, E>(
        &mut self,
        g: &Graph,
        source: NodeId,
        target: NodeId,
        allow: F,
        allow_slot: E,
        out: &mut Vec<NodeId>,
    ) -> bool
    where
        F: Fn(NodeId) -> bool,
        E: Fn(usize) -> bool,
    {
        assert!(
            source < g.node_count() && target < g.node_count(),
            "path endpoints out of range"
        );
        out.clear();
        if !allow(source) || !allow(target) {
            return false;
        }
        if source == target {
            out.push(source);
            return true;
        }
        self.begin(g.node_count());
        self.visit(source, source as u32, 0);
        let (offsets, neighbors) = g.csr();
        let mut head = 0usize;
        'search: while head < self.queue.len() {
            let u = self.queue[head] as usize;
            head += 1;
            let du = self.dist[u];
            let row = offsets[u] as usize..offsets[u + 1] as usize;
            for (s, &nbr) in row.clone().zip(&neighbors[row]) {
                let vi = nbr as usize;
                if self.mark[vi] != self.round && allow(vi) && allow_slot(s) {
                    self.visit(vi, u as u32, du + 1);
                    if vi == target {
                        break 'search;
                    }
                }
            }
        }
        if self.mark[target] != self.round {
            return false;
        }
        let mut cur = target;
        out.push(cur);
        while cur != source {
            cur = self.parent[cur] as usize;
            out.push(cur);
        }
        out.reverse();
        true
    }

    /// The distance of `v` from the source of the last search, if reached.
    pub fn distance(&self, v: NodeId) -> Option<usize> {
        (self.mark[v] == self.round).then_some(self.dist[v] as usize)
    }

    /// Number of nodes reached by the last search (including the source).
    pub fn reached(&self) -> usize {
        self.reached
    }

    /// Maximum distance reached by the last search (the source eccentricity
    /// when the search reached the whole graph).
    pub fn max_distance(&self) -> usize {
        self.max_dist as usize
    }

    /// Sum of the distances of all reached nodes in the last search.
    pub fn sum_distances(&self) -> u64 {
        self.sum_dist
    }
}

/// Breadth-first search from `source`.
///
/// Returns a vector `dist` where `dist[v]` is the hop distance from `source`
/// to `v`, or `None` if `v` is unreachable. Allocates the result and a fresh
/// [`Searcher`]; hot loops should hold their own `Searcher` instead.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<usize>> {
    let mut s = Searcher::new();
    s.bfs(g, source);
    g.nodes().map(|v| s.distance(v)).collect()
}

/// Returns a shortest path from `source` to `target` (inclusive of both) as a
/// list of node ids, or `None` if no path exists.
pub fn shortest_path(g: &Graph, source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
    let mut s = Searcher::new();
    let mut path = Vec::new();
    s.shortest_path_into(g, source, target, &mut path)
        .then_some(path)
}

/// Depth-first preorder starting from `source`, restricted to the connected
/// component of `source`.
pub fn dfs_preorder(g: &Graph, source: NodeId) -> Vec<NodeId> {
    assert!(source < g.node_count());
    let mut visited = BitSet::new(g.node_count());
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if !visited.insert(u) {
            continue;
        }
        order.push(u);
        // Push in reverse so lower-numbered neighbours are visited first.
        for &v in g.neighbors(u).iter().rev() {
            if !visited.contains(v as NodeId) {
                stack.push(v as NodeId);
            }
        }
    }
    order
}

/// Computes the connected components of `g`.
///
/// Returns `(component_of, count)` where `component_of[v]` is the component
/// index of node `v` and `count` is the number of components.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut queue: Vec<u32> = Vec::new();
    let mut count = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        queue.clear();
        comp[start] = count;
        queue.push(start as u32);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            for &v in g.neighbors(u) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = count;
                    queue.push(v);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Returns `true` if the graph is connected (the empty graph and the
/// single-node graph count as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() <= 1 || connected_components(g).1 == 1
}

/// The eccentricity of `v`: the maximum distance from `v` to any reachable
/// node. Returns `None` if some node is unreachable from `v`.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<usize> {
    let mut s = Searcher::new();
    s.bfs(g, v);
    (s.reached() == g.node_count()).then(|| s.max_distance())
}

/// The diameter of the graph (maximum eccentricity), or `None` if the graph
/// is disconnected or empty.
///
/// Runs a BFS from every node through one shared [`Searcher`]:
/// `O(V · (V + E))` time, `O(V)` scratch allocated once.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.node_count() == 0 {
        return None;
    }
    let mut s = Searcher::with_capacity(g.node_count());
    let mut diam = 0;
    for v in g.nodes() {
        s.bfs(g, v);
        if s.reached() != g.node_count() {
            return None;
        }
        diam = diam.max(s.max_distance());
    }
    Some(diam)
}

/// The average shortest-path distance over all ordered pairs of distinct
/// nodes, or `None` if the graph is disconnected or has fewer than 2 nodes.
pub fn average_distance(g: &Graph) -> Option<f64> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    let mut s = Searcher::with_capacity(n);
    let mut total = 0u64;
    for v in g.nodes() {
        s.bfs(g, v);
        if s.reached() != n {
            return None;
        }
        total += s.sum_distances();
    }
    Some(total as f64 / (n * (n - 1)) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let p = generators::path(5);
        let dist = bfs_distances(&p, 0);
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn shortest_path_on_cycle() {
        let c = generators::cycle(6);
        let path = shortest_path(&c, 0, 3).unwrap();
        assert_eq!(path.len(), 4); // distance 3
        assert_eq!(path[0], 0);
        assert_eq!(path[3], 3);
        assert_eq!(shortest_path(&c, 2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn shortest_path_disconnected_is_none() {
        let g = crate::builder::graph_from_edges(4, &[(0, 1), (2, 3)]);
        assert!(shortest_path(&g, 0, 3).is_none());
    }

    #[test]
    fn searcher_is_reusable_across_graphs_and_rounds() {
        let p = generators::path(5);
        let c = generators::cycle(8);
        let mut s = Searcher::new();
        s.bfs(&p, 0);
        assert_eq!(s.distance(4), Some(4));
        assert_eq!(s.reached(), 5);
        s.bfs(&c, 0);
        assert_eq!(s.distance(4), Some(4));
        assert_eq!(s.max_distance(), 4);
        assert_eq!(s.reached(), 8);
        // Stale results from the previous round are invalidated.
        s.bfs(&p, 4);
        assert_eq!(s.distance(0), Some(4));
        assert_eq!(s.sum_distances(), (1 + 2 + 3 + 4) as u64);
    }

    #[test]
    fn searcher_filtered_search_respects_the_filter() {
        // Path 0-1-2-3-4 with node 2 disallowed: 0 and 4 are separated.
        let p = generators::path(5);
        let mut s = Searcher::new();
        let mut out = Vec::new();
        assert!(!s.shortest_path_filtered_into(&p, 0, 4, |v| v != 2, &mut out));
        assert!(out.is_empty());
        assert!(s.shortest_path_filtered_into(&p, 0, 1, |v| v != 2, &mut out));
        assert_eq!(out, vec![0, 1]);
        s.bfs_filtered(&p, 0, |v| v != 2);
        assert_eq!(s.reached(), 2);
        assert_eq!(s.distance(3), None);
    }

    #[test]
    fn slot_filtered_search_avoids_dead_directed_links() {
        // Cycle 0-1-2-3-4-5: killing the directed slot 0→1 forces the long
        // way around, while 1→0 stays usable (directed semantics).
        let c = generators::cycle(6);
        let (offsets, neighbors) = c.csr();
        let slot_of = |u: usize, v: usize| {
            (offsets[u] as usize..offsets[u + 1] as usize)
                .find(|&s| neighbors[s] as usize == v)
                .unwrap()
        };
        let dead = slot_of(0, 1);
        let mut s = Searcher::new();
        let mut out = Vec::new();
        assert!(s.shortest_path_avoiding_into(&c, 0, 2, |_| true, |sl| sl != dead, &mut out));
        assert_eq!(out, vec![0, 5, 4, 3, 2], "must route the long way around");
        assert!(s.shortest_path_avoiding_into(&c, 2, 0, |_| true, |sl| sl != dead, &mut out));
        assert_eq!(out, vec![2, 1, 0], "reverse direction is unaffected");
        // All slots allowed reproduces the node-only variant exactly.
        let mut reference = Vec::new();
        assert!(s.shortest_path_filtered_into(&c, 0, 3, |v| v != 1, &mut reference));
        assert!(s.shortest_path_avoiding_into(&c, 0, 3, |v| v != 1, |_| true, &mut out));
        assert_eq!(out, reference);
    }

    #[test]
    fn searcher_path_buffer_is_reused() {
        let c = generators::cycle(6);
        let mut s = Searcher::new();
        let mut out = Vec::with_capacity(8);
        assert!(s.shortest_path_into(&c, 0, 3, &mut out));
        let cap = out.capacity();
        assert!(s.shortest_path_into(&c, 1, 4, &mut out));
        assert_eq!(
            out.capacity(),
            cap,
            "buffer must be reused, not reallocated"
        );
        assert_eq!(out.len(), 4); // distance 3 either way around the cycle
        assert_eq!((out[0], out[3]), (1, 4));
    }

    #[test]
    fn dfs_visits_component() {
        let g = crate::builder::graph_from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let order = dfs_preorder(&g, 0);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn components_and_connectivity() {
        let g = crate::builder::graph_from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert!(!is_connected(&g));
        assert!(is_connected(&generators::cycle(7)));
        assert!(is_connected(&crate::Graph::empty(1)));
        assert!(is_connected(&crate::Graph::empty(0)));
    }

    #[test]
    fn diameter_of_cycle_and_complete() {
        assert_eq!(diameter(&generators::cycle(8)), Some(4));
        assert_eq!(diameter(&generators::complete(5)), Some(1));
        assert_eq!(diameter(&generators::path(4)), Some(3));
        let disconnected = crate::builder::graph_from_edges(3, &[(0, 1)]);
        assert_eq!(diameter(&disconnected), None);
    }

    #[test]
    fn eccentricity_matches_diameter_endpoint() {
        let p = generators::path(5);
        assert_eq!(eccentricity(&p, 0), Some(4));
        assert_eq!(eccentricity(&p, 2), Some(2));
    }

    #[test]
    fn average_distance_complete_graph_is_one() {
        let k = generators::complete(6);
        let avg = average_distance(&k).unwrap();
        assert!((avg - 1.0).abs() < 1e-12);
        assert!(average_distance(&crate::Graph::empty(1)).is_none());
    }
}
