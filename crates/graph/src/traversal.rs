//! Breadth/depth-first traversal, connectivity and distance computations.

use crate::bitset::BitSet;
use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Breadth-first search from `source`.
///
/// Returns a vector `dist` where `dist[v]` is the hop distance from `source`
/// to `v`, or `None` if `v` is unreachable.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<usize>> {
    assert!(source < g.node_count(), "source out of range");
    let mut dist = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued node always has a distance");
        for &v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Returns a shortest path from `source` to `target` (inclusive of both) as a
/// list of node ids, or `None` if no path exists.
pub fn shortest_path(g: &Graph, source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
    assert!(source < g.node_count() && target < g.node_count());
    if source == target {
        return Some(vec![source]);
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut visited = BitSet::new(g.node_count());
    visited.insert(source);
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if visited.insert(v) {
                parent[v] = Some(u);
                if v == target {
                    let mut path = vec![target];
                    let mut cur = target;
                    while let Some(p) = parent[cur] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// Depth-first preorder starting from `source`, restricted to the connected
/// component of `source`.
pub fn dfs_preorder(g: &Graph, source: NodeId) -> Vec<NodeId> {
    assert!(source < g.node_count());
    let mut visited = BitSet::new(g.node_count());
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if !visited.insert(u) {
            continue;
        }
        order.push(u);
        // Push in reverse so lower-numbered neighbours are visited first.
        for &v in g.neighbors(u).iter().rev() {
            if !visited.contains(v) {
                stack.push(v);
            }
        }
    }
    order
}

/// Computes the connected components of `g`.
///
/// Returns `(component_of, count)` where `component_of[v]` is the component
/// index of node `v` and `count` is the number of components.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[start] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v] == usize::MAX {
                    comp[v] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Returns `true` if the graph is connected (the empty graph and the
/// single-node graph count as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() <= 1 || connected_components(g).1 == 1
}

/// The eccentricity of `v`: the maximum distance from `v` to any reachable
/// node. Returns `None` if some node is unreachable from `v`.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<usize> {
    let dist = bfs_distances(g, v);
    let mut ecc = 0;
    for d in dist {
        match d {
            Some(d) => ecc = ecc.max(d),
            None => return None,
        }
    }
    Some(ecc)
}

/// The diameter of the graph (maximum eccentricity), or `None` if the graph
/// is disconnected or empty.
///
/// Runs a BFS from every node: `O(V · (V + E))`; fine for the instance sizes
/// used in the experiments.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.node_count() == 0 {
        return None;
    }
    let mut diam = 0;
    for v in g.nodes() {
        diam = diam.max(eccentricity(g, v)?);
    }
    Some(diam)
}

/// The average shortest-path distance over all ordered pairs of distinct
/// nodes, or `None` if the graph is disconnected or has fewer than 2 nodes.
pub fn average_distance(g: &Graph) -> Option<f64> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    let mut total = 0usize;
    for v in g.nodes() {
        for d in bfs_distances(g, v) {
            total += d?;
        }
    }
    Some(total as f64 / (n * (n - 1)) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let p = generators::path(5);
        let dist = bfs_distances(&p, 0);
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn shortest_path_on_cycle() {
        let c = generators::cycle(6);
        let path = shortest_path(&c, 0, 3).unwrap();
        assert_eq!(path.len(), 4); // distance 3
        assert_eq!(path[0], 0);
        assert_eq!(path[3], 3);
        assert_eq!(shortest_path(&c, 2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn shortest_path_disconnected_is_none() {
        let g = crate::builder::graph_from_edges(4, &[(0, 1), (2, 3)]);
        assert!(shortest_path(&g, 0, 3).is_none());
    }

    #[test]
    fn dfs_visits_component() {
        let g = crate::builder::graph_from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let order = dfs_preorder(&g, 0);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn components_and_connectivity() {
        let g = crate::builder::graph_from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert!(!is_connected(&g));
        assert!(is_connected(&generators::cycle(7)));
        assert!(is_connected(&crate::Graph::empty(1)));
        assert!(is_connected(&crate::Graph::empty(0)));
    }

    #[test]
    fn diameter_of_cycle_and_complete() {
        assert_eq!(diameter(&generators::cycle(8)), Some(4));
        assert_eq!(diameter(&generators::complete(5)), Some(1));
        assert_eq!(diameter(&generators::path(4)), Some(3));
        let disconnected = crate::builder::graph_from_edges(3, &[(0, 1)]);
        assert_eq!(diameter(&disconnected), None);
    }

    #[test]
    fn eccentricity_matches_diameter_endpoint() {
        let p = generators::path(5);
        assert_eq!(eccentricity(&p, 0), Some(4));
        assert_eq!(eccentricity(&p, 2), Some(2));
    }

    #[test]
    fn average_distance_complete_graph_is_one() {
        let k = generators::complete(6);
        let avg = average_distance(&k).unwrap();
        assert!((avg - 1.0).abs() < 1e-12);
        assert!(average_distance(&crate::Graph::empty(1)).is_none());
    }
}
