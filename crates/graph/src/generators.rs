//! Generic graph generators used in tests, baselines and comparisons.

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// The path graph on `n` nodes: edges `{i, i+1}` for `i = 0..n-1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n).name(format!("P{n}"));
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    b.build()
}

/// The cycle graph on `n` nodes (`n >= 3`); for `n < 3` it degenerates to a
/// path.
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n).name(format!("C{n}"));
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    if n >= 3 {
        b.add_edge(n - 1, 0);
    }
    b.build()
}

/// The complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n).name(format!("K{n}"));
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` with `2^d` nodes; nodes are adjacent
/// iff their binary labels differ in exactly one bit.
///
/// The hypercube is the reference topology the paper's introduction compares
/// against: the constant-degree networks (de Bruijn, shuffle-exchange, CCC)
/// emulate it with constant slowdown.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n).name(format!("Q{d}"));
    for x in 0..n {
        for bit in 0..d {
            let y = x ^ (1usize << bit);
            if x < y {
                b.add_edge(x, y);
            }
        }
    }
    b.build()
}

/// The `rows × cols` 2-D mesh (grid) graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n).name(format!("M{rows}x{cols}"));
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.add_edge(v, v + 1);
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols);
            }
        }
    }
    b.build()
}

/// The star graph `K_{1,n-1}` with node 0 as the centre.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n).name(format!("S{n}"));
    for leaf in 1..n {
        b.add_edge(0, leaf);
    }
    b.build()
}

/// An Erdős–Rényi style random graph `G(n, p)` built from the provided RNG.
pub fn random_gnp<R: rand::RngExt>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::new(n).name(format!("G({n},{p})"));
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn path_and_cycle_counts() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(cycle(2).edge_count(), 1);
        assert_eq!(cycle(0).edge_count(), 0);
    }

    #[test]
    fn complete_graph_counts() {
        let k6 = complete(6);
        assert_eq!(k6.edge_count(), 15);
        assert_eq!(k6.max_degree(), 5);
    }

    #[test]
    fn hypercube_structure() {
        let q4 = hypercube(4);
        assert_eq!(q4.node_count(), 16);
        assert_eq!(q4.edge_count(), 32); // d * 2^(d-1)
        assert!(q4.nodes().all(|v| q4.degree(v) == 4));
        assert_eq!(traversal::diameter(&q4), Some(4));
        q4.check_invariants().unwrap();
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 4 * 2); // horizontal + vertical
        assert!(traversal::is_connected(&g));
        assert_eq!(traversal::diameter(&g), Some(2 + 3));
    }

    #[test]
    fn star_structure() {
        let s = star(7);
        assert_eq!(s.degree(0), 6);
        assert!(s.nodes().skip(1).all(|v| s.degree(v) == 1));
    }

    #[test]
    fn random_graph_edge_probability_extremes() {
        let mut rng = rand::rng();
        let empty = random_gnp(10, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = random_gnp(10, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }
}
