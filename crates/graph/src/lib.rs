//! # ftdb-graph
//!
//! Graph substrate for the fault-tolerant de Bruijn / shuffle-exchange
//! network library.
//!
//! This crate provides the small, self-contained graph toolkit that the rest
//! of the workspace is built on:
//!
//! * [`Graph`] — a compact undirected simple graph with sorted adjacency
//!   lists and O(log d) edge queries.
//! * [`GraphBuilder`] — incremental construction with de-duplication and
//!   self-loop elision (the paper's constructions are phrased with self-loops
//!   that "should be ignored").
//! * [`Embedding`] — injective node maps between graphs together with
//!   edge-preservation verification, the formal object at the heart of the
//!   paper's `(k, G)`-tolerance definition.
//! * [`search`] — a backtracking subgraph-embedding search used to compute
//!   the shuffle-exchange ⊆ de Bruijn embedding that the paper imports as an
//!   external result.
//! * traversal (BFS/DFS/components/diameter), generators, degree/regularity
//!   properties, and DOT/ASCII rendering used to regenerate the paper's
//!   figures.
//!
//! Everything is implemented from scratch on `std` (plus `rand` for the
//! randomised helpers) so the workspace has no external graph dependency.
//!
//! ## Quick example
//!
//! ```
//! use ftdb_graph::GraphBuilder;
//!
//! let mut builder = GraphBuilder::new(4);
//! builder.add_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 1)]); // self-loop elided
//! let graph = builder.build();
//! assert_eq!(graph.node_count(), 4);
//! assert_eq!(graph.edge_count(), 4);
//! assert!(graph.has_edge(2, 1) && !graph.has_edge(0, 2));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bitset;
pub mod builder;
pub mod embedding;
pub mod generators;
pub mod graph;
pub mod ops;
pub mod properties;
pub mod render;
pub mod search;
pub mod traversal;

pub use bitset::BitSet;
pub use builder::GraphBuilder;
pub use embedding::Embedding;
pub use graph::{Graph, GraphError, NodeId};
pub use traversal::Searcher;
