//! The core undirected simple-graph type.

use std::fmt;

/// Identifier of a node inside a [`Graph`].
///
/// Nodes of a graph with `n` nodes are always `0..n`. The paper labels the
/// nodes of `B_{m,h}` and of the fault-tolerant graphs with consecutive
/// integers starting at 0, so a plain index is the natural representation.
pub type NodeId = usize;

/// A compact undirected simple graph (no self-loops, no parallel edges).
///
/// Adjacency lists are kept sorted so that `has_edge` is `O(log d)` and
/// neighbour iteration is deterministic. The structure is immutable once
/// built; use [`crate::GraphBuilder`] to construct one.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `adjacency[v]` is the sorted list of neighbours of `v`.
    adjacency: Vec<Vec<NodeId>>,
    /// Total number of undirected edges.
    edge_count: usize,
    /// Optional human-readable name (used by the renderers).
    name: String,
}

impl Graph {
    pub(crate) fn from_adjacency(mut adjacency: Vec<Vec<NodeId>>, name: String) -> Self {
        let mut edge_count = 0;
        for (v, list) in adjacency.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            debug_assert!(!list.contains(&v), "self loop on node {v}");
            edge_count += list.len();
        }
        debug_assert!(edge_count % 2 == 0, "asymmetric adjacency");
        Graph {
            adjacency,
            edge_count: edge_count / 2,
            name,
        }
    }

    /// Creates a graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
            name: String::new(),
        }
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// The number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// An optional descriptive name (e.g. `"B(2,4)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy of this graph carrying the given name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count()
    }

    /// The sorted neighbours of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[v]
    }

    /// The degree (number of incident edges) of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v].len()
    }

    /// The maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Whether the undirected edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u >= self.node_count() || v >= self.node_count() {
            return false;
        }
        self.adjacency[u].binary_search(&v).is_ok()
    }

    /// Iterator over all undirected edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(u, list)| list.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Returns the sorted degree sequence of the graph.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.adjacency.iter().map(Vec::len).collect();
        d.sort_unstable();
        d
    }

    /// Checks the internal invariants (sortedness, symmetry, no self-loops).
    ///
    /// Intended for tests and debug assertions; `O(V + E log d)`.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (v, list) in self.adjacency.iter().enumerate() {
            if !list.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {v} not strictly sorted"));
            }
            for &u in list {
                if u == v {
                    return Err(format!("self loop on {v}"));
                }
                if u >= self.node_count() {
                    return Err(format!("neighbour {u} of {v} out of range"));
                }
                if !self.has_edge(u, v) {
                    return Err(format!("edge ({v},{u}) not symmetric"));
                }
            }
        }
        let total: usize = self.adjacency.iter().map(Vec::len).sum();
        if total != 2 * self.edge_count {
            return Err(format!(
                "edge count {} inconsistent with adjacency total {total}",
                self.edge_count
            ));
        }
        Ok(())
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph({:?}, |V|={}, |E|={})",
            self.name,
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    #[test]
    fn triangle_basics() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        let g = b.build().with_name("K3");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree_sequence(), vec![2, 2, 2]);
        assert_eq!(g.name(), "K3");
        g.check_invariants().unwrap();
    }

    #[test]
    fn edges_are_reported_once() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(2, 3);
        let g = b.build();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (2, 3)]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn out_of_range_has_edge_is_false() {
        let g = GraphBuilder::new(2).build();
        assert!(!g.has_edge(0, 7));
        assert!(!g.has_edge(7, 0));
    }

    #[test]
    fn empty_graph() {
        let g = crate::Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        g.check_invariants().unwrap();
    }
}
