//! The core undirected simple-graph type, stored in compressed sparse row
//! (CSR) form.
//!
//! The CSR layout keeps the whole adjacency structure in two flat arrays —
//! `offsets` (one `u32` per node, plus a sentinel) and `neighbors` (one `u32`
//! per directed edge) — so that neighbour scans are a single contiguous slice
//! read with no pointer chasing, and the entire graph of the instance sizes
//! this workspace targets fits in a few cache lines per node. All hot kernels
//! (BFS, routing, verification) iterate `neighbors(v)` slices directly.

use std::fmt;

/// Identifier of a node inside a [`Graph`].
///
/// Nodes of a graph with `n` nodes are always `0..n`. The paper labels the
/// nodes of `B_{m,h}` and of the fault-tolerant graphs with consecutive
/// integers starting at 0, so a plain index is the natural representation.
/// Internally the CSR arrays store node ids as `u32` for cache density;
/// `NodeId` remains `usize` at API boundaries that index into per-node data.
pub type NodeId = usize;

/// Errors raised when assembling a [`Graph`] from raw adjacency data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A node listed itself as a neighbour. Simple graphs have no self-loops;
    /// [`crate::GraphBuilder`] elides them, but raw adjacency input must not
    /// contain them.
    SelfLoop {
        /// The offending node.
        node: NodeId,
    },
    /// Node `u` lists `v` as a neighbour but `v` does not list `u`. An
    /// undirected graph's adjacency must be symmetric.
    Asymmetric {
        /// The node whose list contains the unreciprocated neighbour.
        u: NodeId,
        /// The neighbour that does not point back.
        v: NodeId,
    },
    /// A neighbour id is not a node of the graph.
    OutOfRange {
        /// The node whose list contains the invalid id.
        node: NodeId,
        /// The invalid neighbour id.
        neighbor: NodeId,
    },
    /// The graph is too large for the `u32`-indexed CSR representation.
    TooLarge {
        /// The requested node count.
        nodes: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { node } => write!(f, "self loop on node {node}"),
            GraphError::Asymmetric { u, v } => {
                write!(
                    f,
                    "asymmetric adjacency: {u} lists {v} but {v} does not list {u}"
                )
            }
            GraphError::OutOfRange { node, neighbor } => {
                write!(f, "neighbour {neighbor} of node {node} is out of range")
            }
            GraphError::TooLarge { nodes } => {
                write!(f, "{nodes} nodes exceed the u32-indexed CSR limit")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A compact undirected simple graph (no self-loops, no parallel edges).
///
/// Stored as CSR: `neighbors(v)` is the sorted slice
/// `neighbors[offsets[v]..offsets[v+1]]`, so `has_edge` is `O(log d)` and
/// neighbour iteration is a contiguous scan. The structure is immutable once
/// built; use [`crate::GraphBuilder`] to construct one.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors`; length `n + 1`.
    offsets: Vec<u32>,
    /// Flat, per-node-sorted adjacency; length `2 · edge_count`.
    neighbors: Vec<u32>,
    /// Optional human-readable name (used by the renderers).
    name: String,
}

impl Graph {
    /// Builds a graph from per-node adjacency lists, validating that the
    /// input describes a simple undirected graph.
    ///
    /// Lists are sorted and de-duplicated. Unlike the pre-CSR representation
    /// (which only `debug_assert`ed), invalid input — self-loops, asymmetric
    /// adjacency, out-of-range neighbours, or more than `u32::MAX` nodes or
    /// directed edges — is rejected with a [`GraphError`] in release builds
    /// too, instead of silently corrupting the edge count.
    pub fn from_adjacency(
        mut adjacency: Vec<Vec<NodeId>>,
        name: String,
    ) -> Result<Self, GraphError> {
        let n = adjacency.len();
        if n >= u32::MAX as usize {
            return Err(GraphError::TooLarge { nodes: n });
        }
        let mut total = 0usize;
        for (v, list) in adjacency.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            if let Some(&last) = list.last() {
                if last >= n {
                    return Err(GraphError::OutOfRange {
                        node: v,
                        neighbor: last,
                    });
                }
            }
            if list.binary_search(&v).is_ok() {
                return Err(GraphError::SelfLoop { node: v });
            }
            total += list.len();
        }
        if total >= u32::MAX as usize {
            return Err(GraphError::TooLarge { nodes: n });
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(total);
        offsets.push(0u32);
        for list in &adjacency {
            neighbors.extend(list.iter().map(|&u| u as u32));
            offsets.push(neighbors.len() as u32);
        }
        let g = Graph {
            offsets,
            neighbors,
            name,
        };
        // Symmetry: every (v, u) must be mirrored by (u, v). With sorted CSR
        // rows this is one binary search per directed edge.
        for v in 0..n {
            for &u in g.neighbors(v) {
                if !g.has_edge(u as NodeId, v) {
                    return Err(GraphError::Asymmetric {
                        u: v,
                        v: u as NodeId,
                    });
                }
            }
        }
        Ok(g)
    }

    /// Creates a graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0u32; n + 1],
            neighbors: Vec::new(),
            name: String::new(),
        }
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// An optional descriptive name (e.g. `"B(2,4)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy of this graph carrying the given name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count()
    }

    /// The sorted neighbours of `v` as a raw CSR slice.
    ///
    /// The element type is the CSR's native `u32`; cast to [`NodeId`] when
    /// indexing per-node arrays. Kernels iterate this slice directly — it is
    /// contiguous memory, no per-node `Vec` indirection.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The neighbours of `v` as [`NodeId`]s (convenience wrapper over the raw
    /// CSR slice).
    pub fn neighbor_ids(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors(v).iter().map(|&u| u as NodeId)
    }

    /// The raw CSR arrays `(offsets, neighbors)`. `offsets` has `n + 1`
    /// entries; the neighbours of `v` occupy
    /// `neighbors[offsets[v] as usize..offsets[v + 1] as usize]`.
    pub fn csr(&self) -> (&[u32], &[u32]) {
        (&self.offsets, &self.neighbors)
    }

    /// The degree (number of incident edges) of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Whether the undirected edge `{u, v}` is present.
    ///
    /// `O(log d)`; short CSR rows (the constant-degree graphs this library
    /// is about) use a branch-light linear scan instead, which is faster
    /// than binary search at these sizes.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u >= self.node_count() || v >= self.node_count() {
            return false;
        }
        let row = self.neighbors(u);
        let v = v as u32;
        if row.len() <= 32 {
            row.contains(&v)
        } else {
            row.binary_search(&v).is_ok()
        }
    }

    /// Iterator over all undirected edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| u < v as NodeId)
                .map(move |&v| (u, v as NodeId))
        })
    }

    /// Returns the sorted degree sequence of the graph.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.nodes().map(|v| self.degree(v)).collect();
        d.sort_unstable();
        d
    }

    /// Checks the internal invariants (offset monotonicity, sortedness,
    /// symmetry, no self-loops).
    ///
    /// Intended for tests and debug assertions; `O(V + E log d)`.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets must contain at least the 0 sentinel".into());
        }
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() as usize != self.neighbors.len() {
            return Err("offsets do not span the neighbour array".into());
        }
        if !self.offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("offsets not monotone".into());
        }
        for v in self.nodes() {
            let list = self.neighbors(v);
            if !list.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {v} not strictly sorted"));
            }
            for &u in list {
                let u = u as NodeId;
                if u == v {
                    return Err(format!("self loop on {v}"));
                }
                if u >= self.node_count() {
                    return Err(format!("neighbour {u} of {v} out of range"));
                }
                if !self.has_edge(u, v) {
                    return Err(format!("edge ({v},{u}) not symmetric"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph({:?}, |V|={}, |E|={})",
            self.name,
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::{Graph, GraphError};
    use crate::GraphBuilder;

    #[test]
    fn triangle_basics() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        let g = b.build().with_name("K3");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbor_ids(1).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(g.degree_sequence(), vec![2, 2, 2]);
        assert_eq!(g.name(), "K3");
        g.check_invariants().unwrap();
    }

    #[test]
    fn edges_are_reported_once() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(2, 3);
        let g = b.build();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (2, 3)]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn out_of_range_has_edge_is_false() {
        let g = GraphBuilder::new(2).build();
        assert!(!g.has_edge(0, 7));
        assert!(!g.has_edge(7, 0));
    }

    #[test]
    fn empty_graph() {
        let g = crate::Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn csr_layout_is_exposed() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let (offsets, neighbors) = g.csr();
        assert_eq!(offsets, &[0, 1, 3, 4]);
        assert_eq!(neighbors, &[1, 0, 2, 1]);
    }

    #[test]
    fn self_loops_are_rejected_in_release_builds() {
        let err = Graph::from_adjacency(vec![vec![0]], String::new()).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 0 });
    }

    #[test]
    fn asymmetric_adjacency_is_rejected() {
        let err = Graph::from_adjacency(vec![vec![1], vec![]], String::new()).unwrap_err();
        assert_eq!(err, GraphError::Asymmetric { u: 0, v: 1 });
    }

    #[test]
    fn out_of_range_neighbours_are_rejected() {
        let err = Graph::from_adjacency(vec![vec![5], vec![0]], String::new()).unwrap_err();
        assert_eq!(
            err,
            GraphError::OutOfRange {
                node: 0,
                neighbor: 5
            }
        );
    }

    #[test]
    fn valid_adjacency_is_accepted_with_duplicates_removed() {
        let g = Graph::from_adjacency(vec![vec![1, 1], vec![0]], "p2".into()).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.name(), "p2");
        g.check_invariants().unwrap();
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(GraphError::SelfLoop { node: 3 }.to_string().contains('3'));
        assert!(GraphError::Asymmetric { u: 1, v: 2 }
            .to_string()
            .contains("symmetric"));
        assert!(GraphError::OutOfRange {
            node: 0,
            neighbor: 9
        }
        .to_string()
        .contains('9'));
        assert!(GraphError::TooLarge { nodes: 7 }
            .to_string()
            .contains("u32"));
    }
}
