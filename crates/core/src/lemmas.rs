//! Executable versions of the paper's technical lemmas.
//!
//! The correctness proofs of Theorems 1 and 2 rest on three small facts.
//! This module states them as checkable predicates so that the test suite
//! (including property-based tests) can exercise them over large parameter
//! ranges, exactly as a referee would spot-check the algebra:
//!
//! * **Lemma 1** — for a finite integer set `T` and `a < b` in `T`,
//!   the "displacement" `δ_a = a - Rank(a, T)` is monotone:
//!   `δ_a ≤ δ_b`.
//! * **Lemma 2** — a base-2 de Bruijn edge `(x, y)` with
//!   `y = X(x, 2, r, 2^h)` wraps around at most once: either `x < y` and
//!   `y = 2x + r`, or `x > y` and `y = 2x + r − 2^h`.
//! * **Lemma 3** — the base-m generalisation: with `y = X(x, m, r, m^h)` and
//!   `y = mx + r − t·m^h`, either `x < y` and `t ∈ {0, …, m−2}`, or `x > y`
//!   and `t ∈ {1, …, m−1}`.

use ftdb_topology::labels::{pow_nodes, rank};

/// The displacement `δ_a = a − Rank(a, T)` used in Lemma 1.
pub fn displacement(a: usize, t: &[usize]) -> i64 {
    a as i64 - rank(a, t) as i64
}

/// Checks Lemma 1 for a specific pair `a < b` of members of `T`:
/// `δ_a ≤ δ_b`.
///
/// # Panics
/// Panics if `a ≥ b` or if either value is not a member of `T`.
pub fn lemma1_holds(a: usize, b: usize, t: &[usize]) -> bool {
    assert!(a < b, "Lemma 1 requires a < b");
    assert!(
        t.contains(&a) && t.contains(&b),
        "a and b must be members of T"
    );
    displacement(a, t) <= displacement(b, t)
}

/// The decomposition asserted by Lemma 2 for a base-2 de Bruijn edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WrapCase {
    /// `x < y` and `y = m·x + r` (no wrap-around).
    NoWrap,
    /// `x > y` and `y = m·x + r − t·m^h` for the stated `t` (wraps).
    Wrap {
        /// The wrap multiplicity `t`.
        t: usize,
    },
}

/// Checks Lemma 2: given `h ≥ 1`, `x < 2^h`, `r ∈ {0, 1}` and
/// `y = X(x, 2, r, 2^h)` with `x ≠ y`, returns which of the two cases holds.
/// Returns `None` if neither case holds (which would falsify the lemma).
pub fn lemma2_case(x: usize, r: usize, h: usize) -> Option<WrapCase> {
    assert!(r <= 1, "Lemma 2 has r in {{0,1}}");
    let n = pow_nodes(2, h);
    assert!(x < n);
    let y = (2 * x + r) % n;
    if x == y {
        return None; // self-loop: the lemma only speaks about edges
    }
    if x < y && y == 2 * x + r {
        Some(WrapCase::NoWrap)
    } else if x > y && 2 * x + r == y + n {
        Some(WrapCase::Wrap { t: 1 })
    } else {
        None
    }
}

/// Checks Lemma 3: given `m ≥ 2`, `h ≥ 1`, `x < m^h`, `r ∈ {0, …, m−1}` and
/// `y = X(x, m, r, m^h)` with `x ≠ y`, returns the wrap multiplicity case.
/// Returns `None` if the lemma's dichotomy fails.
pub fn lemma3_case(x: usize, r: usize, m: usize, h: usize) -> Option<WrapCase> {
    assert!(m >= 2 && r < m, "Lemma 3 has r in {{0,…,m−1}}");
    let n = pow_nodes(m, h);
    assert!(x < n);
    let y = (m * x + r) % n;
    if x == y {
        return None;
    }
    let t = (m * x + r - y) / n;
    let valid = if x < y {
        t <= m - 2
    } else {
        (1..=m - 1).contains(&t)
    };
    valid.then_some(if t == 0 {
        WrapCase::NoWrap
    } else {
        WrapCase::Wrap { t }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lemma1_worked_example() {
        // T = {0,1,3,4,6}; δ = a - Rank(a,T): δ_0=0, δ_1=0, δ_3=1, δ_4=1, δ_6=2.
        let t = vec![0, 1, 3, 4, 6];
        assert_eq!(displacement(0, &t), 0);
        assert_eq!(displacement(3, &t), 1);
        assert_eq!(displacement(6, &t), 2);
        assert!(lemma1_holds(0, 3, &t));
        assert!(lemma1_holds(3, 6, &t));
        assert!(lemma1_holds(1, 4, &t));
    }

    #[test]
    #[should_panic]
    fn lemma1_requires_membership() {
        lemma1_holds(0, 2, &[0, 1, 3]);
    }

    #[test]
    fn lemma2_both_cases_occur() {
        // x = 3, r = 0, h = 3: y = 6 > 3, no wrap.
        assert_eq!(lemma2_case(3, 0, 3), Some(WrapCase::NoWrap));
        // x = 5, r = 1, h = 3: 2·5+1 = 11 ≡ 3 (mod 8), wraps once.
        assert_eq!(lemma2_case(5, 1, 3), Some(WrapCase::Wrap { t: 1 }));
        // Self-loops are excluded: x = 0, r = 0.
        assert_eq!(lemma2_case(0, 0, 3), None);
        assert_eq!(lemma2_case(7, 1, 3), None);
    }

    #[test]
    fn lemma3_wrap_multiplicities() {
        // Base 3, h = 2 (9 nodes): x = 7, r = 2 → 23 ≡ 5, t = 2 = m-1, x > y.
        assert_eq!(lemma3_case(7, 2, 3, 2), Some(WrapCase::Wrap { t: 2 }));
        // x = 2, r = 1 → 7, no wrap, x < y.
        assert_eq!(lemma3_case(2, 1, 3, 2), Some(WrapCase::NoWrap));
        // Self-loop x = 4 (digits "11"), r = 1 → 13 ≡ 4.
        assert_eq!(lemma3_case(4, 1, 3, 2), None);
    }

    proptest! {
        /// Lemma 1 holds for arbitrary finite sets and member pairs.
        #[test]
        fn lemma1_property(ref values in proptest::collection::btree_set(0usize..200, 2..30)) {
            let t: Vec<usize> = values.iter().copied().collect();
            for pair in t.windows(2) {
                prop_assert!(lemma1_holds(pair[0], pair[1], &t));
            }
            // Also check a non-adjacent pair.
            prop_assert!(lemma1_holds(t[0], *t.last().unwrap(), &t));
        }

        /// Lemma 2 covers every base-2 de Bruijn edge.
        #[test]
        fn lemma2_property(h in 1usize..12, x in 0usize..5000, r in 0usize..2) {
            let n = pow_nodes(2, h);
            let x = x % n;
            let y = (2 * x + r) % n;
            if x != y {
                prop_assert!(lemma2_case(x, r, h).is_some(), "x={x}, r={r}, h={h}");
            }
        }

        /// Lemma 3 covers every base-m de Bruijn edge.
        #[test]
        fn lemma3_property(m in 2usize..6, h in 1usize..6, x in 0usize..10000, r in 0usize..6) {
            let n = pow_nodes(m, h);
            let x = x % n;
            let r = r % m;
            let y = (m * x + r) % n;
            if x != y {
                prop_assert!(lemma3_case(x, r, m, h).is_some(), "x={x}, r={r}, m={m}, h={h}");
            }
        }
    }
}
