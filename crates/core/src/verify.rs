//! `(k, G)`-tolerance verification.
//!
//! The paper proves Theorems 1 and 2 analytically; this module verifies them
//! *mechanically* on concrete instances, in two modes:
//!
//! * **Exhaustive** — enumerate every fault set of size `k` (there are
//!   `C(N+k, k)` of them) and check that the rank-based reconfiguration is a
//!   valid embedding for each. The enumeration is split across worker
//!   threads with `crossbeam::scope`, since the checks are embarrassingly
//!   parallel and the instances used in the experiments run into the
//!   hundreds of thousands of fault sets.
//! * **Sampled** — draw random fault sets, for instances where exhaustive
//!   enumeration is intractable.
//!
//! The same machinery accepts an *arbitrary* candidate host graph, which is
//! how the experiments show that a plain de Bruijn graph with a spare node
//! bolted on is **not** `(k, G)`-tolerant — i.e. that the widened edge
//! blocks of the paper's construction are actually needed.

use crate::fault::{Combinations, FaultSet};
use crate::reconfig::reconfigure;
use ftdb_graph::Graph;
use parking_lot::Mutex;
use rand::SeedableRng;

/// Outcome of a tolerance verification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ToleranceReport {
    /// Number of fault sets checked.
    pub checked: u64,
    /// Fault sets for which the rank-based reconfiguration failed
    /// (capped at [`ToleranceReport::MAX_RECORDED`] examples).
    pub failures: Vec<Vec<usize>>,
    /// Total number of failing fault sets (even beyond the recorded cap).
    pub failure_count: u64,
}

impl ToleranceReport {
    /// Maximum number of failing fault sets recorded verbatim.
    pub const MAX_RECORDED: usize = 16;

    /// `true` if every checked fault set admitted a valid reconfiguration.
    pub fn is_tolerant(&self) -> bool {
        self.failure_count == 0
    }
}

/// Checks a single fault set: does the rank-based reconfiguration of
/// `target` into `host` avoid the faults and preserve every edge?
pub fn check_fault_set(target: &Graph, host: &Graph, faults: &FaultSet) -> bool {
    if host.node_count() < target.node_count() + faults.len() {
        return false;
    }
    let phi = reconfigure(target.node_count(), faults);
    phi.verify(target, host).is_ok()
}

/// Exhaustively verifies that `host` is `(k, target)`-tolerant *under the
/// rank-based reconfiguration*, checking all `C(|host|, k)` fault sets.
///
/// `threads` controls the parallel fan-out (use 1 for deterministic
/// single-thread runs; the result is identical either way).
pub fn verify_exhaustive(target: &Graph, host: &Graph, k: usize, threads: usize) -> ToleranceReport {
    let n = host.node_count();
    let threads = threads.max(1);
    let failures = Mutex::new(Vec::new());
    let checked = std::sync::atomic::AtomicU64::new(0);
    let failure_count = std::sync::atomic::AtomicU64::new(0);

    // Partition the combination stream round-robin across workers: each
    // worker enumerates all combinations but only checks its share. The
    // enumeration itself is cheap relative to the embedding check.
    crossbeam::scope(|scope| {
        for worker in 0..threads {
            let failures = &failures;
            let checked = &checked;
            let failure_count = &failure_count;
            scope.spawn(move |_| {
                let mut local_checked = 0u64;
                for (index, combo) in Combinations::new(n, k).enumerate() {
                    if index % threads != worker {
                        continue;
                    }
                    local_checked += 1;
                    let faults = FaultSet::from_nodes(n, combo.iter().copied());
                    if !check_fault_set(target, host, &faults) {
                        failure_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let mut guard = failures.lock();
                        if guard.len() < ToleranceReport::MAX_RECORDED {
                            guard.push(combo);
                        }
                    }
                }
                checked.fetch_add(local_checked, std::sync::atomic::Ordering::Relaxed);
            });
        }
    })
    .expect("verification worker panicked");

    let mut failures = failures.into_inner();
    failures.sort();
    ToleranceReport {
        checked: checked.into_inner(),
        failures,
        failure_count: failure_count.into_inner(),
    }
}

/// Verifies tolerance on `samples` random fault sets of size `k` drawn with
/// the given seed (deterministic for a fixed seed).
pub fn verify_sampled(
    target: &Graph,
    host: &Graph,
    k: usize,
    samples: u64,
    seed: u64,
) -> ToleranceReport {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = host.node_count();
    let mut failures = Vec::new();
    let mut failure_count = 0;
    for _ in 0..samples {
        let faults = FaultSet::random(n, k, &mut rng);
        if !check_fault_set(target, host, &faults) {
            failure_count += 1;
            if failures.len() < ToleranceReport::MAX_RECORDED {
                failures.push(faults.iter().collect());
            }
        }
    }
    failures.sort();
    ToleranceReport {
        checked: samples,
        failures,
        failure_count,
    }
}

/// Exhaustively verifies tolerance for *all* fault-set sizes `0..=k`
/// (the definition quantifies over exactly `|V(G')| − N` missing nodes, but
/// tolerating every smaller fault count follows and is what a real system
/// needs). Returns one report per fault count.
pub fn verify_up_to(target: &Graph, host: &Graph, k: usize, threads: usize) -> Vec<ToleranceReport> {
    (0..=k)
        .map(|faults| verify_exhaustive(target, host, faults, threads))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ft_debruijn::FtDeBruijn2;
    use crate::ft_debruijn_m::FtDeBruijnM;
    use ftdb_topology::{DeBruijn2, DeBruijnM};

    #[test]
    fn ft_graph_passes_exhaustive_check_k1() {
        let ft = FtDeBruijn2::new(3, 1);
        let report = verify_exhaustive(ft.target().graph(), ft.graph(), 1, 2);
        assert_eq!(report.checked, 9); // C(9,1)
        assert!(report.is_tolerant(), "failures: {:?}", report.failures);
    }

    #[test]
    fn ft_graph_passes_exhaustive_check_k2() {
        let ft = FtDeBruijn2::new(3, 2);
        let report = verify_exhaustive(ft.target().graph(), ft.graph(), 2, 4);
        assert_eq!(report.checked, 45); // C(10,2)
        assert!(report.is_tolerant());
    }

    #[test]
    fn base_m_ft_graph_passes_exhaustive_check() {
        let ft = FtDeBruijnM::new(3, 3, 1);
        let report = verify_exhaustive(ft.target().graph(), ft.graph(), 1, 4);
        assert_eq!(report.checked, 28); // C(28,1)
        assert!(report.is_tolerant());
    }

    #[test]
    fn plain_debruijn_with_a_spare_is_not_tolerant() {
        // Take B_{2,3} and add one isolated spare node: the rank-based
        // reconfiguration must fail for some single fault, demonstrating that
        // the widened edge blocks of B^1_{2,3} are necessary.
        let target = DeBruijn2::new(3);
        let mut builder = ftdb_graph::GraphBuilder::new(9);
        builder.add_edges(target.graph().edges());
        let host = builder.build();
        let report = verify_exhaustive(target.graph(), &host, 1, 2);
        assert!(!report.is_tolerant());
        assert!(report.failure_count > 0);
        assert!(!report.failures.is_empty());
    }

    #[test]
    fn sampled_and_exhaustive_agree_on_tolerant_instance() {
        let ft = FtDeBruijnM::new(2, 4, 2);
        let exhaustive = verify_exhaustive(ft.target().graph(), ft.graph(), 2, 4);
        let sampled = verify_sampled(ft.target().graph(), ft.graph(), 2, 200, 42);
        assert!(exhaustive.is_tolerant());
        assert!(sampled.is_tolerant());
        assert_eq!(sampled.checked, 200);
    }

    #[test]
    fn verify_up_to_covers_every_fault_count() {
        let ft = FtDeBruijn2::new(3, 2);
        let reports = verify_up_to(ft.target().graph(), ft.graph(), 2, 2);
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(ToleranceReport::is_tolerant));
        assert_eq!(reports[0].checked, 1);
        assert_eq!(reports[1].checked, 10);
        assert_eq!(reports[2].checked, 45);
    }

    #[test]
    fn single_thread_and_multi_thread_results_match() {
        let ft = FtDeBruijn2::new(3, 2);
        let a = verify_exhaustive(ft.target().graph(), ft.graph(), 2, 1);
        let b = verify_exhaustive(ft.target().graph(), ft.graph(), 2, 8);
        assert_eq!(a.checked, b.checked);
        assert_eq!(a.failure_count, b.failure_count);
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn degenerate_smaller_de_bruijn_host_fails() {
        // A host that is simply too small can never be tolerant.
        let target = DeBruijnM::new(2, 3);
        let host = DeBruijn2::new(3);
        let report = verify_exhaustive(target.graph(), host.graph(), 1, 1);
        assert!(!report.is_tolerant());
    }
}
