//! `(k, G)`-tolerance verification.
//!
//! The paper proves Theorems 1 and 2 analytically; this module verifies them
//! *mechanically* on concrete instances, in two modes:
//!
//! * **Exhaustive** — enumerate every fault set of size `k` (there are
//!   `C(N+k, k)` of them) and check that the rank-based reconfiguration is a
//!   valid embedding for each. The enumeration is split across worker
//!   threads with `crossbeam::scope`, since the checks are embarrassingly
//!   parallel and the instances used in the experiments run into the
//!   hundreds of thousands of fault sets.
//! * **Sampled** — draw random fault sets, for instances where exhaustive
//!   enumeration is intractable.
//!
//! The exhaustive sweep is engineered as an allocation-free kernel: fault
//! sets come from an in-place revolving-door enumerator
//! ([`crate::fault::RevolvingDoor`]), the rank map `φ` is rebuilt into a
//! reusable buffer, edge preservation is checked against a dense host
//! adjacency bit-matrix (O(1) per edge for the instance sizes that are
//! exhaustively enumerable), and failures are collected per worker and
//! merged after the join — no `Mutex` in the hot loop.
//!
//! The same machinery accepts an *arbitrary* candidate host graph, which is
//! how the experiments show that a plain de Bruijn graph with a spare node
//! bolted on is **not** `(k, G)`-tolerant — i.e. that the widened edge
//! blocks of the paper's construction are actually needed.

use crate::fault::{FaultSet, RevolvingDoor};
use crate::reconfig::reconfigure;
use ftdb_graph::Graph;
use rand::SeedableRng;

/// Outcome of a tolerance verification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ToleranceReport {
    /// Number of fault sets checked.
    pub checked: u64,
    /// Fault sets for which the rank-based reconfiguration failed
    /// (capped at [`ToleranceReport::MAX_RECORDED`] examples).
    pub failures: Vec<Vec<usize>>,
    /// Total number of failing fault sets (even beyond the recorded cap).
    pub failure_count: u64,
}

impl ToleranceReport {
    /// Maximum number of failing fault sets recorded verbatim.
    pub const MAX_RECORDED: usize = 16;

    /// `true` if every checked fault set admitted a valid reconfiguration.
    pub fn is_tolerant(&self) -> bool {
        self.failure_count == 0
    }
}

/// Checks a single fault set: does the rank-based reconfiguration of
/// `target` into `host` avoid the faults and preserve every edge?
pub fn check_fault_set(target: &Graph, host: &Graph, faults: &FaultSet) -> bool {
    if host.node_count() < target.node_count() + faults.len() {
        return false;
    }
    let phi = reconfigure(target.node_count(), faults);
    phi.verify(target, host).is_ok()
}

/// Node-count limit under which the verifier builds a dense adjacency
/// bit-matrix of the host (`n²` bits — 2 MiB at the limit). Exhaustive
/// enumeration is only tractable well below this size anyway.
const ADJACENCY_MATRIX_LIMIT: usize = 4096;

/// Dense adjacency bit-matrix for O(1) `has_edge` in the verification
/// kernel.
struct AdjacencyMatrix {
    words: Vec<u64>,
    stride: usize,
}

impl AdjacencyMatrix {
    fn build(g: &Graph) -> Self {
        let n = g.node_count();
        let stride = n.div_ceil(64);
        let mut words = vec![0u64; n * stride];
        for u in g.nodes() {
            let row = u * stride;
            for &v in g.neighbors(u) {
                words[row + v as usize / 64] |= 1u64 << (v as usize % 64);
            }
        }
        AdjacencyMatrix { words, stride }
    }

    #[inline]
    fn has_edge(&self, u: usize, v: usize) -> bool {
        self.words[u * self.stride + v / 64] >> (v % 64) & 1 == 1
    }
}

/// Per-worker scratch for the exhaustive sweep: the rank map `φ` and the
/// sorted fault slice are rebuilt in place for every combination.
struct VerifyKernel<'a> {
    target_edges: &'a [(u32, u32)],
    host: &'a Graph,
    matrix: Option<&'a AdjacencyMatrix>,
    /// `phi[x]` = host image of target node `x`; reused across checks.
    phi: Vec<u32>,
}

impl<'a> VerifyKernel<'a> {
    fn new(
        target_nodes: usize,
        target_edges: &'a [(u32, u32)],
        host: &'a Graph,
        matrix: Option<&'a AdjacencyMatrix>,
    ) -> Self {
        VerifyKernel {
            target_edges,
            host,
            matrix,
            phi: vec![0; target_nodes],
        }
    }

    /// Allocation-free equivalent of [`check_fault_set`] for a sorted fault
    /// slice: recomputes the rank map into the scratch buffer and checks
    /// every target edge against the host adjacency.
    fn check(&mut self, faults: &[usize]) -> bool {
        let n = self.host.node_count();
        let target_nodes = self.phi.len();
        if n < target_nodes + faults.len() {
            return false;
        }
        // φ(x) = the (x+1)-st healthy host node: walk 0..n skipping the
        // sorted fault positions until the map is full.
        let mut fi = 0usize;
        let mut x = 0usize;
        for v in 0..n {
            if fi < faults.len() && faults[fi] == v {
                fi += 1;
                continue;
            }
            self.phi[x] = v as u32;
            x += 1;
            if x == target_nodes {
                break;
            }
        }
        if x < target_nodes {
            return false;
        }
        match self.matrix {
            Some(m) => self.target_edges.iter().all(|&(a, b)| {
                m.has_edge(self.phi[a as usize] as usize, self.phi[b as usize] as usize)
            }),
            None => self.target_edges.iter().all(|&(a, b)| {
                self.host
                    .has_edge(self.phi[a as usize] as usize, self.phi[b as usize] as usize)
            }),
        }
    }
}

/// Exhaustively verifies that `host` is `(k, target)`-tolerant *under the
/// rank-based reconfiguration*, checking all `C(|host|, k)` fault sets.
///
/// `threads` controls the parallel fan-out (use 1 for deterministic
/// single-thread runs; the recorded failures are identical either way — the
/// first [`ToleranceReport::MAX_RECORDED`] failing sets in enumeration
/// order, sorted).
pub fn verify_exhaustive(
    target: &Graph,
    host: &Graph,
    k: usize,
    threads: usize,
) -> ToleranceReport {
    let n = host.node_count();
    let threads = threads.max(1);
    let target_edges: Vec<(u32, u32)> = target.edges().map(|(a, b)| (a as u32, b as u32)).collect();
    let matrix = (n <= ADJACENCY_MATRIX_LIMIT).then(|| AdjacencyMatrix::build(host));
    let matrix = matrix.as_ref();

    // Each worker advances its own in-place enumerator over the full stream
    // (advancing is O(1) amortised and allocation-free) and checks its
    // round-robin share. Failures are collected locally, tagged with the
    // global enumeration index, and merged after the join — the hot loop
    // takes no lock. Known scaling bound: the enumeration itself is
    // replicated per worker (threads · C(n,k) advance steps), which caps
    // parallel speedup once the per-set check is this cheap; contiguous
    // ranges via combination unranking would remove that if wider machines
    // demand it.
    type WorkerResult = (u64, u64, Vec<(u64, Vec<usize>)>);
    let mut worker_results: Vec<WorkerResult> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let target_edges = &target_edges;
                scope.spawn(move |_| {
                    let mut kernel =
                        VerifyKernel::new(target.node_count(), target_edges, host, matrix);
                    let mut enumerator = RevolvingDoor::new(n, k);
                    let mut checked = 0u64;
                    let mut failure_count = 0u64;
                    let mut failures: Vec<(u64, Vec<usize>)> = Vec::new();
                    let mut index = 0u64;
                    while let Some(combo) = enumerator.next_set() {
                        let mine = index % threads as u64 == worker as u64;
                        index += 1;
                        if !mine {
                            continue;
                        }
                        checked += 1;
                        if !kernel.check(combo) {
                            failure_count += 1;
                            if failures.len() < ToleranceReport::MAX_RECORDED {
                                failures.push((index - 1, combo.to_vec()));
                            }
                        }
                    }
                    (checked, failure_count, failures)
                })
            })
            .collect();
        for handle in handles {
            // analyzer: allow(expect) -- a worker panic must propagate, not yield a truncated tolerance report
            worker_results.push(handle.join().expect("verification worker panicked"));
        }
    })
    .expect("verification scope panicked"); // analyzer: allow(expect) -- crossbeam scope errors only reflect a worker panic that is already propagating

    let mut checked = 0u64;
    let mut failure_count = 0u64;
    let mut tagged: Vec<(u64, Vec<usize>)> = Vec::new();
    for (c, f, fails) in worker_results {
        checked += c;
        failure_count += f;
        tagged.extend(fails);
    }
    // Keep the first MAX_RECORDED failures in global enumeration order —
    // deterministic regardless of the thread count — then sort them for
    // stable presentation.
    tagged.sort();
    tagged.truncate(ToleranceReport::MAX_RECORDED);
    let mut failures: Vec<Vec<usize>> = tagged.into_iter().map(|(_, f)| f).collect();
    failures.sort();
    ToleranceReport {
        checked,
        failures,
        failure_count,
    }
}

/// Verifies tolerance on `samples` random fault sets of size `k` drawn with
/// the given seed (deterministic for a fixed seed).
pub fn verify_sampled(
    target: &Graph,
    host: &Graph,
    k: usize,
    samples: u64,
    seed: u64,
) -> ToleranceReport {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = host.node_count();
    if k > n {
        // No fault set of size k exists; report an empty (vacuous) pass.
        return ToleranceReport {
            checked: 0,
            failures: Vec::new(),
            failure_count: 0,
        };
    }
    let target_edges: Vec<(u32, u32)> = target.edges().map(|(a, b)| (a as u32, b as u32)).collect();
    let matrix = (n <= ADJACENCY_MATRIX_LIMIT).then(|| AdjacencyMatrix::build(host));
    let mut kernel = VerifyKernel::new(target.node_count(), &target_edges, host, matrix.as_ref());
    let mut combo: Vec<usize> = Vec::with_capacity(k);
    let mut failures = Vec::new();
    let mut failure_count = 0;
    for _ in 0..samples {
        // `k <= n` was checked above, so the draw cannot fail; skip
        // defensively rather than panic to keep this path panic-free.
        let Ok(faults) = FaultSet::random(n, k, &mut rng) else {
            continue;
        };
        combo.clear();
        combo.extend(faults.iter());
        if !kernel.check(&combo) {
            failure_count += 1;
            if failures.len() < ToleranceReport::MAX_RECORDED {
                failures.push(combo.clone());
            }
        }
    }
    failures.sort();
    ToleranceReport {
        checked: samples,
        failures,
        failure_count,
    }
}

/// Exhaustively verifies tolerance for *all* fault-set sizes `0..=k`
/// (the definition quantifies over exactly `|V(G')| − N` missing nodes, but
/// tolerating every smaller fault count follows and is what a real system
/// needs). Returns one report per fault count.
pub fn verify_up_to(
    target: &Graph,
    host: &Graph,
    k: usize,
    threads: usize,
) -> Vec<ToleranceReport> {
    (0..=k)
        .map(|faults| verify_exhaustive(target, host, faults, threads))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ft_debruijn::FtDeBruijn2;
    use crate::ft_debruijn_m::FtDeBruijnM;
    use ftdb_topology::{DeBruijn2, DeBruijnM};

    #[test]
    fn ft_graph_passes_exhaustive_check_k1() {
        let ft = FtDeBruijn2::new(3, 1);
        let report = verify_exhaustive(ft.target().graph(), ft.graph(), 1, 2);
        assert_eq!(report.checked, 9); // C(9,1)
        assert!(report.is_tolerant(), "failures: {:?}", report.failures);
    }

    #[test]
    fn ft_graph_passes_exhaustive_check_k2() {
        let ft = FtDeBruijn2::new(3, 2);
        let report = verify_exhaustive(ft.target().graph(), ft.graph(), 2, 4);
        assert_eq!(report.checked, 45); // C(10,2)
        assert!(report.is_tolerant());
    }

    #[test]
    fn base_m_ft_graph_passes_exhaustive_check() {
        let ft = FtDeBruijnM::new(3, 3, 1);
        let report = verify_exhaustive(ft.target().graph(), ft.graph(), 1, 4);
        assert_eq!(report.checked, 28); // C(28,1)
        assert!(report.is_tolerant());
    }

    #[test]
    fn plain_debruijn_with_a_spare_is_not_tolerant() {
        // Take B_{2,3} and add one isolated spare node: the rank-based
        // reconfiguration must fail for some single fault, demonstrating that
        // the widened edge blocks of B^1_{2,3} are necessary.
        let target = DeBruijn2::new(3);
        let mut builder = ftdb_graph::GraphBuilder::new(9);
        builder.add_edges(target.graph().edges());
        let host = builder.build();
        let report = verify_exhaustive(target.graph(), &host, 1, 2);
        assert!(!report.is_tolerant());
        assert!(report.failure_count > 0);
        assert!(!report.failures.is_empty());
    }

    #[test]
    fn kernel_agrees_with_check_fault_set() {
        // The fast kernel and the reference path must classify every fault
        // set identically, on a tolerant and on a non-tolerant host.
        let ft = FtDeBruijn2::new(3, 2);
        let target = ft.target().graph();
        for host in [ft.graph().clone(), {
            let mut b = ftdb_graph::GraphBuilder::new(10);
            b.add_edges(target.edges());
            b.build()
        }] {
            let target_edges: Vec<(u32, u32)> =
                target.edges().map(|(a, b)| (a as u32, b as u32)).collect();
            let matrix = AdjacencyMatrix::build(&host);
            let mut kernel =
                VerifyKernel::new(target.node_count(), &target_edges, &host, Some(&matrix));
            let mut rd = RevolvingDoor::new(host.node_count(), 2);
            while let Some(combo) = rd.next_set() {
                let faults = FaultSet::from_nodes(host.node_count(), combo.iter().copied());
                assert_eq!(
                    kernel.check(combo),
                    check_fault_set(target, &host, &faults),
                    "kernel disagrees on {combo:?} for {host:?}"
                );
            }
        }
    }

    #[test]
    fn sampled_and_exhaustive_agree_on_tolerant_instance() {
        let ft = FtDeBruijnM::new(2, 4, 2);
        let exhaustive = verify_exhaustive(ft.target().graph(), ft.graph(), 2, 4);
        let sampled = verify_sampled(ft.target().graph(), ft.graph(), 2, 200, 42);
        assert!(exhaustive.is_tolerant());
        assert!(sampled.is_tolerant());
        assert_eq!(sampled.checked, 200);
    }

    #[test]
    fn verify_up_to_covers_every_fault_count() {
        let ft = FtDeBruijn2::new(3, 2);
        let reports = verify_up_to(ft.target().graph(), ft.graph(), 2, 2);
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(ToleranceReport::is_tolerant));
        assert_eq!(reports[0].checked, 1);
        assert_eq!(reports[1].checked, 10);
        assert_eq!(reports[2].checked, 45);
    }

    #[test]
    fn single_thread_and_multi_thread_results_match() {
        let ft = FtDeBruijn2::new(3, 2);
        let a = verify_exhaustive(ft.target().graph(), ft.graph(), 2, 1);
        let b = verify_exhaustive(ft.target().graph(), ft.graph(), 2, 8);
        assert_eq!(a.checked, b.checked);
        assert_eq!(a.failure_count, b.failure_count);
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn recorded_failures_are_thread_count_independent() {
        // A non-tolerant instance with more than MAX_RECORDED failures: the
        // recorded subset must still be identical across thread counts.
        let target = DeBruijn2::new(4);
        let mut b = ftdb_graph::GraphBuilder::new(18);
        b.add_edges(target.graph().edges());
        let host = b.build();
        let one = verify_exhaustive(target.graph(), &host, 2, 1);
        let many = verify_exhaustive(target.graph(), &host, 2, 5);
        assert!(!one.is_tolerant());
        assert_eq!(one.failure_count, many.failure_count);
        assert_eq!(one.failures, many.failures);
        assert_eq!(one.failures.len(), ToleranceReport::MAX_RECORDED);
    }

    #[test]
    fn degenerate_smaller_de_bruijn_host_fails() {
        // A host that is simply too small can never be tolerant.
        let target = DeBruijnM::new(2, 3);
        let host = DeBruijn2::new(3);
        let report = verify_exhaustive(target.graph(), host.graph(), 1, 1);
        assert!(!report.is_tolerant());
    }
}
