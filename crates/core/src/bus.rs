//! Bus-based implementation of the fault-tolerant de Bruijn graph
//! (Section V of the paper).
//!
//! In `B^k_{2,h}` every node `i` is connected by point-to-point links to the
//! block of `2k + 2` consecutive nodes starting at `(2i − k) mod (2^h + k)`.
//! Section V replaces that block of links with a *single bus* owned by node
//! `i` and spanning `i` plus the block. The resulting architecture has
//! **bus-degree `2k + 3`**: each node drives its own bus and taps at most
//! `2k + 2` buses owned by other nodes.
//!
//! Because every bus is used in the restricted "owner talks to a block
//! member" pattern, a faulty bus can be tolerated by simply declaring its
//! owner node faulty — the paper's observation that bus faults reduce to
//! node faults. The price of buses is bandwidth: if a processor could
//! previously send two different values per step (one per out-link), the bus
//! serialises them, costing roughly a factor of two in time; the simulator
//! crate quantifies this (experiment SIM2).

use crate::fault::FaultSet;
use crate::ft_debruijn::FtDeBruijn2;
use ftdb_graph::{Graph, GraphBuilder, NodeId};
use ftdb_topology::labels::x_fn;

/// A single bus: its owning node plus the block of nodes it spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bus {
    /// The node that owns (drives) this bus.
    pub owner: NodeId,
    /// The nodes reachable over the bus: the `2k + 2` consecutive nodes
    /// starting at `(2·owner − k) mod (2^h + k)`. The owner itself is not
    /// listed unless it happens to fall inside its own block.
    pub members: Vec<NodeId>,
}

impl Bus {
    /// All nodes electrically attached to the bus (owner plus members,
    /// de-duplicated).
    pub fn attached(&self) -> Vec<NodeId> {
        let mut all = self.members.clone();
        if !all.contains(&self.owner) {
            all.push(self.owner);
        }
        all.sort_unstable();
        all.dedup();
        all
    }
}

/// The bus implementation of `B^k_{2,h}`: one bus per node.
#[derive(Clone, Debug)]
pub struct BusArchitecture {
    h: usize,
    k: usize,
    node_count: usize,
    buses: Vec<Bus>,
    /// `incident[v]` lists the bus ids (= owner ids) that node `v` taps,
    /// including its own bus.
    incident: Vec<Vec<usize>>,
}

impl BusArchitecture {
    /// Builds the bus implementation of `B^k_{2,h}`.
    pub fn new(h: usize, k: usize) -> Self {
        let ft = FtDeBruijn2::new(h, k);
        Self::from_ft(&ft)
    }

    /// Builds the bus implementation for an existing `B^k_{2,h}`.
    pub fn from_ft(ft: &FtDeBruijn2) -> Self {
        let n = ft.node_count();
        let k = ft.k();
        let buses: Vec<Bus> = (0..n)
            .map(|owner| {
                let mut members: Vec<NodeId> = (-(k as i64)..=(k as i64 + 1))
                    .map(|r| x_fn(owner, 2, r, n))
                    .collect();
                members.sort_unstable();
                members.dedup();
                Bus { owner, members }
            })
            .collect();
        let mut incident = vec![Vec::new(); n];
        for bus in &buses {
            for v in bus.attached() {
                incident[v].push(bus.owner);
            }
        }
        for list in &mut incident {
            list.sort_unstable();
            list.dedup();
        }
        BusArchitecture {
            h: ft.h(),
            k,
            node_count: n,
            buses,
            incident,
        }
    }

    /// The number of digits `h` of the protected target graph.
    pub fn h(&self) -> usize {
        self.h
    }

    /// The fault budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of nodes (and of buses), `2^h + k`.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// All buses, indexed by owner node.
    pub fn buses(&self) -> &[Bus] {
        &self.buses
    }

    /// The bus owned by node `owner`.
    pub fn bus_of(&self, owner: NodeId) -> &Bus {
        &self.buses[owner]
    }

    /// The buses node `v` is attached to (bus ids = owner ids).
    pub fn buses_of_node(&self, v: NodeId) -> &[usize] {
        &self.incident[v]
    }

    /// The bus-degree of node `v`: how many buses it is attached to.
    pub fn bus_degree(&self, v: NodeId) -> usize {
        self.incident[v].len()
    }

    /// The maximum bus-degree over all nodes. Section V shows it is at most
    /// `2k + 3`.
    pub fn max_bus_degree(&self) -> usize {
        (0..self.node_count)
            .map(|v| self.bus_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The degree bound `2k + 3` stated in Section V.
    pub fn degree_bound(&self) -> usize {
        2 * self.k + 3
    }

    /// The point-to-point connectivity implied by the buses when each bus is
    /// used in the restricted owner-to-member pattern. This equals the edge
    /// set of `B^k_{2,h}` — the bus implementation loses no connectivity.
    pub fn implied_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.node_count)
            .name(format!("bus-implied B^{}(2,{})", self.k, self.h));
        for bus in &self.buses {
            for &m in &bus.members {
                if m != bus.owner {
                    b.add_edge(bus.owner, m);
                }
            }
        }
        b.build()
    }

    /// Converts a set of faulty buses into the node-fault set the paper
    /// prescribes: the owner of each faulty bus is declared faulty.
    pub fn bus_faults_to_node_faults<I: IntoIterator<Item = usize>>(
        &self,
        faulty_buses: I,
    ) -> FaultSet {
        FaultSet::from_nodes(self.node_count, faulty_buses)
    }

    /// Combined fault handling: some nodes and some buses fail; returns the
    /// node-fault set that subsumes both.
    pub fn combined_faults<N, B>(&self, node_faults: N, bus_faults: B) -> FaultSet
    where
        N: IntoIterator<Item = NodeId>,
        B: IntoIterator<Item = usize>,
    {
        let mut set = FaultSet::from_nodes(self.node_count, node_faults);
        for bus in bus_faults {
            set.add(bus);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdb_graph::properties;

    #[test]
    fn fig4_example_b1_23() {
        // Fig. 4: the bus implementation of B^1_{2,3} (9 nodes).
        let arch = BusArchitecture::new(3, 1);
        assert_eq!(arch.node_count(), 9);
        assert_eq!(arch.buses().len(), 9);
        // Each bus spans the block of 2k+2 = 4 consecutive nodes starting at
        // (2i - 1) mod 9.
        assert_eq!(arch.bus_of(0).members, vec![0, 1, 2, 8]);
        assert_eq!(arch.bus_of(3).members, vec![5, 6, 7, 8]);
        // Bus degree is at most 2k + 3 = 5.
        assert!(arch.max_bus_degree() <= arch.degree_bound());
    }

    #[test]
    fn implied_connectivity_equals_point_to_point_graph() {
        for (h, k) in [(3, 0), (3, 1), (4, 1), (4, 2), (5, 2)] {
            let ft = FtDeBruijn2::new(h, k);
            let arch = BusArchitecture::from_ft(&ft);
            assert!(
                properties::same_edge_set(&arch.implied_graph(), ft.graph()),
                "bus-implied graph differs from B^{k}(2,{h})"
            );
        }
    }

    #[test]
    fn bus_degree_bound_across_parameters() {
        for h in 3..=6 {
            for k in 0..=4 {
                let arch = BusArchitecture::new(h, k);
                assert!(
                    arch.max_bus_degree() <= 2 * k + 3,
                    "bus degree {} > 2k+3 for h={h}, k={k}",
                    arch.max_bus_degree()
                );
            }
        }
    }

    #[test]
    fn every_node_taps_its_own_bus() {
        let arch = BusArchitecture::new(4, 2);
        for v in 0..arch.node_count() {
            assert!(arch.buses_of_node(v).contains(&v));
            assert!(arch.bus_degree(v) >= 1);
        }
    }

    #[test]
    fn fig5_bus_fault_reconfiguration() {
        // Fig. 5: one fault in the bus implementation of B^1_{2,3}. A faulty
        // bus is charged to its owner; the single spare absorbs it.
        let ft = FtDeBruijn2::new(3, 1);
        let arch = BusArchitecture::from_ft(&ft);
        for faulty_bus in 0..arch.node_count() {
            let faults = arch.bus_faults_to_node_faults([faulty_bus]);
            let phi = ft.reconfigure_verified(&faults).unwrap();
            assert!(phi.as_slice().iter().all(|&v| v != faulty_bus));
        }
    }

    #[test]
    fn combined_faults_merge_both_kinds() {
        let arch = BusArchitecture::new(4, 2);
        let faults = arch.combined_faults([3], [10]);
        assert_eq!(faults.len(), 2);
        assert!(faults.contains(3));
        assert!(faults.contains(10));
        // Duplicates collapse.
        let dup = arch.combined_faults([5], [5]);
        assert_eq!(dup.len(), 1);
    }

    #[test]
    fn attached_includes_owner_exactly_once() {
        let arch = BusArchitecture::new(3, 1);
        for bus in arch.buses() {
            let attached = bus.attached();
            assert!(attached.contains(&bus.owner));
            let mut dedup = attached.clone();
            dedup.dedup();
            assert_eq!(dedup, attached);
        }
    }
}
