//! Fault models: node faults, edge faults, and fault-set enumeration.
//!
//! The paper considers node faults only, and notes that "edge faults can be
//! tolerated by viewing a node that is incident to the faulty edge as being
//! faulty"; [`FaultSet::from_edge_faults`] implements exactly that reduction.
//! Section V extends the idea to bus faults (a faulty bus is charged to the
//! node that owns it), which [`crate::bus`] builds on. Directed-link faults —
//! where individual CSR edge slots die rather than whole nodes — live in
//! [`crate::linkfault`] and project back onto this node model via
//! [`crate::linkfault::LinkFaultSet::project_to_nodes`].

use ftdb_graph::{BitSet, Graph, NodeId};

/// Errors reported by the fault-set generators instead of panicking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// Asked to fault more elements than the sampling universe holds.
    CountExceedsUniverse {
        /// Requested number of faulty elements.
        count: usize,
        /// Size of the universe being sampled from.
        universe: usize,
    },
    /// A link fault named a directed edge the graph does not have.
    MissingLink {
        /// Source endpoint of the missing directed link.
        from: NodeId,
        /// Target endpoint of the missing directed link.
        to: NodeId,
    },
    /// A node id lies outside the host graph.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        universe: usize,
    },
}

impl core::fmt::Display for FaultError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            FaultError::CountExceedsUniverse { count, universe } => {
                write!(f, "cannot fault {count} of {universe} elements")
            }
            FaultError::MissingLink { from, to } => {
                write!(f, "directed link {from} -> {to} does not exist")
            }
            FaultError::NodeOutOfRange { node, universe } => {
                write!(f, "node {node} out of range for {universe}-node graph")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A set of faulty nodes of a fault-tolerant graph with a fixed node count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSet {
    nodes: BitSet,
}

impl FaultSet {
    /// An empty fault set for a graph with `universe` nodes.
    pub fn empty(universe: usize) -> Self {
        FaultSet {
            nodes: BitSet::new(universe),
        }
    }

    /// A fault set containing the given faulty nodes.
    ///
    /// # Panics
    /// Panics if a node id is `>= universe`.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(universe: usize, nodes: I) -> Self {
        FaultSet {
            nodes: BitSet::from_iter(universe, nodes),
        }
    }

    /// Converts a set of edge faults into the node-fault set the paper
    /// prescribes: for every faulty edge, its lower-numbered endpoint is
    /// declared faulty. (Any fixed rule that marks one endpoint works; using
    /// the lower endpoint keeps the reduction deterministic.)
    pub fn from_edge_faults<I: IntoIterator<Item = (NodeId, NodeId)>>(
        universe: usize,
        edges: I,
    ) -> Self {
        FaultSet::from_nodes(universe, edges.into_iter().map(|(u, v)| u.min(v)))
    }

    /// Draws a uniformly random fault set of exactly `count` distinct nodes.
    ///
    /// Uses Floyd's sampling algorithm: `count` draws and one bit set,
    /// instead of materialising and shuffling all `universe` ids — the
    /// difference between O(count) and O(universe) work per Monte-Carlo
    /// trial on million-node graphs. Returns
    /// [`FaultError::CountExceedsUniverse`] when `count > universe`.
    pub fn random<R: rand::RngExt>(
        universe: usize,
        count: usize,
        rng: &mut R,
    ) -> Result<Self, FaultError> {
        if count > universe {
            return Err(FaultError::CountExceedsUniverse { count, universe });
        }
        // Floyd's algorithm: for j in n-count..n draw t uniform on [0, j];
        // take t unless already taken, in which case take j. Each j is the
        // largest id that can newly enter, which makes every count-subset
        // equally likely (the classic induction on j).
        let mut nodes = BitSet::new(universe);
        for j in universe - count..universe {
            let t = rng.random_range(0..j + 1);
            if !nodes.insert(t) {
                nodes.insert(j);
            }
        }
        Ok(FaultSet { nodes })
    }

    /// Marks `node` as faulty. Returns `true` if it was previously healthy.
    pub fn add(&mut self, node: NodeId) -> bool {
        self.nodes.insert(node)
    }

    /// Returns whether `node` is faulty.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(node)
    }

    /// Number of faulty nodes.
    pub fn len(&self) -> usize {
        self.nodes.count()
    }

    /// `true` if no node is faulty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The size of the universe (total node count of the host graph).
    pub fn universe(&self) -> usize {
        self.nodes.capacity()
    }

    /// Iterates over the faulty nodes in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter()
    }

    /// The healthy (non-faulty) nodes in increasing order, without
    /// materialising a vector. This is the hot-path accessor: the
    /// reconfiguration map and the verifier consume the healthy sequence
    /// directly from the bit words.
    pub fn healthy_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter_complement()
    }

    /// Number of healthy nodes (`universe − len`).
    pub fn healthy_count(&self) -> usize {
        self.universe() - self.len()
    }

    /// The healthy (non-faulty) nodes in increasing order, as a vector.
    /// Prefer [`FaultSet::healthy_iter`] in loops — it does not allocate.
    pub fn healthy(&self) -> Vec<NodeId> {
        self.healthy_iter().collect()
    }

    /// The underlying bit set of faulty nodes.
    pub fn as_bitset(&self) -> &BitSet {
        &self.nodes
    }
}

/// Iterator over *all* fault sets of exactly `k` nodes out of `n`, in
/// lexicographic order. Used by the exhaustive `(k, G)`-tolerance verifier.
///
/// The number of combinations is `C(n, k)`; callers are expected to keep the
/// parameters small enough (the experiments use it up to a few hundred
/// thousand combinations, split across threads).
#[derive(Clone, Debug)]
pub struct Combinations {
    n: usize,
    k: usize,
    current: Option<Vec<usize>>,
}

impl Combinations {
    /// Creates the enumeration of all `k`-subsets of `0..n`.
    pub fn new(n: usize, k: usize) -> Self {
        let current = if k <= n { Some((0..k).collect()) } else { None };
        Combinations { n, k, current }
    }

    /// The total number of combinations `C(n, k)` (saturating at `u128::MAX`).
    pub fn total(n: usize, k: usize) -> u128 {
        if k > n {
            return 0;
        }
        let k = k.min(n - k);
        let mut result: u128 = 1;
        for i in 0..k {
            result = result.saturating_mul((n - i) as u128) / (i as u128 + 1);
        }
        result
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.current.as_mut()?;
        let result = current.clone();
        // Advance to the next combination in lexicographic order.
        if self.k == 0 {
            self.current = None;
            return Some(result);
        }
        let mut i = self.k;
        loop {
            if i == 0 {
                self.current = None;
                break;
            }
            i -= 1;
            if current[i] != i + self.n - self.k {
                current[i] += 1;
                for j in i + 1..self.k {
                    current[j] = current[j - 1] + 1;
                }
                break;
            }
        }
        Some(result)
    }
}

/// In-place revolving-door enumeration of all `k`-subsets of `0..n`
/// (Knuth, TAOCP 7.2.1.3, Algorithm R).
///
/// Unlike [`Combinations`], which clones a fresh `Vec` per combination, this
/// enumerator mutates one internal buffer and lends it out as a sorted
/// slice — zero allocation per step, which is what the exhaustive verifier's
/// hot loop needs. Consecutive combinations differ by exactly one element
/// (the "revolving door"), and the buffer always stays sorted ascending.
#[derive(Clone, Debug)]
pub struct RevolvingDoor {
    n: usize,
    k: usize,
    /// 1-based: `c[1..=k]` is the combination, `c[k+1] = n` is the sentinel.
    c: Vec<usize>,
    started: bool,
    done: bool,
}

impl RevolvingDoor {
    /// Creates the enumeration of all `k`-subsets of `0..n`.
    pub fn new(n: usize, k: usize) -> Self {
        // `c[k+1] = n` is the algorithm's sentinel; `c[k+2] = n` pads the
        // one-past-sentinel read step R5 performs just before terminating.
        let mut c = vec![0; k + 3];
        for (j, slot) in c.iter_mut().enumerate().take(k + 1).skip(1) {
            *slot = j - 1;
        }
        c[k + 1] = n;
        c[k + 2] = n;
        RevolvingDoor {
            n,
            k,
            c,
            started: false,
            done: k > n,
        }
    }

    /// Advances to the next combination and lends it as a sorted slice, or
    /// returns `None` when the enumeration is exhausted.
    pub fn next_set(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.c[1..=self.k]);
        }
        if self.k == 0 || self.k == self.n {
            self.done = true;
            return None;
        }
        let c = &mut self.c;
        // R3 [Easy case?]
        let mut j;
        if self.k % 2 == 1 {
            // analyzer: allow(transitive-panic) -- c holds k + 2 sentinel slots, k >= 1 on this branch (Knuth 7.2.1.3 T)
            if c[1] + 1 < c[2] {
                // analyzer: allow(transitive-panic) -- in bounds: c holds k + 2 sentinel slots (Knuth 7.2.1.3 T)
                c[1] += 1;
                return Some(&c[1..=self.k]);
            }
            j = 2;
        } else {
            // analyzer: allow(transitive-panic) -- c holds k + 2 sentinel slots, k >= 1 on this branch (Knuth 7.2.1.3 T)
            if c[1] > 0 {
                // analyzer: allow(transitive-panic) -- in bounds: c holds k + 2 sentinel slots (Knuth 7.2.1.3 T)
                c[1] -= 1;
                return Some(&c[1..=self.k]);
            }
            j = 2;
            // Skip straight to R5 for even k.
            loop {
                // R5 [Try to increase c_j.] — here c_{j-1} = j - 2.
                if c[j] + 1 < c[j + 1] {
                    c[j - 1] = c[j];
                    c[j] += 1;
                    return Some(&c[1..=self.k]);
                }
                j += 1;
                if j > self.k {
                    self.done = true;
                    return None;
                }
                // R4 [Try to decrease c_j.] — here c_j = c_{j-1} + 1.
                if c[j] >= j {
                    c[j] = c[j - 1];
                    c[j - 1] = j - 2;
                    return Some(&c[1..=self.k]);
                }
                j += 1;
            }
        }
        loop {
            // R4 [Try to decrease c_j.] — here c_j = c_{j-1} + 1. For k = 1
            // the easy case has already exhausted the enumeration and j
            // points past the combination, so terminate instead.
            if j > self.k {
                self.done = true;
                return None;
            }
            if c[j] >= j {
                c[j] = c[j - 1];
                c[j - 1] = j - 2;
                return Some(&c[1..=self.k]);
            }
            j += 1;
            // R5 [Try to increase c_j.]
            if c[j] + 1 < c[j + 1] {
                c[j - 1] = c[j];
                c[j] += 1;
                return Some(&c[1..=self.k]);
            }
            j += 1;
            if j > self.k {
                self.done = true;
                return None;
            }
        }
    }

    /// The total number of combinations this enumeration will produce.
    pub fn total(&self) -> u128 {
        Combinations::total(self.n, self.k)
    }
}

/// Samples `samples` random fault sets of size `k` (with replacement across
/// samples) for a graph `g`, returning them as [`FaultSet`]s. Fails with
/// [`FaultError::CountExceedsUniverse`] when `k` exceeds the node count.
pub fn sample_fault_sets<R: rand::RngExt>(
    g: &Graph,
    k: usize,
    samples: usize,
    rng: &mut R,
) -> Result<Vec<FaultSet>, FaultError> {
    (0..samples)
        .map(|_| FaultSet::random(g.node_count(), k, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdb_graph::generators;

    #[test]
    fn basic_fault_set_operations() {
        let mut f = FaultSet::empty(10);
        assert!(f.is_empty());
        assert!(f.add(3));
        assert!(!f.add(3));
        f.add(7);
        assert_eq!(f.len(), 2);
        assert!(f.contains(3));
        assert!(!f.contains(4));
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(f.healthy().len(), 8);
        assert_eq!(f.universe(), 10);
    }

    #[test]
    fn edge_fault_reduction_marks_one_endpoint() {
        let f = FaultSet::from_edge_faults(8, [(5, 2), (6, 7)]);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![2, 6]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn random_fault_set_has_exact_size() {
        let mut rng = rand::rng();
        for _ in 0..20 {
            let f = FaultSet::random(20, 5, &mut rng).unwrap();
            assert_eq!(f.len(), 5);
            assert!(f.iter().all(|v| v < 20));
        }
        // Boundary cases: empty draw, full draw.
        assert_eq!(FaultSet::random(9, 0, &mut rng).unwrap().len(), 0);
        assert_eq!(FaultSet::random(9, 9, &mut rng).unwrap().len(), 9);
    }

    #[test]
    fn random_rejects_count_above_universe() {
        let mut rng = rand::rng();
        assert_eq!(
            FaultSet::random(4, 5, &mut rng),
            Err(FaultError::CountExceedsUniverse {
                count: 5,
                universe: 4
            })
        );
        let g = generators::cycle(6);
        assert!(sample_fault_sets(&g, 7, 2, &mut rng).is_err());
        // Errors render a human-readable message.
        let msg = format!(
            "{}",
            FaultError::CountExceedsUniverse {
                count: 5,
                universe: 4
            }
        );
        assert!(msg.contains("5") && msg.contains("4"));
    }

    /// The previous `FaultSet::random` implementation, kept as the reference
    /// distribution for the equivalence test below: materialise every id,
    /// shuffle, take a prefix.
    fn random_by_full_shuffle<R: rand::Rng>(
        universe: usize,
        count: usize,
        rng: &mut R,
    ) -> FaultSet {
        use rand::seq::SliceRandom;
        let mut all: Vec<NodeId> = (0..universe).collect();
        all.shuffle(rng);
        FaultSet::from_nodes(universe, all.into_iter().take(count))
    }

    #[test]
    fn floyd_sampling_matches_shuffle_distribution() {
        use rand::{rngs::StdRng, SeedableRng};
        // Both samplers claim uniformity over all C(6, 3) = 20 subsets. Draw
        // 4000 sets with each and check every subset lands in a wide band
        // around the expected 200 hits (±7 sd) for both — a distribution
        // mismatch (e.g. a biased Floyd insert) lands far outside the band.
        let (n, k, draws) = (6usize, 3usize, 4000usize);
        let total = Combinations::total(n, k) as usize;
        let key = |f: &FaultSet| f.iter().fold(0usize, |acc, v| acc | (1 << v));
        let mut floyd = vec![0usize; 1 << n];
        let mut shuffle = vec![0usize; 1 << n];
        let mut rng = StdRng::seed_from_u64(0x1992_1c44);
        for _ in 0..draws {
            floyd[key(&FaultSet::random(n, k, &mut rng).unwrap())] += 1;
            shuffle[key(&random_by_full_shuffle(n, k, &mut rng))] += 1;
        }
        let expected = draws / total; // 200
        let band = 100..=2 * expected; // ±~7 sd around the mean
        let mut subsets = 0;
        for mask in 0..1usize << n {
            if (mask as u32).count_ones() as usize != k {
                assert_eq!(floyd[mask], 0, "off-size subset drawn: {mask:#b}");
                assert_eq!(shuffle[mask], 0);
                continue;
            }
            subsets += 1;
            assert!(
                band.contains(&floyd[mask]),
                "floyd biased on subset {mask:#b}: {}",
                floyd[mask]
            );
            assert!(
                band.contains(&shuffle[mask]),
                "shuffle reference off on subset {mask:#b}: {}",
                shuffle[mask]
            );
        }
        assert_eq!(subsets, total);
    }

    #[test]
    fn combinations_enumerate_all_subsets() {
        let combos: Vec<Vec<usize>> = Combinations::new(5, 2).collect();
        assert_eq!(combos.len(), 10);
        assert_eq!(combos[0], vec![0, 1]);
        assert_eq!(combos[9], vec![3, 4]);
        // All distinct.
        let set: std::collections::BTreeSet<_> = combos.iter().cloned().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(
            Combinations::new(4, 0).collect::<Vec<_>>(),
            vec![Vec::<usize>::new()]
        );
        assert_eq!(Combinations::new(3, 4).count(), 0);
        assert_eq!(
            Combinations::new(3, 3).collect::<Vec<_>>(),
            vec![vec![0, 1, 2]]
        );
        assert_eq!(Combinations::total(5, 2), 10);
        assert_eq!(Combinations::total(17, 3), 680);
        assert_eq!(Combinations::total(3, 5), 0);
        assert_eq!(Combinations::total(10, 0), 1);
    }

    #[test]
    fn combination_count_matches_formula() {
        for (n, k) in [(6, 3), (8, 2), (9, 4), (7, 7)] {
            let count = Combinations::new(n, k).count() as u128;
            assert_eq!(count, Combinations::total(n, k), "n={n}, k={k}");
        }
    }

    #[test]
    fn healthy_iter_matches_healthy_vec() {
        let f = FaultSet::from_nodes(130, [0, 64, 65, 129]);
        assert_eq!(f.healthy_iter().collect::<Vec<_>>(), f.healthy());
        assert_eq!(f.healthy_count(), 126);
        assert_eq!(f.healthy().len(), 126);
        let none = FaultSet::empty(70);
        assert_eq!(none.healthy_iter().count(), 70);
        assert_eq!(none.healthy_iter().last(), Some(69));
    }

    #[test]
    fn revolving_door_enumerates_every_subset_once() {
        for n in 0..=8usize {
            for k in 0..=n + 1 {
                let mut rd = RevolvingDoor::new(n, k);
                let mut seen = std::collections::BTreeSet::new();
                let mut count = 0u128;
                let mut prev: Option<Vec<usize>> = None;
                while let Some(combo) = rd.next_set() {
                    // Sorted ascending, all in range.
                    assert!(
                        combo.windows(2).all(|w| w[0] < w[1]),
                        "n={n} k={k} {combo:?}"
                    );
                    assert!(combo.iter().all(|&v| v < n));
                    // Revolving door: consecutive sets differ in one element.
                    if let Some(p) = &prev {
                        let inter = combo.iter().filter(|v| p.contains(v)).count();
                        assert_eq!(
                            inter + 1,
                            k,
                            "not a revolving-door step: {p:?} -> {combo:?}"
                        );
                    }
                    prev = Some(combo.to_vec());
                    seen.insert(combo.to_vec());
                    count += 1;
                }
                assert_eq!(count, Combinations::total(n, k), "n={n} k={k}");
                assert_eq!(
                    seen.len() as u128,
                    count,
                    "duplicate subset for n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn revolving_door_agrees_with_lexicographic_combinations() {
        for (n, k) in [(6usize, 3usize), (9, 2), (7, 5), (5, 0), (4, 4)] {
            let lex: std::collections::BTreeSet<Vec<usize>> = Combinations::new(n, k).collect();
            let mut rd = RevolvingDoor::new(n, k);
            let mut gray = std::collections::BTreeSet::new();
            while let Some(c) = rd.next_set() {
                gray.insert(c.to_vec());
            }
            assert_eq!(lex, gray, "n={n} k={k}");
        }
    }

    #[test]
    fn sampling_produces_requested_number() {
        let g = generators::cycle(12);
        let mut rng = rand::rng();
        let sets = sample_fault_sets(&g, 3, 7, &mut rng).unwrap();
        assert_eq!(sets.len(), 7);
        assert!(sets.iter().all(|f| f.len() == 3 && f.universe() == 12));
    }
}
