//! Fault models: node faults, edge faults, and fault-set enumeration.
//!
//! The paper considers node faults only, and notes that "edge faults can be
//! tolerated by viewing a node that is incident to the faulty edge as being
//! faulty"; [`FaultSet::from_edge_faults`] implements exactly that reduction.
//! Section V extends the idea to bus faults (a faulty bus is charged to the
//! node that owns it), which [`crate::bus`] builds on.

use ftdb_graph::{BitSet, Graph, NodeId};
use rand::seq::SliceRandom;

/// A set of faulty nodes of a fault-tolerant graph with a fixed node count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSet {
    nodes: BitSet,
}

impl FaultSet {
    /// An empty fault set for a graph with `universe` nodes.
    pub fn empty(universe: usize) -> Self {
        FaultSet {
            nodes: BitSet::new(universe),
        }
    }

    /// A fault set containing the given faulty nodes.
    ///
    /// # Panics
    /// Panics if a node id is `>= universe`.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(universe: usize, nodes: I) -> Self {
        FaultSet {
            nodes: BitSet::from_iter(universe, nodes),
        }
    }

    /// Converts a set of edge faults into the node-fault set the paper
    /// prescribes: for every faulty edge, its lower-numbered endpoint is
    /// declared faulty. (Any fixed rule that marks one endpoint works; using
    /// the lower endpoint keeps the reduction deterministic.)
    pub fn from_edge_faults<I: IntoIterator<Item = (NodeId, NodeId)>>(
        universe: usize,
        edges: I,
    ) -> Self {
        FaultSet::from_nodes(universe, edges.into_iter().map(|(u, v)| u.min(v)))
    }

    /// Draws a uniformly random fault set of exactly `count` distinct nodes.
    pub fn random<R: rand::Rng>(universe: usize, count: usize, rng: &mut R) -> Self {
        assert!(count <= universe, "cannot fault {count} of {universe} nodes");
        let mut all: Vec<NodeId> = (0..universe).collect();
        all.shuffle(rng);
        FaultSet::from_nodes(universe, all.into_iter().take(count))
    }

    /// Marks `node` as faulty. Returns `true` if it was previously healthy.
    pub fn add(&mut self, node: NodeId) -> bool {
        self.nodes.insert(node)
    }

    /// Returns whether `node` is faulty.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(node)
    }

    /// Number of faulty nodes.
    pub fn len(&self) -> usize {
        self.nodes.count()
    }

    /// `true` if no node is faulty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The size of the universe (total node count of the host graph).
    pub fn universe(&self) -> usize {
        self.nodes.capacity()
    }

    /// Iterates over the faulty nodes in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter()
    }

    /// The healthy (non-faulty) nodes in increasing order.
    pub fn healthy(&self) -> Vec<NodeId> {
        self.nodes.iter_complement().collect()
    }

    /// The underlying bit set of faulty nodes.
    pub fn as_bitset(&self) -> &BitSet {
        &self.nodes
    }
}

/// Iterator over *all* fault sets of exactly `k` nodes out of `n`, in
/// lexicographic order. Used by the exhaustive `(k, G)`-tolerance verifier.
///
/// The number of combinations is `C(n, k)`; callers are expected to keep the
/// parameters small enough (the experiments use it up to a few hundred
/// thousand combinations, split across threads).
#[derive(Clone, Debug)]
pub struct Combinations {
    n: usize,
    k: usize,
    current: Option<Vec<usize>>,
}

impl Combinations {
    /// Creates the enumeration of all `k`-subsets of `0..n`.
    pub fn new(n: usize, k: usize) -> Self {
        let current = if k <= n { Some((0..k).collect()) } else { None };
        Combinations { n, k, current }
    }

    /// The total number of combinations `C(n, k)` (saturating at `u128::MAX`).
    pub fn total(n: usize, k: usize) -> u128 {
        if k > n {
            return 0;
        }
        let k = k.min(n - k);
        let mut result: u128 = 1;
        for i in 0..k {
            result = result.saturating_mul((n - i) as u128) / (i as u128 + 1);
        }
        result
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.current.as_mut()?;
        let result = current.clone();
        // Advance to the next combination in lexicographic order.
        if self.k == 0 {
            self.current = None;
            return Some(result);
        }
        let mut i = self.k;
        loop {
            if i == 0 {
                self.current = None;
                break;
            }
            i -= 1;
            if current[i] != i + self.n - self.k {
                current[i] += 1;
                for j in i + 1..self.k {
                    current[j] = current[j - 1] + 1;
                }
                break;
            }
        }
        Some(result)
    }
}

/// Samples `samples` random fault sets of size `k` (with replacement across
/// samples) for a graph `g`, returning them as [`FaultSet`]s.
pub fn sample_fault_sets<R: rand::Rng>(
    g: &Graph,
    k: usize,
    samples: usize,
    rng: &mut R,
) -> Vec<FaultSet> {
    (0..samples)
        .map(|_| FaultSet::random(g.node_count(), k, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdb_graph::generators;

    #[test]
    fn basic_fault_set_operations() {
        let mut f = FaultSet::empty(10);
        assert!(f.is_empty());
        assert!(f.add(3));
        assert!(!f.add(3));
        f.add(7);
        assert_eq!(f.len(), 2);
        assert!(f.contains(3));
        assert!(!f.contains(4));
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(f.healthy().len(), 8);
        assert_eq!(f.universe(), 10);
    }

    #[test]
    fn edge_fault_reduction_marks_one_endpoint() {
        let f = FaultSet::from_edge_faults(8, [(5, 2), (6, 7)]);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![2, 6]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn random_fault_set_has_exact_size() {
        let mut rng = rand::rng();
        for _ in 0..20 {
            let f = FaultSet::random(20, 5, &mut rng);
            assert_eq!(f.len(), 5);
            assert!(f.iter().all(|v| v < 20));
        }
    }

    #[test]
    fn combinations_enumerate_all_subsets() {
        let combos: Vec<Vec<usize>> = Combinations::new(5, 2).collect();
        assert_eq!(combos.len(), 10);
        assert_eq!(combos[0], vec![0, 1]);
        assert_eq!(combos[9], vec![3, 4]);
        // All distinct.
        let set: std::collections::BTreeSet<_> = combos.iter().cloned().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(Combinations::new(4, 0).collect::<Vec<_>>(), vec![Vec::<usize>::new()]);
        assert_eq!(Combinations::new(3, 4).count(), 0);
        assert_eq!(Combinations::new(3, 3).collect::<Vec<_>>(), vec![vec![0, 1, 2]]);
        assert_eq!(Combinations::total(5, 2), 10);
        assert_eq!(Combinations::total(17, 3), 680);
        assert_eq!(Combinations::total(3, 5), 0);
        assert_eq!(Combinations::total(10, 0), 1);
    }

    #[test]
    fn combination_count_matches_formula() {
        for (n, k) in [(6, 3), (8, 2), (9, 4), (7, 7)] {
            let count = Combinations::new(n, k).count() as u128;
            assert_eq!(count, Combinations::total(n, k), "n={n}, k={k}");
        }
    }

    #[test]
    fn sampling_produces_requested_number() {
        let g = generators::cycle(12);
        let mut rng = rand::rng();
        let sets = sample_fault_sets(&g, 3, 7, &mut rng);
        assert_eq!(sets.len(), 7);
        assert!(sets.iter().all(|f| f.len() == 3 && f.universe() == 12));
    }
}
