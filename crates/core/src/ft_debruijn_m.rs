//! The fault-tolerant base-m de Bruijn graph `B^k_{m,h}` (Section IV-A).
//!
//! For `m ≥ 2`, `h ≥ 3` and `k ≥ 0`, `B^k_{m,h}` has nodes
//! `{0, …, m^h + k - 1}` and an edge `(x, y)` iff there is an
//! `r ∈ {(m-1)(-k), …, (m-1)(k+1)}` with `y = X(x, m, r, m^h + k)` or
//! `x = X(y, m, r, m^h + k)`.
//!
//! The graph has `m^h + k` nodes and degree at most `4(m-1)k + 2m`
//! (Theorem 2 / Corollary 3); for `m = 2` it coincides with
//! [`crate::FtDeBruijn2`].

use crate::fault::FaultSet;
use crate::reconfig::reconfigure;
use ftdb_graph::{Embedding, Graph, GraphBuilder, NodeId};
use ftdb_topology::labels::{pow_nodes, x_fn};
use ftdb_topology::DeBruijnM;

/// The fault-tolerant base-m de Bruijn graph `B^k_{m,h}`.
#[derive(Clone, Debug)]
pub struct FtDeBruijnM {
    m: usize,
    h: usize,
    k: usize,
    graph: Graph,
    target: DeBruijnM,
}

impl FtDeBruijnM {
    /// Builds `B^k_{m,h}`.
    ///
    /// # Panics
    /// Panics if `m < 2`, `h < 1`, or `m^h + k` overflows.
    pub fn new(m: usize, h: usize, k: usize) -> Self {
        assert!(m >= 2, "B^k(m,h) needs m >= 2");
        assert!(h >= 1, "B^k(m,h) needs h >= 1");
        let n = pow_nodes(m, h)
            .checked_add(k)
            .expect("m^h + k overflows usize");
        let span = (m as i64 - 1) * (k as i64);
        let hi = (m as i64 - 1) * (k as i64 + 1);
        let mut b = GraphBuilder::new(n).name(format!("B^{k}({m},{h})"));
        for x in 0..n {
            for r in -span..=hi {
                b.add_edge(x, x_fn(x, m, r, n));
            }
        }
        FtDeBruijnM {
            m,
            h,
            k,
            graph: b.build(),
            target: DeBruijnM::new(m, h),
        }
    }

    /// The base `m` of the target graph.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The number of digits `h` of the target graph.
    pub fn h(&self) -> usize {
        self.h
    }

    /// The fault budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of nodes, `m^h + k`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The degree bound `4(m-1)k + 2m` proven in Corollary 3.
    pub fn degree_bound(&self) -> usize {
        4 * (self.m - 1) * self.k + 2 * self.m
    }

    /// The underlying undirected graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The target graph `B_{m,h}` this construction protects.
    pub fn target(&self) -> &DeBruijnM {
        &self.target
    }

    /// The forward block of node `x`: the `(m-1)(2k+1) + 1` consecutive nodes
    /// `(mx + r) mod (m^h + k)` for `r ∈ {(m-1)(-k), …, (m-1)(k+1)}`.
    pub fn forward_block(&self, x: NodeId) -> Vec<NodeId> {
        let n = self.node_count();
        let lo = -((self.m as i64 - 1) * self.k as i64);
        let hi = (self.m as i64 - 1) * (self.k as i64 + 1);
        (lo..=hi).map(|r| x_fn(x, self.m, r, n)).collect()
    }

    /// Reconfigures around `faults`, returning the rank-based embedding `φ`
    /// of `B_{m,h}` into this graph.
    ///
    /// # Panics
    /// Panics if more than `k` faults are given or the universe mismatches.
    pub fn reconfigure(&self, faults: &FaultSet) -> Embedding {
        assert!(
            faults.len() <= self.k,
            "{} faults exceed the fault budget k = {}",
            faults.len(),
            self.k
        );
        assert_eq!(
            faults.universe(),
            self.node_count(),
            "fault set universe does not match the fault-tolerant graph"
        );
        reconfigure(self.target.node_count(), faults)
    }

    /// Reconfigures and verifies the resulting embedding (Theorem 2).
    pub fn reconfigure_verified(
        &self,
        faults: &FaultSet,
    ) -> Result<Embedding, ftdb_graph::embedding::EmbeddingError> {
        let phi = self.reconfigure(faults);
        phi.verify(self.target.graph(), &self.graph)?;
        Ok(phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ft_debruijn::FtDeBruijn2;
    use ftdb_graph::properties;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn base2_specialisation_matches_ft_debruijn2() {
        for (h, k) in [(3, 0), (3, 1), (4, 2), (5, 1)] {
            let general = FtDeBruijnM::new(2, h, k);
            let special = FtDeBruijn2::new(h, k);
            assert!(
                properties::same_edge_set(general.graph(), special.graph()),
                "B^{k}(2,{h}) mismatch"
            );
            assert_eq!(general.degree_bound(), special.degree_bound());
        }
    }

    #[test]
    fn zero_spares_reduces_to_target() {
        for (m, h) in [(3, 3), (4, 2), (5, 2)] {
            let ft = FtDeBruijnM::new(m, h, 0);
            assert!(
                properties::same_edge_set(ft.graph(), DeBruijnM::new(m, h).graph()),
                "B^0({m},{h}) != B({m},{h})"
            );
        }
    }

    #[test]
    fn node_count_and_degree_bound() {
        for (m, h, k) in [(3, 3, 1), (3, 3, 2), (4, 2, 3), (5, 2, 1), (4, 3, 2)] {
            let ft = FtDeBruijnM::new(m, h, k);
            assert_eq!(ft.node_count(), pow_nodes(m, h) + k);
            assert!(
                ft.graph().max_degree() <= ft.degree_bound(),
                "degree {} exceeds 4(m-1)k+2m = {} for m={m}, h={h}, k={k}",
                ft.graph().max_degree(),
                ft.degree_bound()
            );
        }
    }

    #[test]
    fn corollary_4_single_fault_degree() {
        // Corollary 4: B^1_{m,h} has m^h + 1 nodes and degree at most 6m - 4.
        for (m, h) in [(3, 3), (4, 2), (5, 2), (6, 2)] {
            let ft = FtDeBruijnM::new(m, h, 1);
            assert_eq!(ft.node_count(), pow_nodes(m, h) + 1);
            assert!(
                ft.graph().max_degree() <= 6 * m - 4,
                "degree {} > 6m-4 for m={m}, h={h}",
                ft.graph().max_degree()
            );
        }
    }

    #[test]
    fn all_single_faults_tolerated_base3() {
        let ft = FtDeBruijnM::new(3, 3, 1);
        for f in 0..ft.node_count() {
            let faults = FaultSet::from_nodes(ft.node_count(), [f]);
            ft.reconfigure_verified(&faults)
                .unwrap_or_else(|e| panic!("fault {f}: {e}"));
        }
    }

    proptest! {
        /// Randomised instantiation of Theorem 2.
        #[test]
        fn theorem_2_random_fault_sets(m in 2usize..5, h in 3usize..5, k in 0usize..4, seed in 0u64..200) {
            let ft = FtDeBruijnM::new(m, h, k);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
            let phi = ft.reconfigure(&faults);
            prop_assert!(phi.verify(ft.target().graph(), ft.graph()).is_ok());
        }

        /// The forward block has (m-1)(2k+1)+1 entries.
        #[test]
        fn forward_block_size(m in 2usize..5, h in 2usize..4, k in 0usize..4, x in 0usize..300) {
            let ft = FtDeBruijnM::new(m, h, k);
            let x = x % ft.node_count();
            prop_assert_eq!(ft.forward_block(x).len(), (m - 1) * (2 * k + 1) + 1);
        }
    }
}
