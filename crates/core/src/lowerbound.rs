//! Degree lower-bound exploration (the paper's open problem).
//!
//! The conclusion of the paper states: *"it has not been proven that the
//! given constructions have the smallest possible degrees. As a result, it
//! would be interesting to prove lower bounds on the degrees of graphs with
//! the given fault-tolerance properties."* This module does not prove a
//! lower bound, but it provides the machinery to *explore* one empirically:
//!
//! * [`is_tolerant_general`] decides `(k, G)`-tolerance of an arbitrary
//!   candidate host in the full generality of Hayes's definition — for every
//!   fault set it searches for *any* embedding of the target into the
//!   surviving subgraph (not merely the paper's rank-based one), using the
//!   backtracking search from `ftdb-graph`. This is exponential in the worst
//!   case and is meant for small instances.
//! * [`shaved_offset_candidates`] enumerates candidates obtained by removing
//!   offsets from the paper's construction (which is exactly the
//!   "multiplicative circulant" with offset set `{−k, …, k+1}`), and
//!   [`search_lower_degree`] reports whether any strictly sparser member of
//!   that family is still `(k, B_{2,h})`-tolerant.
//!
//! The experiments use this to show that, at least within the construction's
//! own family and at small scale, no offset can be dropped — evidence (not
//! proof) that the `4k + 4` figure is tight for this style of construction.

use crate::fault::{Combinations, FaultSet};
use ftdb_graph::ops::remove_nodes;
use ftdb_graph::search::{find_embedding, SearchOptions, SearchResult};
use ftdb_graph::{Graph, GraphBuilder};
use ftdb_topology::labels::x_fn;
use ftdb_topology::DeBruijn2;

/// Outcome of a general (search-based) tolerance check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GeneralTolerance {
    /// Every fault set of the requested size admits some embedding.
    Tolerant,
    /// A fault set with no embedding was found (the witness is returned).
    NotTolerant {
        /// A fault set for which no embedding of the target exists.
        witness: Vec<usize>,
    },
    /// The embedding search ran out of budget on some fault set, so the
    /// question is unresolved at this budget.
    Unknown {
        /// The fault set on which the search gave up.
        undecided: Vec<usize>,
    },
}

impl GeneralTolerance {
    /// `true` if the host was shown tolerant.
    pub fn is_tolerant(&self) -> bool {
        matches!(self, GeneralTolerance::Tolerant)
    }
}

/// Decides whether `host` is `(k, target)`-tolerant in the general sense:
/// for **every** fault set of exactly `k` host nodes there exists **some**
/// embedding of `target` into the surviving induced subgraph.
///
/// `per_fault_budget` bounds the embedding search per fault set.
pub fn is_tolerant_general(
    target: &Graph,
    host: &Graph,
    k: usize,
    per_fault_budget: u64,
) -> GeneralTolerance {
    if host.node_count() < target.node_count() + k {
        // Too few nodes: removing k leaves fewer than |V(target)| nodes.
        let witness = (0..k.min(host.node_count())).collect();
        return GeneralTolerance::NotTolerant { witness };
    }
    let opts = SearchOptions {
        node_budget: per_fault_budget,
        fixed: None,
    };
    for combo in Combinations::new(host.node_count(), k) {
        let faults = FaultSet::from_nodes(host.node_count(), combo.iter().copied());
        let surviving = remove_nodes(host, faults.as_bitset());
        match find_embedding(target, &surviving.graph, &opts) {
            SearchResult::Found(_) => {}
            SearchResult::NoEmbedding => {
                return GeneralTolerance::NotTolerant { witness: combo };
            }
            SearchResult::BudgetExhausted => {
                return GeneralTolerance::Unknown { undecided: combo };
            }
        }
    }
    GeneralTolerance::Tolerant
}

/// Builds the "offset graph" on `n` nodes for a set of de Bruijn-style
/// offsets: `(x, (2x + r) mod n)` is an edge for every node `x` and every
/// offset `r`. The paper's `B^k_{2,h}` is exactly the offset graph on
/// `2^h + k` nodes with offsets `{−k, …, k+1}`.
pub fn offset_graph(n: usize, offsets: &[i64]) -> Graph {
    let mut b = GraphBuilder::new(n).name(format!("offset{offsets:?}"));
    for x in 0..n {
        for &r in offsets {
            b.add_edge(x, x_fn(x, 2, r, n));
        }
    }
    b.build()
}

/// A candidate host in the degree-lower-bound exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// The offsets defining the candidate (see [`offset_graph`]).
    pub offsets: Vec<i64>,
    /// Its measured maximum degree.
    pub max_degree: usize,
    /// Whether it was shown `(k, B_{2,h})`-tolerant, shown not tolerant, or
    /// left unresolved.
    pub tolerance: GeneralTolerance,
}

/// Enumerates the candidates obtained by deleting exactly one offset from
/// the paper's offset set `{−k, …, k+1}`.
pub fn shaved_offset_candidates(k: usize) -> Vec<Vec<i64>> {
    let full: Vec<i64> = (-(k as i64)..=(k as i64 + 1)).collect();
    (0..full.len())
        .map(|skip| {
            full.iter()
                .enumerate()
                .filter_map(|(i, &r)| (i != skip).then_some(r))
                .collect()
        })
        .collect()
}

/// The result of a lower-degree search within the offset family.
#[derive(Clone, Debug)]
pub struct LowerDegreeSearch {
    /// The paper's construction degree for reference (measured).
    pub paper_degree: usize,
    /// All candidates examined, with their verdicts.
    pub candidates: Vec<Candidate>,
}

impl LowerDegreeSearch {
    /// The sparsest tolerant candidate found, if any beat the paper's degree.
    pub fn best_improvement(&self) -> Option<&Candidate> {
        self.candidates
            .iter()
            .filter(|c| c.tolerance.is_tolerant() && c.max_degree < self.paper_degree)
            .min_by_key(|c| c.max_degree)
    }
}

/// Searches for a `(k, B_{2,h})`-tolerant offset graph on `2^h + k` nodes
/// that is strictly sparser than the paper's construction, by shaving one
/// offset at a time from the paper's offset set.
pub fn search_lower_degree(h: usize, k: usize, per_fault_budget: u64) -> LowerDegreeSearch {
    let target = DeBruijn2::new(h);
    let n = target.node_count() + k;
    let paper = offset_graph(n, &(-(k as i64)..=(k as i64 + 1)).collect::<Vec<_>>());
    let paper_degree = paper.max_degree();
    let candidates = shaved_offset_candidates(k)
        .into_iter()
        .map(|offsets| {
            let host = offset_graph(n, &offsets);
            let max_degree = host.max_degree();
            let tolerance = is_tolerant_general(target.graph(), &host, k, per_fault_budget);
            Candidate {
                offsets,
                max_degree,
                tolerance,
            }
        })
        .collect();
    LowerDegreeSearch {
        paper_degree,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ft_debruijn::FtDeBruijn2;
    use ftdb_graph::properties;

    #[test]
    fn offset_graph_with_full_offsets_is_the_paper_construction() {
        for (h, k) in [(3, 1), (3, 2), (4, 1)] {
            let offsets: Vec<i64> = (-(k as i64)..=(k as i64 + 1)).collect();
            let candidate = offset_graph((1 << h) + k, &offsets);
            let ft = FtDeBruijn2::new(h, k);
            assert!(properties::same_edge_set(&candidate, ft.graph()));
        }
    }

    #[test]
    fn general_tolerance_accepts_the_paper_construction() {
        let ft = FtDeBruijn2::new(3, 1);
        let verdict = is_tolerant_general(ft.target().graph(), ft.graph(), 1, 5_000_000);
        assert!(verdict.is_tolerant());
    }

    #[test]
    fn general_tolerance_rejects_a_too_small_host() {
        let target = DeBruijn2::new(3);
        let host = DeBruijn2::new(3);
        let verdict = is_tolerant_general(target.graph(), host.graph(), 1, 1_000_000);
        assert!(matches!(verdict, GeneralTolerance::NotTolerant { .. }));
    }

    #[test]
    fn general_tolerance_rejects_plain_graph_plus_isolated_spare() {
        // B(2,3) plus one isolated node: the spare cannot take over any role,
        // so some single fault (any non-spare fault of a node whose loss
        // actually matters) defeats every embedding, not just the rank map.
        let target = DeBruijn2::new(3);
        let mut b = GraphBuilder::new(9);
        b.add_edges(target.graph().edges());
        let host = b.build();
        let verdict = is_tolerant_general(target.graph(), &host, 1, 10_000_000);
        assert!(matches!(verdict, GeneralTolerance::NotTolerant { .. }));
    }

    #[test]
    fn shaved_candidate_lists_have_expected_shape() {
        let shaved = shaved_offset_candidates(1);
        // Offsets {-1, 0, 1, 2} minus one each → 4 candidates of 3 offsets.
        assert_eq!(shaved.len(), 4);
        assert!(shaved.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn no_single_offset_can_be_dropped_for_h3_k1() {
        // Within the construction's own family, removing any one offset from
        // B^1_{2,3} destroys tolerance: every shaved candidate has a fault
        // set with no embedding at all. (At 9 nodes the full construction's
        // measured degree is 6, below the 4k+4 = 8 worst-case bound, because
        // several block edges coincide.)
        let search = search_lower_degree(3, 1, 10_000_000);
        assert_eq!(search.paper_degree, 6);
        assert_eq!(search.candidates.len(), 4);
        assert!(search.best_improvement().is_none());
        assert!(search
            .candidates
            .iter()
            .all(|c| matches!(c.tolerance, GeneralTolerance::NotTolerant { .. })));
    }

    #[test]
    fn shaving_can_help_only_at_toy_scale() {
        // For h = 3, k = 2 (a 10-node host) one offset *can* be dropped and
        // general (search-based) reconfiguration still succeeds — the
        // construction is not degree-optimal at toy scale, which is exactly
        // why the paper leaves lower bounds as an open problem. The
        // experiment driver shows the effect disappears already at h = 4.
        let search = search_lower_degree(3, 2, 10_000_000);
        assert_eq!(search.candidates.len(), 6);
        let improvement = search
            .best_improvement()
            .expect("a sparser tolerant candidate exists at this toy scale");
        assert!(improvement.max_degree < search.paper_degree);
    }

    #[test]
    fn unknown_is_reported_when_budget_is_tiny() {
        let ft = FtDeBruijn2::new(3, 1);
        let verdict = is_tolerant_general(ft.target().graph(), ft.graph(), 1, 1);
        assert!(matches!(verdict, GeneralTolerance::Unknown { .. }));
    }
}
