//! The reconfiguration algorithm (Section III-A of the paper).
//!
//! Given the fault-tolerant graph `G'` with `N + k` nodes and any set of at
//! most `k` faulty nodes, the reconfiguration algorithm maps the `N` nodes of
//! the target graph onto the healthy nodes of `G'` *monotonically*: target
//! node `x` is assigned to the `(x+1)`-st non-faulty node of `G'`. The paper
//! calls this map `φ` and proves (Theorems 1 and 2) that it is always an
//! embedding of the target into the surviving subgraph.
//!
//! The whole point of the construction is that reconfiguration is this
//! simple: no search, no global optimisation — every processor only needs to
//! know how many lower-numbered processors have failed (its displacement
//! `δ = φ(x) - x ∈ [0, k]`).

use crate::fault::FaultSet;
use ftdb_graph::{Embedding, NodeId};

/// Computes the reconfiguration map `φ` for a target graph with
/// `target_nodes` nodes, given the fault set of the fault-tolerant host.
///
/// `φ(x)` is the `(x+1)`-st healthy node of the host. The host must have at
/// least `target_nodes` healthy nodes.
///
/// # Panics
/// Panics if fewer than `target_nodes` healthy nodes remain.
pub fn reconfigure(target_nodes: usize, faults: &FaultSet) -> Embedding {
    let healthy = faults.healthy_count();
    assert!(
        healthy >= target_nodes,
        "only {healthy} healthy nodes remain, target needs {target_nodes}"
    );
    // Fill an exact-capacity map straight off the healthy iterator: one
    // allocation, no intermediate healthy-node vector.
    let mut map = Vec::with_capacity(target_nodes);
    map.extend(faults.healthy_iter().take(target_nodes));
    Embedding::from_map(map)
}

/// The per-node displacement table `δ(x) = φ(x) - x` of a reconfiguration.
///
/// Theorem 1's proof rests on `0 ≤ δ(x) ≤ k` and on `δ` being monotone
/// non-decreasing (Lemma 1); both facts are checked by tests and property
/// tests against this function.
pub fn displacements(phi: &Embedding) -> Vec<usize> {
    phi.as_slice()
        .iter()
        .enumerate()
        .map(|(x, &image)| {
            debug_assert!(image >= x, "monotone rank map cannot move a node down");
            image - x
        })
        .collect()
}

/// A single row of the relabelling table shown in the paper's Fig. 3: which
/// physical node of the fault-tolerant graph plays the role of which logical
/// node of the target after reconfiguration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelabelRow {
    /// Logical (target graph) node.
    pub logical: NodeId,
    /// Physical node of the fault-tolerant graph assigned to it.
    pub physical: NodeId,
    /// Displacement `physical - logical` (the `δ` of the proof).
    pub displacement: usize,
}

/// Produces the full relabelling table for a reconfiguration, one row per
/// target node.
pub fn relabel_table(phi: &Embedding) -> Vec<RelabelRow> {
    phi.as_slice()
        .iter()
        .enumerate()
        .map(|(logical, &physical)| RelabelRow {
            logical,
            physical,
            displacement: physical - logical,
        })
        .collect()
}

/// The physical nodes of the host that remain unused after reconfiguration
/// (healthy spares). With `f ≤ k` faults, exactly `k - f` healthy spares
/// remain.
pub fn unused_spares(phi: &Embedding, faults: &FaultSet) -> Vec<NodeId> {
    let used: std::collections::BTreeSet<NodeId> = phi.as_slice().iter().copied().collect();
    faults
        .healthy_iter()
        .filter(|v| !used.contains(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn maps_to_first_healthy_nodes() {
        // Host has 10 nodes, target 8, faults {0, 5}.
        let faults = FaultSet::from_nodes(10, [0, 5]);
        let phi = reconfigure(8, &faults);
        assert_eq!(phi.as_slice(), &[1, 2, 3, 4, 6, 7, 8, 9]);
        assert_eq!(displacements(&phi), vec![1, 1, 1, 1, 2, 2, 2, 2]);
        assert!(unused_spares(&phi, &faults).is_empty());
    }

    #[test]
    fn fewer_faults_leave_spares_at_the_end() {
        let faults = FaultSet::from_nodes(10, [4]);
        let phi = reconfigure(8, &faults);
        assert_eq!(phi.as_slice(), &[0, 1, 2, 3, 5, 6, 7, 8]);
        assert_eq!(unused_spares(&phi, &faults), vec![9]);
    }

    #[test]
    fn no_faults_is_identity() {
        let faults = FaultSet::empty(12);
        let phi = reconfigure(12, &faults);
        assert_eq!(phi.as_slice(), (0..12).collect::<Vec<_>>().as_slice());
        assert!(displacements(&phi).iter().all(|&d| d == 0));
    }

    #[test]
    #[should_panic]
    fn too_many_faults_panics() {
        let faults = FaultSet::from_nodes(10, [0, 1, 2]);
        reconfigure(8, &faults);
    }

    #[test]
    fn relabel_table_matches_phi() {
        let faults = FaultSet::from_nodes(6, [2]);
        let phi = reconfigure(5, &faults);
        let table = relabel_table(&phi);
        assert_eq!(table.len(), 5);
        assert_eq!(
            table[2],
            RelabelRow {
                logical: 2,
                physical: 3,
                displacement: 1
            }
        );
    }

    proptest! {
        /// δ(x) ∈ [0, k] for every x (the key fact in the proof of Theorem 1).
        #[test]
        fn displacement_bounded_by_fault_count(n in 4usize..60, k in 0usize..6, seed in 0u64..1000) {
            let host = n + k;
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let faults = FaultSet::random(host, k, &mut rng).expect("k within node count");
            let phi = reconfigure(n, &faults);
            let deltas = displacements(&phi);
            prop_assert!(deltas.iter().all(|&d| d <= k));
            // Monotone non-decreasing (Lemma 1 in action).
            prop_assert!(deltas.windows(2).all(|w| w[0] <= w[1]));
            // φ is injective and avoids every fault.
            prop_assert!(phi.as_slice().iter().all(|&v| !faults.contains(v)));
        }
    }
}
