//! # ftdb-core
//!
//! The primary contribution of Bruck, Cypher and Ho, *"Fault-Tolerant
//! de Bruijn and Shuffle-Exchange Networks"* (ICPP 1992 / IEEE TPDS 1994):
//! minimal-spare fault-tolerant versions of the de Bruijn and
//! shuffle-exchange interconnection networks.
//!
//! Given a target graph `G` with `N` nodes and a fault budget `k`, the
//! constructions in this crate produce a graph `G'` with exactly `N + k`
//! nodes that is **(k, G)-tolerant**: for *any* set of at most `k` node
//! faults, the surviving nodes of `G'` still contain `G` as a subgraph, and
//! the reconfiguration that exhibits that subgraph is a simple rank-based
//! relabelling.
//!
//! | Construction | Type | Nodes | Degree |
//! |--------------|------|-------|--------|
//! | [`FtDeBruijn2`](ft_debruijn::FtDeBruijn2) | `B^k_{2,h}` | `2^h + k` | ≤ `4k + 4` |
//! | [`FtDeBruijnM`](ft_debruijn_m::FtDeBruijnM) | `B^k_{m,h}` | `m^h + k` | ≤ `4(m-1)k + 2m` |
//! | [`FtShuffleExchange`](ft_shuffle::FtShuffleExchange) | via SE ⊆ DB | `2^h + k` | ≤ `4k + 4` |
//! | [`NaturalFtShuffleExchange`](ft_shuffle::NaturalFtShuffleExchange) | natural labeling | `2^h + k` | ≈ `6k + 4` |
//! | [`BusArchitecture`](bus::BusArchitecture) | Section V buses | `2^h + k` | `2k + 3` buses |
//!
//! The crate also contains the reconfiguration algorithm ([`reconfig`]),
//! fault modelling ([`fault`]), exhaustive/randomised `(k, G)`-tolerance
//! verification ([`verify`], parallelised with `crossbeam`), the
//! Samatham–Pradhan baseline used in the paper's comparison ([`baseline`]),
//! and executable versions of the paper's technical lemmas ([`lemmas`]).
//!
//! ## Quick example
//!
//! ```
//! use ftdb_core::{FtDeBruijn2, FaultSet, reconfigure};
//! use ftdb_topology::DeBruijn2;
//!
//! // Target: the 16-node de Bruijn graph B(2,4). Tolerate k = 2 faults.
//! let ft = FtDeBruijn2::new(4, 2);
//! assert_eq!(ft.node_count(), 18);
//! assert_eq!(ft.degree_bound(), 4 * 2 + 4); // Corollary 1
//! assert!(ft.graph().max_degree() <= ft.degree_bound());
//!
//! // Any two nodes may fail…
//! let faults = FaultSet::from_nodes(ft.node_count(), [3, 11]);
//! // …and the rank-based reconfiguration still finds a healthy B(2,4).
//! let phi = reconfigure(ft.target().graph().node_count(), &faults);
//! phi.verify(ft.target().graph(), ft.graph()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod bus;
pub mod fault;
pub mod ft_debruijn;
pub mod ft_debruijn_m;
pub mod ft_shuffle;
pub mod lemmas;
pub mod linkfault;
pub mod lowerbound;
pub mod reconfig;
pub mod verify;

pub use bus::BusArchitecture;
pub use fault::{FaultError, FaultSet};
pub use ft_debruijn::FtDeBruijn2;
pub use ft_debruijn_m::FtDeBruijnM;
pub use ft_shuffle::{FtShuffleExchange, NaturalFtShuffleExchange};
pub use linkfault::LinkFaultSet;
pub use reconfig::reconfigure;
