//! The fault-tolerant base-2 de Bruijn graph `B^k_{2,h}` (Section III-B).
//!
//! For `h ≥ 3` and `k ≥ 0`, `B^k_{2,h}` has nodes `{0, …, 2^h + k - 1}` and
//! an edge `(x, y)` iff there is an `r ∈ {-k, -k+1, …, k+1}` with
//! `y = X(x, 2, r, 2^h + k)` or `x = X(y, 2, r, 2^h + k)`.
//!
//! Its structure mirrors the target graph: calculations are performed modulo
//! `N + k` instead of `N`, and every node is connected to a *block of
//! `2k + 2` consecutive nodes* (starting at `(2x - k) mod (2^h + k)`) instead
//! of a block of 2. In particular `B^0_{2,h} = B_{2,h}`, the graph has
//! `2^h + k` nodes and its degree is at most `4k + 4` (Theorem 1 /
//! Corollary 1).

use crate::fault::FaultSet;
use crate::reconfig::reconfigure;
use ftdb_graph::{Embedding, Graph, GraphBuilder, NodeId};
use ftdb_topology::labels::{pow_nodes, x_fn};
use ftdb_topology::DeBruijn2;

/// The fault-tolerant base-2 de Bruijn graph `B^k_{2,h}`.
#[derive(Clone, Debug)]
pub struct FtDeBruijn2 {
    h: usize,
    k: usize,
    graph: Graph,
    target: DeBruijn2,
}

impl FtDeBruijn2 {
    /// Builds `B^k_{2,h}`.
    ///
    /// # Panics
    /// Panics if `h < 1` or `2^h + k` overflows. (The paper states the
    /// theorem for `h ≥ 3`; smaller `h` still produces a well-defined graph
    /// and is convenient in tests, but the `(k, G)`-tolerance guarantee is
    /// only claimed for `h ≥ 3`.)
    pub fn new(h: usize, k: usize) -> Self {
        assert!(h >= 1, "B^k(2,h) needs h >= 1");
        let n = pow_nodes(2, h)
            .checked_add(k)
            .expect("2^h + k overflows usize");
        let mut b = GraphBuilder::new(n).name(format!("B^{k}(2,{h})"));
        for x in 0..n {
            for r in -(k as i64)..=(k as i64 + 1) {
                b.add_edge(x, x_fn(x, 2, r, n));
            }
        }
        FtDeBruijn2 {
            h,
            k,
            graph: b.build(),
            target: DeBruijn2::new(h),
        }
    }

    /// The number of digits `h` of the target graph.
    pub fn h(&self) -> usize {
        self.h
    }

    /// The fault budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of nodes, `2^h + k`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The degree bound `4k + 4` proven in Corollary 1.
    pub fn degree_bound(&self) -> usize {
        4 * self.k + 4
    }

    /// The underlying undirected graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The target graph `B_{2,h}` this construction protects.
    pub fn target(&self) -> &DeBruijn2 {
        &self.target
    }

    /// The *forward block* of node `x`: the `2k + 2` consecutive nodes
    /// starting at `(2x - k) mod (2^h + k)` that `x` is connected to. This is
    /// the block a single bus replaces in the Section V implementation.
    pub fn forward_block(&self, x: NodeId) -> Vec<NodeId> {
        let n = self.node_count();
        (-(self.k as i64)..=(self.k as i64 + 1))
            .map(|r| x_fn(x, 2, r, n))
            .collect()
    }

    /// Reconfigures around `faults`: returns the embedding `φ` of the target
    /// `B_{2,h}` into this graph that avoids every faulty node.
    ///
    /// # Panics
    /// Panics if `faults` contains more than `k` nodes (the construction
    /// only guarantees tolerance of up to `k` faults) or if a fault id is
    /// out of range.
    pub fn reconfigure(&self, faults: &FaultSet) -> Embedding {
        assert!(
            faults.len() <= self.k,
            "{} faults exceed the fault budget k = {}",
            faults.len(),
            self.k
        );
        assert_eq!(
            faults.universe(),
            self.node_count(),
            "fault set universe does not match the fault-tolerant graph"
        );
        reconfigure(self.target.node_count(), faults)
    }

    /// Reconfigures and verifies in one step, returning the verified
    /// embedding. This is the operation a runtime system would perform after
    /// diagnosing the fault set.
    pub fn reconfigure_verified(
        &self,
        faults: &FaultSet,
    ) -> Result<Embedding, ftdb_graph::embedding::EmbeddingError> {
        let phi = self.reconfigure(faults);
        phi.verify(self.target.graph(), &self.graph)?;
        Ok(phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdb_graph::ops;
    use ftdb_graph::properties;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn zero_spares_reduces_to_target() {
        for h in 2..=6 {
            let ft = FtDeBruijn2::new(h, 0);
            assert!(
                properties::same_edge_set(ft.graph(), DeBruijn2::new(h).graph()),
                "B^0(2,{h}) != B(2,{h})"
            );
        }
    }

    #[test]
    fn fig2_example_b1_24() {
        // Fig. 2 of the paper: B^1_{2,4} has 17 nodes and degree at most 8.
        let ft = FtDeBruijn2::new(4, 1);
        assert_eq!(ft.node_count(), 17);
        assert!(ft.graph().max_degree() <= 8);
        assert_eq!(ft.degree_bound(), 8);
        // Node x is connected to the block of 4 consecutive nodes starting
        // at (2x - 1) mod 17.
        assert_eq!(ft.forward_block(3), vec![5, 6, 7, 8]);
        for b in [5, 6, 7, 8] {
            assert!(ft.graph().has_edge(3, b));
        }
        ft.graph().check_invariants().unwrap();
    }

    #[test]
    fn target_is_identity_subgraph_of_ft_graph_modulo_wraparound() {
        // B_{2,h} ⊆ B^k_{2,h} does NOT hold under the identity labeling in
        // general (the modulus changes), but with zero faults the rank map is
        // the identity and the reconfiguration theorem still applies.
        let ft = FtDeBruijn2::new(4, 2);
        let phi = ft.reconfigure(&FaultSet::empty(ft.node_count()));
        phi.verify(ft.target().graph(), ft.graph()).unwrap();
    }

    #[test]
    fn degree_bound_holds_across_parameters() {
        for h in 3..=7 {
            for k in 0..=4 {
                let ft = FtDeBruijn2::new(h, k);
                assert!(
                    ft.graph().max_degree() <= ft.degree_bound(),
                    "degree {} exceeds 4k+4={} for h={h}, k={k}",
                    ft.graph().max_degree(),
                    ft.degree_bound()
                );
                assert_eq!(ft.node_count(), (1 << h) + k);
            }
        }
    }

    #[test]
    fn corollary_2_single_fault_degree_8() {
        for h in 3..=8 {
            let ft = FtDeBruijn2::new(h, 1);
            assert!(ft.graph().max_degree() <= 8, "h={h}");
            assert_eq!(ft.node_count(), (1 << h) + 1);
        }
    }

    #[test]
    fn every_single_fault_in_b1_24_is_tolerated() {
        // Exhaustive check of Fig. 3's scenario: all 17 possible single
        // faults of B^1_{2,4}.
        let ft = FtDeBruijn2::new(4, 1);
        for f in 0..ft.node_count() {
            let faults = FaultSet::from_nodes(ft.node_count(), [f]);
            let phi = ft.reconfigure_verified(&faults).unwrap();
            // The embedding avoids the fault.
            assert!(phi.as_slice().iter().all(|&v| v != f));
        }
    }

    #[test]
    fn reconfigured_copy_lives_in_healthy_subgraph() {
        let ft = FtDeBruijn2::new(4, 2);
        let faults = FaultSet::from_nodes(ft.node_count(), [0, 9]);
        let phi = ft.reconfigure_verified(&faults).unwrap();
        // The image of the embedding must lie entirely inside the subgraph
        // induced by the healthy nodes.
        let healthy = ops::remove_nodes(ft.graph(), faults.as_bitset());
        for &image in phi.as_slice() {
            assert!(healthy.from_original(image).is_some());
        }
    }

    #[test]
    #[should_panic]
    fn too_many_faults_are_rejected() {
        let ft = FtDeBruijn2::new(3, 1);
        let faults = FaultSet::from_nodes(ft.node_count(), [0, 1]);
        ft.reconfigure(&faults);
    }

    proptest! {
        /// Randomised instantiation of Theorem 1: any ≤ k faults leave an
        /// embeddable healthy copy of the target.
        #[test]
        fn theorem_1_random_fault_sets(h in 3usize..7, k in 0usize..5, seed in 0u64..500) {
            let ft = FtDeBruijn2::new(h, k);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
            let phi = ft.reconfigure(&faults);
            prop_assert!(phi.verify(ft.target().graph(), ft.graph()).is_ok());
            prop_assert!(phi.as_slice().iter().all(|&v| !faults.contains(v)));
        }

        /// The forward block always has 2k+2 members (counting multiplicity
        /// collapses only when 2k+2 exceeds the node count).
        #[test]
        fn forward_block_size(h in 3usize..7, k in 0usize..5, x in 0usize..200) {
            let ft = FtDeBruijn2::new(h, k);
            let x = x % ft.node_count();
            let block = ft.forward_block(x);
            prop_assert_eq!(block.len(), 2 * k + 2);
            // Every member of the block is a neighbour (or x itself, for the
            // unavoidable self-loop values that the simple graph drops).
            for &b in &block {
                prop_assert!(b == x || ft.graph().has_edge(x, b));
            }
        }
    }
}
