//! The Samatham–Pradhan baseline construction used in the paper's
//! comparison.
//!
//! Samatham and Pradhan [12] also obtain fault-tolerant de Bruijn graphs in
//! Hayes's model, but instead of adding `k` spare nodes they select a
//! *larger de Bruijn graph* as the fault-tolerant graph. Quoting the paper's
//! introduction: for a base-2 target with `N` nodes their construction has
//! `N^{log_2(2(k+1))}` nodes and degree `4k + 2`; for a base-m target it has
//! `N^{log_m(m(k+1))}` nodes and degree `2mk + 2`.
//!
//! Concretely, the larger graph is the de Bruijn graph of base `m(k+1)` with
//! the same number of digits: `B_{m(k+1), h}`, which indeed has
//! `(m(k+1))^h = N^{log_m(m(k+1))}` nodes. Its exact degree is at most
//! `2m(k+1)` (the paper's quoted `2mk + 2` counts the directed out-links
//! plus two). This module provides
//!
//! * closed-form node/degree figures for the comparison tables (TAB1/TAB2),
//!   without materialising the astronomically large graphs, and
//! * an explicit construction plus a digit-wise embedding
//!   `B_{m,h} ⊆ B_{M,h}` (for `M ≥ m`) so the containment underlying the
//!   baseline can be verified on small instances.

use ftdb_graph::Embedding;
use ftdb_topology::labels::{from_digits, to_digits};
use ftdb_topology::DeBruijnM;

/// Closed-form description of the Samatham–Pradhan fault-tolerant graph for
/// a base-m, h-digit target tolerating `k` faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct SpBaseline {
    /// Base of the target de Bruijn graph.
    pub m: usize,
    /// Number of digits of the target.
    pub h: usize,
    /// Number of faults tolerated.
    pub k: usize,
}

impl SpBaseline {
    /// Creates the description.
    pub fn new(m: usize, h: usize, k: usize) -> Self {
        assert!(m >= 2 && h >= 1);
        SpBaseline { m, h, k }
    }

    /// The base of the larger de Bruijn graph the scheme selects,
    /// `m(k + 1)`.
    pub fn host_base(&self) -> usize {
        self.m * (self.k + 1)
    }

    /// Number of nodes of the target graph, `m^h`.
    pub fn target_nodes(&self) -> u128 {
        (self.m as u128).pow(self.h as u32)
    }

    /// Number of nodes of the fault-tolerant graph, `(m(k+1))^h`
    /// (`= N^{log_m(m(k+1))}`).
    pub fn nodes(&self) -> u128 {
        (self.host_base() as u128).pow(self.h as u32)
    }

    /// The degree figure the paper quotes for this baseline
    /// (`4k + 2` for base 2, `2mk + 2` in general).
    pub fn quoted_degree(&self) -> usize {
        2 * self.m * self.k + 2
    }

    /// The worst-case degree of the host de Bruijn graph itself,
    /// `2·m(k+1)` (an upper bound; self-loop and 2-cycle effects can shave a
    /// couple of edges off specific nodes).
    pub fn structural_degree(&self) -> usize {
        2 * self.host_base()
    }

    /// The redundancy ratio `nodes / target_nodes` — the factor by which the
    /// baseline over-provisions, to contrast with the paper's `(N + k) / N`.
    pub fn redundancy_ratio(&self) -> f64 {
        self.nodes() as f64 / self.target_nodes() as f64
    }

    /// Materialises the host graph `B_{m(k+1), h}`. Only sensible for small
    /// parameters; the comparison tables use the closed forms instead.
    pub fn construct(&self) -> DeBruijnM {
        DeBruijnM::new(self.host_base(), self.h)
    }
}

/// The digit-wise embedding of `B_{m,h}` into `B_{M,h}` for `M ≥ m`:
/// a node keeps its digit string, which is simply re-read in base `M`.
/// Every de Bruijn edge (drop a digit at one end, append at the other) is
/// preserved verbatim, so this is an embedding — the structural fact that
/// makes "use a bigger de Bruijn graph" a meaningful fault-tolerance scheme.
pub fn embed_smaller_base(m: usize, big_base: usize, h: usize) -> Embedding {
    assert!(2 <= m && m <= big_base, "need 2 <= m <= M");
    let small = ftdb_topology::labels::pow_nodes(m, h);
    let map = (0..small)
        .map(|x| from_digits(&to_digits(x, m, h), big_base))
        .collect();
    Embedding::from_map(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn closed_forms_match_paper_quotes_base2() {
        // Base-2 target, k = 1: host base 4, N^{log_2 4} = N^2 nodes.
        let sp = SpBaseline::new(2, 4, 1);
        assert_eq!(sp.host_base(), 4);
        assert_eq!(sp.target_nodes(), 16);
        assert_eq!(sp.nodes(), 256); // 16^2
        assert_eq!(sp.quoted_degree(), 6); // 4k + 2
        assert_eq!(sp.structural_degree(), 8);
        assert!((sp.redundancy_ratio() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn closed_forms_match_paper_quotes_base_m() {
        let sp = SpBaseline::new(3, 3, 2);
        assert_eq!(sp.host_base(), 9);
        assert_eq!(sp.nodes(), 729);
        assert_eq!(sp.quoted_degree(), 2 * 3 * 2 + 2);
    }

    #[test]
    fn node_count_equals_power_formula() {
        // nodes = N^{log_m(m(k+1))} — check via logarithms.
        for (m, h, k) in [(2, 5, 1), (2, 6, 3), (3, 4, 1), (4, 3, 2)] {
            let sp = SpBaseline::new(m, h, k);
            let n = sp.target_nodes() as f64;
            let expected = n.powf((sp.host_base() as f64).ln() / (m as f64).ln());
            let actual = sp.nodes() as f64;
            assert!(
                (expected - actual).abs() / actual < 1e-9,
                "m={m}, h={h}, k={k}: {expected} vs {actual}"
            );
        }
    }

    #[test]
    fn explicit_construction_has_expected_size() {
        let sp = SpBaseline::new(2, 3, 1);
        let host = sp.construct();
        assert_eq!(host.node_count() as u128, sp.nodes());
        assert!(host.graph().max_degree() <= sp.structural_degree());
    }

    #[test]
    fn digit_embedding_is_valid_for_small_cases() {
        for (m, big, h) in [(2, 3, 3), (2, 4, 3), (3, 4, 2), (2, 6, 2), (3, 9, 2)] {
            let small = DeBruijnM::new(m, h);
            let large = DeBruijnM::new(big, h);
            let sigma = embed_smaller_base(m, big, h);
            sigma
                .verify(small.graph(), large.graph())
                .unwrap_or_else(|e| panic!("m={m}, M={big}, h={h}: {e}"));
        }
    }

    #[test]
    fn baseline_containment_end_to_end() {
        // The containment that makes the baseline work: B_{2,3} embeds in the
        // Samatham–Pradhan host for k = 1 (which is B_{4,3}).
        let sp = SpBaseline::new(2, 3, 1);
        let target = DeBruijnM::new(2, 3);
        let host = sp.construct();
        let sigma = embed_smaller_base(2, sp.host_base(), 3);
        sigma.verify(target.graph(), host.graph()).unwrap();
    }

    proptest! {
        /// Our construction always uses vastly fewer nodes than the baseline
        /// (for every k ≥ 1), while the degree gap stays bounded by 2.
        #[test]
        fn ours_always_smaller(mp in 2usize..5, h in 3usize..7, k in 1usize..5) {
            let sp = SpBaseline::new(mp, h, k);
            let ours_nodes = sp.target_nodes() + k as u128;
            prop_assert!(ours_nodes < sp.nodes());
            // Degree comparison: ours 4(m-1)k + 2m vs theirs 2mk + 2 (quoted);
            // the gap is exactly 2k(m-2) + 2(m-1), i.e. "only slightly larger".
            let ours_degree = 4 * (mp - 1) * k + 2 * mp;
            let gap = ours_degree as i64 - sp.quoted_degree() as i64;
            prop_assert_eq!(gap, (2 * k * (mp - 2) + 2 * (mp - 1)) as i64);
        }
    }
}
