//! Fault-tolerant shuffle-exchange networks.
//!
//! The paper gives two routes to a fault-tolerant shuffle-exchange:
//!
//! 1. **Via the de Bruijn containment** (the paper's recommended route):
//!    since `SE_h` is a subgraph of `B_{2,h}` of the same size, the
//!    fault-tolerant de Bruijn graph `B^k_{2,h}` is automatically
//!    `(k, SE_h)`-tolerant, with degree `4k + 4`. [`FtShuffleExchange`]
//!    implements this, using the constructive embedding computed in
//!    `ftdb_topology::se_embedding`.
//! 2. **Via the natural labeling**: applying the widened-block technique
//!    directly to the shuffle-exchange edge functions. The paper notes this
//!    yields a larger degree (`6k + 4`); our edge-by-edge derivation gives a
//!    bound of `6k + 6` (shuffle blocks `2·(2k+2)` plus exchange blocks
//!    `2·(k+1)`), and the measured maximum degree of the construction is
//!    reported in the experiments next to the paper's figure.
//!    [`NaturalFtShuffleExchange`] implements this; it needs no external
//!    containment result and therefore works at every `h`.

use crate::fault::FaultSet;
use crate::ft_debruijn::FtDeBruijn2;
use crate::reconfig::reconfigure;
use ftdb_graph::{Embedding, Graph, GraphBuilder, NodeId};
use ftdb_topology::labels::{pow_nodes, x_fn};
use ftdb_topology::se_embedding::{embed_se_into_debruijn_with_budget, SeEmbeddingResult};
use ftdb_topology::ShuffleExchange;

/// Error constructing the de Bruijn-based fault-tolerant shuffle-exchange.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FtShuffleError {
    /// The embedding search proved `SE_h ⊄ B_{2,h}` (does not occur for the
    /// parameter ranges used in practice, but the search can in principle
    /// report it for degenerate `h`).
    NoEmbedding,
    /// The embedding search exceeded its budget. Callers should fall back to
    /// [`NaturalFtShuffleExchange`].
    EmbeddingSearchBudgetExhausted,
}

impl std::fmt::Display for FtShuffleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtShuffleError::NoEmbedding => write!(f, "SE_h is not a subgraph of B_2,h for this h"),
            FtShuffleError::EmbeddingSearchBudgetExhausted => {
                write!(
                    f,
                    "embedding search budget exhausted; use the natural-labeling construction"
                )
            }
        }
    }
}

impl std::error::Error for FtShuffleError {}

/// The fault-tolerant shuffle-exchange obtained through the de Bruijn
/// containment: the physical network is `B^k_{2,h}` (degree ≤ `4k + 4`), and
/// the logical shuffle-exchange is found by composing the `SE_h → B_{2,h}`
/// embedding with the rank-based reconfiguration.
#[derive(Clone, Debug)]
pub struct FtShuffleExchange {
    ft: FtDeBruijn2,
    se: ShuffleExchange,
    sigma: Embedding,
}

impl FtShuffleExchange {
    /// Builds the construction for `SE_h` tolerating `k` faults, computing
    /// the `SE_h ⊆ B_{2,h}` embedding with the default search budget.
    pub fn new(h: usize, k: usize) -> Result<Self, FtShuffleError> {
        Self::with_embedding_budget(h, k, 200_000_000)
    }

    /// As [`FtShuffleExchange::new`] with an explicit embedding-search budget.
    pub fn with_embedding_budget(h: usize, k: usize, budget: u64) -> Result<Self, FtShuffleError> {
        let sigma = match embed_se_into_debruijn_with_budget(h, budget) {
            SeEmbeddingResult::Found(e) => e,
            SeEmbeddingResult::Impossible => return Err(FtShuffleError::NoEmbedding),
            SeEmbeddingResult::BudgetExhausted => {
                return Err(FtShuffleError::EmbeddingSearchBudgetExhausted)
            }
        };
        Ok(FtShuffleExchange {
            ft: FtDeBruijn2::new(h, k),
            se: ShuffleExchange::new(h),
            sigma,
        })
    }

    /// The number of digits `h`.
    pub fn h(&self) -> usize {
        self.ft.h()
    }

    /// The fault budget `k`.
    pub fn k(&self) -> usize {
        self.ft.k()
    }

    /// The number of physical nodes, `2^h + k`.
    pub fn node_count(&self) -> usize {
        self.ft.node_count()
    }

    /// The degree bound `4k + 4` (inherited from `B^k_{2,h}`).
    pub fn degree_bound(&self) -> usize {
        self.ft.degree_bound()
    }

    /// The physical interconnection graph (`B^k_{2,h}`).
    pub fn graph(&self) -> &Graph {
        self.ft.graph()
    }

    /// The underlying fault-tolerant de Bruijn construction.
    pub fn ft_debruijn(&self) -> &FtDeBruijn2 {
        &self.ft
    }

    /// The logical target shuffle-exchange network.
    pub fn target(&self) -> &ShuffleExchange {
        &self.se
    }

    /// The static `SE_h → B_{2,h}` embedding used by the construction.
    pub fn se_to_debruijn(&self) -> &Embedding {
        &self.sigma
    }

    /// Reconfigures around `faults`, returning the embedding of `SE_h` into
    /// the physical graph: the composition of the static containment with
    /// the rank-based de Bruijn reconfiguration.
    pub fn reconfigure(&self, faults: &FaultSet) -> Embedding {
        let phi = self.ft.reconfigure(faults);
        self.sigma.then(&phi)
    }

    /// Reconfigures and verifies the embedding against the target SE graph.
    pub fn reconfigure_verified(
        &self,
        faults: &FaultSet,
    ) -> Result<Embedding, ftdb_graph::embedding::EmbeddingError> {
        let embedding = self.reconfigure(faults);
        embedding.verify(self.se.graph(), self.ft.graph())?;
        Ok(embedding)
    }
}

/// The natural-labeling fault-tolerant shuffle-exchange `SE^k_h`.
///
/// Nodes are `{0, …, 2^h + k − 1}`. Edges widen each shuffle-exchange edge
/// function by the displacement range `[0, k]` of the rank map:
///
/// * shuffle/unshuffle edges become the de Bruijn-style blocks
///   `(x, (2x + r) mod (2^h + k))` for `r ∈ {−k, …, k+1}`;
/// * exchange edges become the consecutive blocks `(x, x + d)` for
///   `d ∈ {1, …, k+1}` (no wrap-around, because exchange partners are
///   consecutive integers and images of the rank map never wrap).
#[derive(Clone, Debug)]
pub struct NaturalFtShuffleExchange {
    h: usize,
    k: usize,
    graph: Graph,
    target: ShuffleExchange,
}

impl NaturalFtShuffleExchange {
    /// Builds `SE^k_h` under the natural labeling.
    ///
    /// # Panics
    /// Panics if `h < 1` or `2^h + k` overflows.
    pub fn new(h: usize, k: usize) -> Self {
        assert!(h >= 1, "SE^k_h needs h >= 1");
        let n = pow_nodes(2, h)
            .checked_add(k)
            .expect("2^h + k overflows usize");
        let mut b = GraphBuilder::new(n).name(format!("SE^{k}({h})"));
        for x in 0..n {
            // Widened shuffle blocks (same as the fault-tolerant de Bruijn graph).
            for r in -(k as i64)..=(k as i64 + 1) {
                b.add_edge(x, x_fn(x, 2, r, n));
            }
            // Widened exchange blocks.
            for d in 1..=(k + 1) {
                if x + d < n {
                    b.add_edge(x, x + d);
                }
            }
        }
        NaturalFtShuffleExchange {
            h,
            k,
            graph: b.build(),
            target: ShuffleExchange::new(h),
        }
    }

    /// The number of digits `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// The fault budget `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of nodes, `2^h + k`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The degree bound of this construction as derived in this module
    /// (`6k + 6`); the paper quotes `6k + 4` for the natural labeling. The
    /// measured maximum degree is reported by the experiments.
    pub fn degree_bound(&self) -> usize {
        6 * self.k + 6
    }

    /// The degree the paper quotes for the natural-labeling construction.
    pub fn paper_degree_bound(&self) -> usize {
        6 * self.k + 4
    }

    /// The underlying undirected graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The logical target shuffle-exchange network.
    pub fn target(&self) -> &ShuffleExchange {
        &self.target
    }

    /// Reconfigures around `faults` with the rank-based map.
    ///
    /// # Panics
    /// Panics if more than `k` faults are given or the universe mismatches.
    pub fn reconfigure(&self, faults: &FaultSet) -> Embedding {
        assert!(
            faults.len() <= self.k,
            "{} faults exceed the fault budget k = {}",
            faults.len(),
            self.k
        );
        assert_eq!(faults.universe(), self.node_count());
        reconfigure(self.target.node_count(), faults)
    }

    /// Reconfigures and verifies the embedding against the target SE graph.
    pub fn reconfigure_verified(
        &self,
        faults: &FaultSet,
    ) -> Result<Embedding, ftdb_graph::embedding::EmbeddingError> {
        let phi = self.reconfigure(faults);
        phi.verify(self.target.graph(), &self.graph)?;
        Ok(phi)
    }

    /// The forward exchange block of node `x`: the nodes `x + 1, …, x + k + 1`
    /// (clipped at the node count).
    pub fn exchange_block(&self, x: NodeId) -> Vec<NodeId> {
        (1..=(self.k + 1))
            .map(|d| x + d)
            .filter(|&y| y < self.node_count())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_exhaustive;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn debruijn_route_has_degree_4k_plus_4() {
        for (h, k) in [(3, 1), (4, 1), (4, 2), (5, 1)] {
            let ft = FtShuffleExchange::new(h, k).unwrap();
            assert_eq!(ft.node_count(), (1 << h) + k);
            assert!(
                ft.graph().max_degree() <= 4 * k + 4,
                "degree {} > 4k+4 for h={h}, k={k}",
                ft.graph().max_degree()
            );
        }
    }

    #[test]
    fn debruijn_route_tolerates_every_single_fault() {
        let ft = FtShuffleExchange::new(4, 1).unwrap();
        for f in 0..ft.node_count() {
            let faults = FaultSet::from_nodes(ft.node_count(), [f]);
            let e = ft.reconfigure_verified(&faults).unwrap();
            assert!(e.as_slice().iter().all(|&v| v != f));
        }
    }

    #[test]
    fn natural_labeling_structure() {
        let se = NaturalFtShuffleExchange::new(4, 1);
        assert_eq!(se.node_count(), 17);
        assert!(se.graph().max_degree() <= se.degree_bound());
        assert_eq!(se.exchange_block(3), vec![4, 5]);
        assert_eq!(se.exchange_block(16), vec![]);
        se.graph().check_invariants().unwrap();
    }

    #[test]
    fn natural_labeling_zero_spares_contains_target() {
        let se = NaturalFtShuffleExchange::new(4, 0);
        let phi = se.reconfigure(&FaultSet::empty(se.node_count()));
        phi.verify(se.target().graph(), se.graph()).unwrap();
    }

    #[test]
    fn natural_labeling_is_exhaustively_tolerant_small() {
        for (h, k) in [(3, 1), (3, 2), (4, 1)] {
            let se = NaturalFtShuffleExchange::new(h, k);
            let report = verify_exhaustive(se.target().graph(), se.graph(), k, 4);
            assert!(
                report.is_tolerant(),
                "natural SE^{k}_{h} not tolerant: {:?}",
                report.failures
            );
        }
    }

    #[test]
    fn natural_labeling_degree_close_to_paper_figure() {
        // The paper quotes 6k+4; our derivation gives 6k+6. The measured
        // degree must sit between the target degree and our bound.
        for (h, k) in [(4, 1), (4, 2), (5, 1), (5, 3)] {
            let se = NaturalFtShuffleExchange::new(h, k);
            let measured = se.graph().max_degree();
            assert!(measured <= 6 * k + 6, "h={h}, k={k}: measured {measured}");
            assert!(measured >= 3, "h={h}, k={k}: measured {measured}");
        }
    }

    #[test]
    fn debruijn_route_beats_natural_labeling_degree() {
        // The whole point of using the SE ⊆ DB containment: lower degree.
        for (h, k) in [(4, 1), (4, 2), (5, 1)] {
            let via_db = FtShuffleExchange::new(h, k).unwrap();
            let natural = NaturalFtShuffleExchange::new(h, k);
            assert!(
                via_db.graph().max_degree() <= natural.graph().max_degree(),
                "h={h}, k={k}"
            );
        }
    }

    #[test]
    fn debruijn_route_random_faults_tolerated() {
        // Build the (search-based) construction once and hit it with many
        // random fault sets.
        let via_db = FtShuffleExchange::new(5, 3).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let faults =
                FaultSet::random(via_db.node_count(), 3, &mut rng).expect("k within node count");
            via_db.reconfigure_verified(&faults).unwrap();
        }
    }

    proptest! {
        /// Random fault sets are tolerated by the natural-labeling construction.
        #[test]
        fn natural_random_faults_tolerated(h in 3usize..7, k in 1usize..4, seed in 0u64..200) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let natural = NaturalFtShuffleExchange::new(h, k);
            let faults = FaultSet::random(natural.node_count(), k, &mut rng).expect("k within node count");
            prop_assert!(natural.reconfigure_verified(&faults).is_ok());
        }
    }
}
