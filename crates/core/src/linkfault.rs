//! Directed-link fault models over CSR edge slots.
//!
//! The paper reduces edge faults to node faults ("view a node that is
//! incident to the faulty edge as being faulty"). This module makes the link
//! itself the faultable element: a [`LinkFaultSet`] marks *directed* CSR edge
//! slots — the hop `u → v` stored at index `s` of the graph's adjacency
//! array — so one direction of a cable can die while the reverse stays up.
//! The paper's reduction survives as a provable projection:
//! [`LinkFaultSet::project_to_nodes`] reproduces
//! [`FaultSet::from_edge_faults`] exactly.
//!
//! Generators cover the fault models the Monte-Carlo reliability engine
//! sweeps: single named links ([`LinkFaultSet::from_links`]), uniform random
//! link sets ([`LinkFaultSet::random`], Floyd's sampling), independent
//! per-link coins ([`LinkFaultSet::bernoulli`], with a coupling guarantee),
//! spatially-correlated bursts ([`LinkFaultSet::burst`], every link incident
//! to a label-prefix ball), and node faults as the degenerate "all incident
//! links" case ([`LinkFaultSet::from_node_faults`]).

use crate::fault::{FaultError, FaultSet};
use ftdb_graph::{BitSet, Graph, NodeId};

/// A set of faulty *directed* links, indexed by CSR edge slot.
///
/// Slot `s` is the directed hop `u → v` where `u` is the CSR row containing
/// `s` and `v = neighbors[s]`; an undirected edge `{u, v}` occupies two
/// slots, one per direction, which may fail independently. The universe is
/// the graph's full slot count (`offsets[n]`), so a `LinkFaultSet` is only
/// meaningful against the graph it was built from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkFaultSet {
    slots: BitSet,
    node_universe: usize,
}

impl LinkFaultSet {
    /// An empty link-fault set for `graph` (universe = its CSR slot count).
    pub fn empty(graph: &Graph) -> Self {
        let (offsets, _) = graph.csr();
        LinkFaultSet {
            slots: BitSet::new(offsets[graph.node_count()] as usize),
            node_universe: graph.node_count(),
        }
    }

    /// The directed endpoints `(from, to)` of CSR slot `slot` in `graph`.
    ///
    /// # Panics
    /// Panics if `slot` is not a valid slot of `graph`.
    pub fn endpoints(graph: &Graph, slot: usize) -> (NodeId, NodeId) {
        let (offsets, neighbors) = graph.csr();
        let from = offsets.partition_point(|&o| (o as usize) <= slot) - 1;
        (from, neighbors[slot] as NodeId)
    }

    /// The CSR slot of the directed link `from → to`, or `None` if `graph`
    /// has no such link (including out-of-range endpoints).
    pub fn slot_of(graph: &Graph, from: NodeId, to: NodeId) -> Option<usize> {
        if from >= graph.node_count() || to >= graph.node_count() {
            return None;
        }
        let (offsets, neighbors) = graph.csr();
        (offsets[from] as usize..offsets[from + 1] as usize).find(|&s| neighbors[s] as NodeId == to)
    }

    /// A link-fault set from explicit directed links `(from, to)`.
    ///
    /// Fails with [`FaultError::MissingLink`] on the first pair that is not a
    /// directed link of `graph`.
    pub fn from_links<I: IntoIterator<Item = (NodeId, NodeId)>>(
        graph: &Graph,
        links: I,
    ) -> Result<Self, FaultError> {
        let mut set = LinkFaultSet::empty(graph);
        for (from, to) in links {
            match LinkFaultSet::slot_of(graph, from, to) {
                Some(slot) => {
                    set.slots.insert(slot);
                }
                None => return Err(FaultError::MissingLink { from, to }),
            }
        }
        Ok(set)
    }

    /// Draws a uniformly random set of exactly `count` distinct directed
    /// links via Floyd's sampling (O(count) work, no full materialisation).
    ///
    /// Fails with [`FaultError::CountExceedsUniverse`] when `count` exceeds
    /// the slot count.
    pub fn random<R: rand::RngExt>(
        graph: &Graph,
        count: usize,
        rng: &mut R,
    ) -> Result<Self, FaultError> {
        let mut set = LinkFaultSet::empty(graph);
        let universe = set.universe();
        if count > universe {
            return Err(FaultError::CountExceedsUniverse { count, universe });
        }
        for j in universe - count..universe {
            let t = rng.random_range(0..j + 1);
            if !set.slots.insert(t) {
                set.slots.insert(j);
            }
        }
        Ok(set)
    }

    /// Faults each directed link independently with probability `p`.
    ///
    /// Coupling contract: exactly one uniform variate is consumed per slot,
    /// in slot order, *regardless of `p`*. Two draws from identically-seeded
    /// RNGs at probabilities `p1 <= p2` therefore produce nested sets
    /// (`bernoulli(p1) ⊆ bernoulli(p2)`) — the property the monotonicity
    /// tests and the Monte-Carlo reliability sweep's common-random-numbers
    /// variance reduction rely on. `p` is clamped to `[0, 1]`.
    pub fn bernoulli<R: rand::RngExt>(graph: &Graph, p: f64, rng: &mut R) -> Self {
        let mut set = LinkFaultSet::empty(graph);
        for slot in 0..set.universe() {
            let coin: f64 = rng.random();
            if coin < p {
                set.slots.insert(slot);
            }
        }
        set
    }

    /// A correlated spatial burst: every directed link incident (either
    /// direction) to the label-prefix ball of `center` dies. The ball is the
    /// contiguous id range that shares all but the low `radius_bits` label
    /// bits with `center` — `2^radius_bits` consecutive ids, clamped to the
    /// node count for hosts with spare nodes.
    ///
    /// Fails with [`FaultError::NodeOutOfRange`] when `center` is not a node
    /// of `graph`.
    pub fn burst(graph: &Graph, center: NodeId, radius_bits: u32) -> Result<Self, FaultError> {
        let n = graph.node_count();
        if center >= n {
            return Err(FaultError::NodeOutOfRange {
                node: center,
                universe: n,
            });
        }
        let ball = 1usize << radius_bits.min(usize::BITS - 1);
        let lo = center & !(ball - 1);
        let hi = n.min(lo + ball);
        let mut set = LinkFaultSet::empty(graph);
        let (offsets, neighbors) = graph.csr();
        for u in 0..n {
            let in_ball_u = u >= lo && u < hi;
            let row = offsets[u] as usize..offsets[u + 1] as usize;
            for (s, &nbr) in row.clone().zip(&neighbors[row]) {
                let v = nbr as usize;
                if in_ball_u || (v >= lo && v < hi) {
                    set.slots.insert(s);
                }
            }
        }
        Ok(set)
    }

    /// Node faults as the degenerate link-fault case: every directed link
    /// incident to a faulty node (both directions) is marked faulty.
    ///
    /// # Panics
    /// Panics if `faults` was built for a different node universe.
    pub fn from_node_faults(graph: &Graph, faults: &FaultSet) -> Self {
        assert_eq!(
            faults.universe(),
            graph.node_count(),
            "fault set universe must match the graph"
        );
        let mut set = LinkFaultSet::empty(graph);
        let (offsets, neighbors) = graph.csr();
        for u in 0..graph.node_count() {
            let u_faulty = faults.contains(u);
            let row = offsets[u] as usize..offsets[u + 1] as usize;
            for (s, &nbr) in row.clone().zip(&neighbors[row]) {
                if u_faulty || faults.contains(nbr as NodeId) {
                    set.slots.insert(s);
                }
            }
        }
        set
    }

    /// All directed links incident to a single `node` — the one-node case of
    /// [`LinkFaultSet::from_node_faults`]. Fails with
    /// [`FaultError::NodeOutOfRange`] when `node` is out of range.
    pub fn node_fault(graph: &Graph, node: NodeId) -> Result<Self, FaultError> {
        let n = graph.node_count();
        if node >= n {
            return Err(FaultError::NodeOutOfRange { node, universe: n });
        }
        let mut faults = FaultSet::empty(n);
        faults.add(node);
        Ok(LinkFaultSet::from_node_faults(graph, &faults))
    }

    /// The paper's edge-to-node reduction as a projection: every faulty
    /// directed link `(u, v)` charges its lower-numbered endpoint
    /// `min(u, v)`. For any collection of links this reproduces
    /// [`FaultSet::from_edge_faults`] over the same pairs exactly — the
    /// projection-equivalence test pins that down.
    pub fn project_to_nodes(&self, graph: &Graph) -> FaultSet {
        let mut nodes = FaultSet::empty(self.node_universe);
        for slot in self.slots.iter() {
            let (u, v) = LinkFaultSet::endpoints(graph, slot);
            nodes.add(u.min(v));
        }
        nodes
    }

    /// Marks CSR `slot` faulty. Returns `true` if it was previously healthy.
    ///
    /// # Panics
    /// Panics if `slot` is outside the slot universe.
    pub fn add(&mut self, slot: usize) -> bool {
        self.slots.insert(slot)
    }

    /// Whether CSR `slot` is faulty.
    pub fn contains(&self, slot: usize) -> bool {
        self.slots.contains(slot)
    }

    /// Number of faulty directed links.
    pub fn len(&self) -> usize {
        self.slots.count()
    }

    /// `true` if no link is faulty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot universe (total directed-link count of the host graph).
    pub fn universe(&self) -> usize {
        self.slots.capacity()
    }

    /// Node count of the host graph this set was built against.
    pub fn node_universe(&self) -> usize {
        self.node_universe
    }

    /// Iterates the faulty CSR slots in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots.iter()
    }

    /// Merges another link-fault set into this one (set union).
    ///
    /// # Panics
    /// Panics if the two sets were built over different slot universes.
    pub fn union_with(&mut self, other: &LinkFaultSet) {
        assert_eq!(
            self.universe(),
            other.universe(),
            "link fault sets must share a universe"
        );
        for slot in other.iter() {
            self.slots.insert(slot);
        }
    }

    /// The underlying bit set of faulty slots.
    pub fn as_bitset(&self) -> &BitSet {
        &self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn debruijn_host() -> Graph {
        crate::FtDeBruijn2::new(4, 0).target().graph().clone()
    }

    #[test]
    fn endpoints_and_slot_of_roundtrip() {
        let g = debruijn_host();
        let mut seen = 0;
        for slot in 0..LinkFaultSet::empty(&g).universe() {
            let (u, v) = LinkFaultSet::endpoints(&g, slot);
            assert_eq!(LinkFaultSet::slot_of(&g, u, v), Some(slot));
            seen += 1;
        }
        let (offsets, _) = g.csr();
        assert_eq!(seen, offsets[g.node_count()] as usize);
        assert_eq!(LinkFaultSet::slot_of(&g, 0, g.node_count() + 5), None);
    }

    #[test]
    fn from_links_rejects_missing_directed_links() {
        let g = ftdb_graph::generators::path(4); // 0-1-2-3
        let ok = LinkFaultSet::from_links(&g, [(0, 1), (2, 1)]).unwrap();
        assert_eq!(ok.len(), 2);
        assert!(ok.contains(LinkFaultSet::slot_of(&g, 0, 1).unwrap()));
        assert!(!ok.contains(LinkFaultSet::slot_of(&g, 1, 0).unwrap()));
        assert_eq!(
            LinkFaultSet::from_links(&g, [(0, 3)]),
            Err(FaultError::MissingLink { from: 0, to: 3 })
        );
    }

    #[test]
    fn projection_reproduces_from_edge_faults() {
        let g = debruijn_host();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let links = LinkFaultSet::random(&g, 7, &mut rng).unwrap();
            let pairs: Vec<(NodeId, NodeId)> = links
                .iter()
                .map(|s| LinkFaultSet::endpoints(&g, s))
                .collect();
            let reference = FaultSet::from_edge_faults(g.node_count(), pairs);
            assert_eq!(links.project_to_nodes(&g), reference);
        }
    }

    #[test]
    fn random_is_exact_size_and_rejects_oversized_draws() {
        let g = debruijn_host();
        let mut rng = StdRng::seed_from_u64(7);
        let universe = LinkFaultSet::empty(&g).universe();
        for count in [0, 1, 5, universe] {
            let set = LinkFaultSet::random(&g, count, &mut rng).unwrap();
            assert_eq!(set.len(), count);
        }
        assert_eq!(
            LinkFaultSet::random(&g, universe + 1, &mut rng),
            Err(FaultError::CountExceedsUniverse {
                count: universe + 1,
                universe
            })
        );
    }

    #[test]
    fn bernoulli_draws_are_coupled_across_probabilities() {
        let g = debruijn_host();
        let grid = [0.0, 0.01, 0.05, 0.2, 0.5, 1.0];
        for seed in 0..10u64 {
            let sets: Vec<LinkFaultSet> = grid
                .iter()
                .map(|&p| LinkFaultSet::bernoulli(&g, p, &mut StdRng::seed_from_u64(seed)))
                .collect();
            for w in sets.windows(2) {
                // Same seed, larger p: strictly nested fault sets.
                assert!(w[0].iter().all(|s| w[1].contains(s)));
            }
            assert!(sets[0].is_empty());
            assert_eq!(sets[5].len(), sets[5].universe());
        }
    }

    #[test]
    fn burst_marks_exactly_the_links_incident_to_the_ball() {
        let g = debruijn_host(); // B(2,4): 16 nodes
        let set = LinkFaultSet::burst(&g, 5, 2).unwrap(); // ball = {4,5,6,7}
        let in_ball = |v: usize| (4..8).contains(&v);
        for slot in 0..set.universe() {
            let (u, v) = LinkFaultSet::endpoints(&g, slot);
            assert_eq!(set.contains(slot), in_ball(u) || in_ball(v), "slot {slot}");
        }
        // radius 0 is just the single node's incident links.
        let single = LinkFaultSet::burst(&g, 5, 0).unwrap();
        assert_eq!(single, LinkFaultSet::node_fault(&g, 5).unwrap());
        assert_eq!(
            LinkFaultSet::burst(&g, 99, 1),
            Err(FaultError::NodeOutOfRange {
                node: 99,
                universe: 16
            })
        );
    }

    #[test]
    fn node_faults_mark_all_incident_links_both_directions() {
        let g = debruijn_host();
        let mut faults = FaultSet::empty(g.node_count());
        faults.add(3);
        faults.add(9);
        let links = LinkFaultSet::from_node_faults(&g, &faults);
        for slot in 0..links.universe() {
            let (u, v) = LinkFaultSet::endpoints(&g, slot);
            let touches = faults.contains(u) || faults.contains(v);
            assert_eq!(links.contains(slot), touches, "slot {slot} = {u}->{v}");
        }
        // Projection of a node-derived link set recovers a superset rule:
        // each faulty node or one of its neighbours is charged.
        let projected = links.project_to_nodes(&g);
        assert!(
            projected.contains(3)
                || g.neighbors(3)
                    .iter()
                    .any(|&w| projected.contains(w as usize))
        );
    }

    #[test]
    fn union_and_accessors() {
        let g = ftdb_graph::generators::cycle(6);
        let mut a = LinkFaultSet::from_links(&g, [(0, 1)]).unwrap();
        let b = LinkFaultSet::from_links(&g, [(2, 3), (0, 1)]).unwrap();
        a.union_with(&b);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.node_universe(), 6);
        assert_eq!(a.iter().count(), 2);
        assert_eq!(a.as_bitset().count(), 2);
    }
}
