//! # ftdb-sim
//!
//! A synchronous message-passing parallel-machine simulator for the
//! constant-degree interconnection networks studied by the paper.
//!
//! The paper's motivation (Section I) is an *operational* claim: efficient
//! algorithms for the de Bruijn and shuffle-exchange networks — in particular
//! the Ascend/Descend classes of Preparata and Vuillemin — use **every**
//! processor and **every** link, so a single fault severely degrades (in
//! practice: stalls) the machine, and the fault-tolerant constructions
//! restore a fully healthy logical topology at the cost of a few spare nodes
//! and wider ports. The paper could not, of course, ship a 1992
//! multiprocessor with its TPDS brief; this crate substitutes a discrete,
//! synchronous simulator that exercises exactly those code paths:
//!
//! * [`machine`] — the physical machine model: a graph of processors, a set
//!   of faulty nodes, and a port model (how many distinct values a processor
//!   may transmit per step).
//! * [`ascend_descend`] — Ascend-class algorithms (all-reduce / parallel
//!   prefix over hypercube dimensions) executed natively on the hypercube,
//!   on the shuffle-exchange emulation, and on an arbitrary physical host
//!   through an embedding (which is how the fault-tolerant graphs are
//!   exercised after reconfiguration).
//! * [`routing`] — packet routing on healthy and faulty machines, both along
//!   the logical de Bruijn/shuffle-exchange routes and with fault-avoiding
//!   BFS fallback.
//! * [`congestion`] — the cycle-level congestion engine: one flit per
//!   directed link per cycle, `PortModel` output arbitration, dynamic
//!   mid-run fault injection and online reconfiguration recovery.
//! * [`bus_model`] — the Section V bus implementation's timing model
//!   (experiment SIM2: the "factor of ≈ 2" bus slowdown).
//! * [`workload`] and [`metrics`] — traffic generators and summary
//!   statistics used by the experiment driver.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ascend_descend;
pub mod bus_model;
pub mod collectives;
pub mod congestion;
pub mod diagnosis;
pub mod machine;
pub mod metrics;
pub mod routing;
pub mod workload;

pub use congestion::{
    CongestionConfig, CongestionEngine, CongestionReport, CongestionSim, FaultResponse,
    FlowControl, ShardedSim, Switching,
};
pub use machine::{PhysicalMachine, PortModel, SimError};
