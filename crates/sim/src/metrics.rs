//! Summary statistics for simulation runs.

use crate::routing::PacketOutcome;

/// Aggregated routing statistics over a workload.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize)]
pub struct RoutingStats {
    /// Number of packets delivered.
    pub delivered: u64,
    /// Number of packets dropped.
    pub dropped: u64,
    /// Total hop count over all delivered packets.
    pub total_hops: u64,
    /// Maximum hop count over delivered packets.
    pub max_hops: usize,
}

impl RoutingStats {
    /// Records one packet outcome.
    pub fn record(&mut self, outcome: &PacketOutcome) {
        match outcome.hops() {
            Some(h) => self.record_delivered(h),
            None => self.record_dropped(),
        }
    }

    /// Records a delivered packet with the given hop count. Used by the
    /// allocation-free routing kernels, which report hop counts directly
    /// instead of materialising a [`PacketOutcome`].
    pub fn record_delivered(&mut self, hops: usize) {
        self.delivered += 1;
        self.total_hops += hops as u64;
        self.max_hops = self.max_hops.max(hops);
    }

    /// Records a dropped packet.
    pub fn record_dropped(&mut self) {
        self.dropped += 1;
    }

    /// Fraction of packets delivered (1.0 for an empty workload).
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.delivered + self.dropped;
        if total == 0 {
            1.0
        } else {
            self.delivered as f64 / total as f64
        }
    }

    /// Mean hop count over delivered packets (0.0 if none were delivered).
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &RoutingStats) {
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.total_hops += other.total_hops;
        self.max_hops = self.max_hops.max(other.max_hops);
    }
}

/// A labelled slowdown measurement, used by the experiment driver to print
/// the SIM1/SIM2 tables.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct SlowdownRow {
    /// Scenario label (e.g. "healthy SE", "1 fault, no spares").
    pub scenario: String,
    /// Steps taken by the scenario (`None` means the run stalled).
    pub steps: Option<usize>,
    /// Reference step count (native hypercube).
    pub reference_steps: usize,
}

impl SlowdownRow {
    /// The slowdown factor relative to the reference, if the run completed
    /// *and* the reference is meaningful. A zero reference step count has no
    /// slowdown — returning `None` (rendered as "-") is honest, where the
    /// old `.max(1)` silently reported the raw step count as the factor.
    pub fn slowdown(&self) -> Option<f64> {
        if self.reference_steps == 0 {
            return None;
        }
        self.steps.map(|s| s as f64 / self.reference_steps as f64)
    }
}

/// Distribution summary of per-packet delivery latencies (in cycles) from a
/// cycle-level congestion run. Computed once after the run, so it may sort
/// and allocate freely — the engine's hot loop only stamps delivery cycles.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize)]
pub struct LatencySummary {
    /// Number of delivered packets summarised.
    pub count: u64,
    /// Mean latency in cycles (0.0 when nothing was delivered).
    pub mean: f64,
    /// Median latency.
    pub p50: u32,
    /// 95th-percentile latency.
    pub p95: u32,
    /// Maximum latency.
    pub max: u32,
}

impl LatencySummary {
    /// Summarises a set of latencies. The slice is sorted in place.
    pub fn from_latencies(latencies: &mut [u32]) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        latencies.sort_unstable();
        let count = latencies.len() as u64;
        let total: u64 = latencies.iter().map(|&l| l as u64).sum();
        // Nearest-rank percentiles: index ⌈q·n⌉ - 1 on the sorted data.
        let rank = |q: f64| -> u32 {
            let idx = ((q * count as f64).ceil() as usize).max(1) - 1;
            latencies[idx.min(latencies.len() - 1)]
        };
        LatencySummary {
            count,
            mean: total as f64 / count as f64,
            p50: rank(0.50),
            p95: rank(0.95),
            max: *latencies.last().expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SimError;

    #[test]
    fn record_and_summarise() {
        let mut stats = RoutingStats::default();
        stats.record(&PacketOutcome::Delivered { path: vec![0, 1, 2] });
        stats.record(&PacketOutcome::Delivered { path: vec![4] });
        stats.record(&PacketOutcome::Dropped(SimError::FaultyProcessor { node: 9 }));
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.max_hops, 2);
        assert!((stats.mean_hops() - 1.0).abs() < 1e-12);
        assert!((stats.delivery_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let stats = RoutingStats::default();
        assert_eq!(stats.delivery_ratio(), 1.0);
        assert_eq!(stats.mean_hops(), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = RoutingStats {
            delivered: 2,
            dropped: 1,
            total_hops: 5,
            max_hops: 3,
        };
        let b = RoutingStats {
            delivered: 1,
            dropped: 0,
            total_hops: 7,
            max_hops: 7,
        };
        a.merge(&b);
        assert_eq!(a.delivered, 3);
        assert_eq!(a.total_hops, 12);
        assert_eq!(a.max_hops, 7);
    }

    #[test]
    fn slowdown_rows() {
        let ok = SlowdownRow {
            scenario: "healthy".into(),
            steps: Some(8),
            reference_steps: 4,
        };
        assert_eq!(ok.slowdown(), Some(2.0));
        let stalled = SlowdownRow {
            scenario: "fault, no spares".into(),
            steps: None,
            reference_steps: 4,
        };
        assert_eq!(stalled.slowdown(), None);
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut empty: [u32; 0] = [];
        assert_eq!(LatencySummary::from_latencies(&mut empty), LatencySummary::default());
        let mut one = [7u32];
        let s = LatencySummary::from_latencies(&mut one);
        assert_eq!((s.count, s.p50, s.p95, s.max), (1, 7, 7, 7));
        assert!((s.mean - 7.0).abs() < 1e-12);
        let mut twenty: Vec<u32> = (1..=20).rev().collect();
        let s = LatencySummary::from_latencies(&mut twenty);
        assert_eq!((s.count, s.p50, s.p95, s.max), (20, 10, 19, 20));
        assert!((s.mean - 10.5).abs() < 1e-12);
    }

    #[test]
    fn zero_reference_has_no_slowdown() {
        // A degenerate reference (0 steps) must not masquerade as a factor:
        // the old `.max(1)` clamp silently reported `steps` itself.
        let degenerate = SlowdownRow {
            scenario: "empty reference".into(),
            steps: Some(8),
            reference_steps: 0,
        };
        assert_eq!(degenerate.slowdown(), None);
        let stalled_and_degenerate = SlowdownRow {
            scenario: "both degenerate".into(),
            steps: None,
            reference_steps: 0,
        };
        assert_eq!(stalled_and_degenerate.slowdown(), None);
    }
}
