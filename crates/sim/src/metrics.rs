//! Summary statistics for simulation runs.

use crate::routing::PacketOutcome;

/// Aggregated routing statistics over a workload.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize)]
pub struct RoutingStats {
    /// Number of packets delivered.
    pub delivered: u64,
    /// Number of packets dropped.
    pub dropped: u64,
    /// Total hop count over all delivered packets.
    pub total_hops: u64,
    /// Maximum hop count over delivered packets.
    pub max_hops: usize,
}

impl RoutingStats {
    /// Records one packet outcome.
    pub fn record(&mut self, outcome: &PacketOutcome) {
        match outcome.hops() {
            Some(h) => self.record_delivered(h),
            None => self.record_dropped(),
        }
    }

    /// Records a delivered packet with the given hop count. Used by the
    /// allocation-free routing kernels, which report hop counts directly
    /// instead of materialising a [`PacketOutcome`].
    pub fn record_delivered(&mut self, hops: usize) {
        self.delivered += 1;
        self.total_hops += hops as u64;
        self.max_hops = self.max_hops.max(hops);
    }

    /// Records a dropped packet.
    pub fn record_dropped(&mut self) {
        self.dropped += 1;
    }

    /// Fraction of packets delivered (1.0 for an empty workload).
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.delivered + self.dropped;
        if total == 0 {
            1.0
        } else {
            self.delivered as f64 / total as f64
        }
    }

    /// Mean hop count over delivered packets (0.0 if none were delivered).
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &RoutingStats) {
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.total_hops += other.total_hops;
        self.max_hops = self.max_hops.max(other.max_hops);
    }
}

/// A labelled slowdown measurement, used by the experiment driver to print
/// the SIM1/SIM2 tables.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct SlowdownRow {
    /// Scenario label (e.g. "healthy SE", "1 fault, no spares").
    pub scenario: String,
    /// Steps taken by the scenario (`None` means the run stalled).
    pub steps: Option<usize>,
    /// Reference step count (native hypercube).
    pub reference_steps: usize,
}

impl SlowdownRow {
    /// The slowdown factor relative to the reference, if the run completed
    /// *and* the reference is meaningful. A zero reference step count has no
    /// slowdown — returning `None` (rendered as "-") is honest, where the
    /// old `.max(1)` silently reported the raw step count as the factor.
    pub fn slowdown(&self) -> Option<f64> {
        if self.reference_steps == 0 {
            return None;
        }
        self.steps.map(|s| s as f64 / self.reference_steps as f64)
    }
}

/// Distribution summary of per-packet delivery latencies (in cycles) from a
/// cycle-level congestion run. Computed once after the run, so it may sort
/// and allocate freely — the engine's hot loop only stamps delivery cycles.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize)]
pub struct LatencySummary {
    /// Number of delivered packets summarised.
    pub count: u64,
    /// Mean latency in cycles (0.0 when nothing was delivered).
    pub mean: f64,
    /// Median latency.
    pub p50: u32,
    /// 95th-percentile latency.
    pub p95: u32,
    /// Maximum latency.
    pub max: u32,
}

impl LatencySummary {
    /// Summarises a set of latencies. The slice is sorted in place.
    pub fn from_latencies(latencies: &mut [u32]) -> Self {
        latencies.sort_unstable();
        Self::from_sorted(latencies)
    }

    /// Summarises an already-sorted set of latencies without re-sorting —
    /// the congestion engine keeps its delivered latencies incrementally
    /// merge-sorted, so repeated (windowed) reports skip the O(n log n)
    /// pass entirely.
    pub fn from_sorted(latencies: &[u32]) -> Self {
        debug_assert!(
            latencies
                .iter()
                .zip(latencies.iter().skip(1))
                .all(|(a, b)| a <= b),
            "from_sorted requires sorted input"
        );
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        let count = latencies.len() as u64;
        let total: u64 = latencies.iter().map(|&l| l as u64).sum();
        // Nearest-rank percentiles: index ⌈q·n⌉ - 1 on the sorted data.
        let rank = |q: f64| -> u32 {
            let idx = ((q * count as f64).ceil() as usize).max(1) - 1;
            latencies[idx.min(latencies.len() - 1)]
        };
        LatencySummary {
            count,
            mean: total as f64 / count as f64,
            p50: rank(0.50),
            p95: rank(0.95),
            max: latencies.last().copied().unwrap_or(0),
        }
    }
}

/// A fixed-bin per-packet latency histogram for open-loop runs. All storage
/// is sized at construction and [`LatencyHistogram::record`] only touches
/// pre-allocated bins, so the measurement loop stays allocation-free; the
/// summary accessors may be called at any time.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct LatencyHistogram {
    /// Width of each bin in cycles (≥ 1).
    bin_width: u32,
    /// Bin `i` counts latencies in `[i*bin_width, (i+1)*bin_width)`.
    bins: Vec<u64>,
    /// Latencies past the last bin.
    overflow: u64,
    count: u64,
    sum: u64,
    max: u32,
}

impl LatencyHistogram {
    /// A histogram of `bin_count` bins of `bin_width` cycles each.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(bin_width: u32, bin_count: usize) -> Self {
        assert!(bin_width >= 1, "bin width must be at least one cycle");
        assert!(bin_count >= 1, "histogram needs at least one bin");
        LatencyHistogram {
            bin_width,
            bins: vec![0; bin_count],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one delivered packet's latency. Allocation-free.
    pub fn record(&mut self, latency: u32) {
        let bin = (latency / self.bin_width) as usize;
        match self.bins.get_mut(bin) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += latency as u64;
        self.max = self.max.max(latency);
    }

    /// Empties the histogram for reuse without touching the allocator.
    pub fn clear(&mut self) {
        for b in &mut self.bins {
            *b = 0;
        }
        self.overflow = 0;
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Packets recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The exact maximum recorded latency.
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Latencies that fell past the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The per-bin counts (`bins()[i]` covers `[i*w, (i+1)*w)` cycles).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Nearest-rank percentile, resolved to the *upper edge* of the bin
    /// holding that rank (a conservative bound, exact to `bin_width`).
    /// Returns [`LatencyHistogram::max`] when the rank lands in the
    /// overflow region, and 0 when the histogram is empty.
    pub fn percentile(&self, q: f64) -> u32 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &b) in self.bins.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let upper = (i as u32 + 1) * self.bin_width - 1;
                return upper.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SimError;

    #[test]
    fn record_and_summarise() {
        let mut stats = RoutingStats::default();
        stats.record(&PacketOutcome::Delivered {
            path: vec![0, 1, 2],
        });
        stats.record(&PacketOutcome::Delivered { path: vec![4] });
        stats.record(&PacketOutcome::Dropped(SimError::FaultyProcessor {
            node: 9,
        }));
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.max_hops, 2);
        assert!((stats.mean_hops() - 1.0).abs() < 1e-12);
        assert!((stats.delivery_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let stats = RoutingStats::default();
        assert_eq!(stats.delivery_ratio(), 1.0);
        assert_eq!(stats.mean_hops(), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = RoutingStats {
            delivered: 2,
            dropped: 1,
            total_hops: 5,
            max_hops: 3,
        };
        let b = RoutingStats {
            delivered: 1,
            dropped: 0,
            total_hops: 7,
            max_hops: 7,
        };
        a.merge(&b);
        assert_eq!(a.delivered, 3);
        assert_eq!(a.total_hops, 12);
        assert_eq!(a.max_hops, 7);
    }

    #[test]
    fn slowdown_rows() {
        let ok = SlowdownRow {
            scenario: "healthy".into(),
            steps: Some(8),
            reference_steps: 4,
        };
        assert_eq!(ok.slowdown(), Some(2.0));
        let stalled = SlowdownRow {
            scenario: "fault, no spares".into(),
            steps: None,
            reference_steps: 4,
        };
        assert_eq!(stalled.slowdown(), None);
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut empty: [u32; 0] = [];
        assert_eq!(
            LatencySummary::from_latencies(&mut empty),
            LatencySummary::default()
        );
        let mut one = [7u32];
        let s = LatencySummary::from_latencies(&mut one);
        assert_eq!((s.count, s.p50, s.p95, s.max), (1, 7, 7, 7));
        assert!((s.mean - 7.0).abs() < 1e-12);
        let mut twenty: Vec<u32> = (1..=20).rev().collect();
        let s = LatencySummary::from_latencies(&mut twenty);
        assert_eq!((s.count, s.p50, s.p95, s.max), (20, 10, 19, 20));
        assert!((s.mean - 10.5).abs() < 1e-12);
    }

    #[test]
    fn latency_histogram_records_and_summarises() {
        let mut hist = LatencyHistogram::new(4, 4); // covers [0, 16), overflow past
        assert_eq!(hist.percentile(0.5), 0);
        for lat in [0, 1, 3, 4, 7, 15] {
            hist.record(lat);
        }
        assert_eq!(hist.count(), 6);
        assert_eq!(hist.bins(), &[3, 2, 0, 1]);
        assert_eq!(hist.overflow(), 0);
        assert_eq!(hist.max(), 15);
        assert!((hist.mean() - 30.0 / 6.0).abs() < 1e-12);
        // Rank 3 of 6 is the last latency in bin 0: upper edge 3.
        assert_eq!(hist.percentile(0.5), 3);
        assert_eq!(hist.percentile(1.0), 15);
        // Overflow: recorded in count/mean/max, percentile falls back to max.
        hist.record(100);
        assert_eq!(hist.overflow(), 1);
        assert_eq!(hist.max(), 100);
        assert_eq!(hist.percentile(1.0), 100);
        hist.clear();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.bins(), &[0, 0, 0, 0]);
        assert_eq!(hist.max(), 0);
    }

    #[test]
    fn zero_reference_has_no_slowdown() {
        // A degenerate reference (0 steps) must not masquerade as a factor:
        // the old `.max(1)` clamp silently reported `steps` itself.
        let degenerate = SlowdownRow {
            scenario: "empty reference".into(),
            steps: Some(8),
            reference_steps: 0,
        };
        assert_eq!(degenerate.slowdown(), None);
        let stalled_and_degenerate = SlowdownRow {
            scenario: "both degenerate".into(),
            steps: None,
            reference_steps: 0,
        };
        assert_eq!(stalled_and_degenerate.slowdown(), None);
    }
}
