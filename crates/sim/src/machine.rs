//! The physical machine model.
//!
//! A machine is a graph of processors (nodes) connected by point-to-point
//! links (edges), a set of faulty processors, and a *port model* describing
//! how many distinct values a processor may inject per synchronous step —
//! the distinction Section V leans on when it argues that the bus
//! implementation costs "approximately a factor of 2" only if processors
//! could previously send two values at once.

use ftdb_core::FaultSet;
use ftdb_graph::{Graph, NodeId};

/// How many distinct values a processor may transmit in one synchronous step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum PortModel {
    /// One outgoing value per step (single-ported).
    SinglePort,
    /// One value per incident link per step (all-ported; for the de Bruijn
    /// graph's two forward links this is the "two different values in unit
    /// time" of Section V).
    MultiPort,
}

/// Errors surfaced by the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A step required a processor that is faulty (and the machine has no
    /// reconfiguration to route around it).
    FaultyProcessor {
        /// The faulty processor that the computation needed.
        node: NodeId,
    },
    /// A step required a link that does not exist in the physical graph.
    MissingLink {
        /// The endpoints of the missing link.
        link: (NodeId, NodeId),
    },
    /// A packet could not be delivered (no healthy path).
    Unreachable {
        /// Source of the packet.
        source: NodeId,
        /// Destination of the packet.
        target: NodeId,
    },
    /// A route endpoint does not name a node of the logical topology. The
    /// routing kernels return this instead of panicking, so a malformed
    /// workload degrades into dropped packets like every other failure.
    EndpointOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The number of logical nodes (valid endpoints are `0..limit`).
        limit: usize,
    },
    /// A dynamic fault scenario asked for more faults than the
    /// fault-tolerant construction is built to tolerate.
    FaultBudgetExceeded {
        /// Number of faults in the scenario.
        faults: usize,
        /// The construction's budget `k`.
        budget: usize,
    },
    /// Online reconfiguration failed verification for a fault set *within*
    /// the budget. Theorem 1 guarantees this cannot happen for a correct
    /// construction, so this error marks a construction bug — surfaced as a
    /// typed error instead of a panic so a recovery driver degrades
    /// gracefully.
    ReconfigurationFailed {
        /// Number of faults in the set that failed to reconfigure.
        faults: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::FaultyProcessor { node } => write!(f, "processor {node} is faulty"),
            SimError::MissingLink { link } => {
                write!(f, "no physical link between {} and {}", link.0, link.1)
            }
            SimError::Unreachable { source, target } => {
                write!(f, "no healthy path from {source} to {target}")
            }
            SimError::EndpointOutOfRange { node, limit } => {
                write!(f, "route endpoint {node} is out of range (0..{limit})")
            }
            SimError::FaultBudgetExceeded { faults, budget } => {
                write!(
                    f,
                    "{faults} faults exceed the construction's budget k = {budget}"
                )
            }
            SimError::ReconfigurationFailed { faults } => {
                write!(
                    f,
                    "reconfiguration failed verification for a within-budget set of \
                     {faults} faults (construction bug)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A physical parallel machine: processors, links, faults and a port model.
#[derive(Clone, Debug)]
pub struct PhysicalMachine {
    graph: Graph,
    faults: FaultSet,
    port_model: PortModel,
}

impl PhysicalMachine {
    /// Creates a healthy machine from an interconnection graph.
    pub fn new(graph: Graph, port_model: PortModel) -> Self {
        let faults = FaultSet::empty(graph.node_count());
        PhysicalMachine {
            graph,
            faults,
            port_model,
        }
    }

    /// Creates a machine with the given fault set.
    ///
    /// # Panics
    /// Panics if the fault universe does not match the graph.
    pub fn with_faults(graph: Graph, faults: FaultSet, port_model: PortModel) -> Self {
        assert_eq!(
            faults.universe(),
            graph.node_count(),
            "fault set universe does not match the machine size"
        );
        PhysicalMachine {
            graph,
            faults,
            port_model,
        }
    }

    /// The interconnection graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The port model.
    pub fn port_model(&self) -> PortModel {
        self.port_model
    }

    /// Number of processors (healthy or not).
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of healthy processors.
    pub fn healthy_count(&self) -> usize {
        self.node_count() - self.faults.len()
    }

    /// Marks a processor as faulty.
    pub fn inject_fault(&mut self, node: NodeId) {
        self.faults.add(node);
    }

    /// Returns whether `node` is healthy.
    pub fn is_healthy(&self, node: NodeId) -> bool {
        node < self.node_count() && !self.faults.contains(node)
    }

    /// Checks that a communication over link `(u, v)` is possible: both
    /// endpoints healthy and the link physically present.
    pub fn check_link(&self, u: NodeId, v: NodeId) -> Result<(), SimError> {
        if !self.is_healthy(u) {
            return Err(SimError::FaultyProcessor { node: u });
        }
        if !self.is_healthy(v) {
            return Err(SimError::FaultyProcessor { node: v });
        }
        if u != v && !self.graph.has_edge(u, v) {
            return Err(SimError::MissingLink { link: (u, v) });
        }
        Ok(())
    }

    /// The healthy neighbours of `u`, without allocating. Hot loops (BFS
    /// fallback routing, diagnosis sweeps) iterate this directly off the
    /// graph's CSR row.
    pub fn healthy_neighbors_iter(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.graph
            .neighbors(u)
            .iter()
            .map(|&v| v as NodeId)
            .filter(|&v| self.is_healthy(v))
    }

    /// The healthy neighbours of `u` as a vector. Prefer
    /// [`PhysicalMachine::healthy_neighbors_iter`] in loops.
    pub fn healthy_neighbors(&self, u: NodeId) -> Vec<NodeId> {
        self.healthy_neighbors_iter(u).collect()
    }

    /// The number of synchronous steps needed for one processor to inject
    /// `values` distinct values under the machine's port model.
    pub fn injection_steps(&self, values: usize) -> usize {
        match self.port_model {
            PortModel::SinglePort => values,
            PortModel::MultiPort => usize::from(values > 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdb_graph::generators;

    #[test]
    fn healthy_machine_basics() {
        let m = PhysicalMachine::new(generators::cycle(6), PortModel::MultiPort);
        assert_eq!(m.node_count(), 6);
        assert_eq!(m.healthy_count(), 6);
        assert!(m.is_healthy(3));
        assert!(m.check_link(0, 1).is_ok());
        assert_eq!(
            m.check_link(0, 3),
            Err(SimError::MissingLink { link: (0, 3) })
        );
    }

    #[test]
    fn faults_disable_processors_and_links() {
        let mut m = PhysicalMachine::new(generators::cycle(6), PortModel::SinglePort);
        m.inject_fault(2);
        assert!(!m.is_healthy(2));
        assert_eq!(m.healthy_count(), 5);
        assert_eq!(
            m.check_link(1, 2),
            Err(SimError::FaultyProcessor { node: 2 })
        );
        assert_eq!(m.healthy_neighbors(1), vec![0]);
        assert_eq!(m.healthy_neighbors(3), vec![4]);
    }

    #[test]
    fn with_faults_constructor_checks_universe() {
        let faults = FaultSet::from_nodes(6, [5]);
        let m = PhysicalMachine::with_faults(generators::cycle(6), faults, PortModel::MultiPort);
        assert_eq!(m.healthy_count(), 5);
        assert!(!m.is_healthy(5));
    }

    #[test]
    #[should_panic]
    fn mismatched_universe_is_rejected() {
        let faults = FaultSet::from_nodes(4, [1]);
        PhysicalMachine::with_faults(generators::cycle(6), faults, PortModel::MultiPort);
    }

    #[test]
    fn injection_steps_depend_on_port_model() {
        let single = PhysicalMachine::new(generators::cycle(4), PortModel::SinglePort);
        let multi = PhysicalMachine::new(generators::cycle(4), PortModel::MultiPort);
        assert_eq!(single.injection_steps(2), 2);
        assert_eq!(multi.injection_steps(2), 1);
        assert_eq!(single.injection_steps(0), 0);
        assert_eq!(multi.injection_steps(0), 0);
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(SimError::FaultyProcessor { node: 3 }
            .to_string()
            .contains('3'));
        assert!(SimError::Unreachable {
            source: 1,
            target: 2
        }
        .to_string()
        .contains("healthy path"));
        assert!(SimError::EndpointOutOfRange { node: 9, limit: 8 }
            .to_string()
            .contains("out of range"));
    }
}
