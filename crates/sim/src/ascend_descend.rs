//! Ascend/Descend-class algorithms (Preparata and Vuillemin [11]).
//!
//! An *Ascend* algorithm processes the hypercube dimensions in increasing
//! order: in phase `i`, every pair of logical nodes whose labels differ in
//! bit `i` combine their values. (*Descend* processes the dimensions in the
//! opposite order.) All-reduce, parallel prefix, bitonic merge and FFT all
//! fit this mould, and the entire appeal of the de Bruijn / shuffle-exchange
//! topologies is that they run such algorithms with only constant-factor
//! slowdown although their degree is constant.
//!
//! This module implements a representative Ascend computation — all-reduce
//! with an associative combiner — three ways:
//!
//! 1. natively on the hypercube (`h` communication steps),
//! 2. on the shuffle-exchange emulation (`2h` steps: one exchange + one
//!    shuffle per phase), executed over an arbitrary *physical* machine
//!    through an embedding of `SE_h`, which is how both the healthy network
//!    and the fault-tolerant network after reconfiguration are exercised,
//! 3. in a "descend" variant to cover the symmetric class.
//!
//! If the embedding touches a faulty processor or a missing link, the run
//! aborts with the offending element — this is the paper's "a single fault
//! severely degrades performance" scenario made concrete.

use crate::machine::{PhysicalMachine, SimError};
use ftdb_graph::Embedding;
use ftdb_topology::ShuffleExchange;

/// Outcome of a simulated Ascend/Descend run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AscendOutcome {
    /// Number of synchronous communication steps consumed.
    pub steps: usize,
    /// The final per-logical-node values.
    pub values: Vec<u64>,
}

impl AscendOutcome {
    /// Slowdown relative to the native hypercube execution of the same
    /// logical computation (`h` steps).
    pub fn slowdown_vs_hypercube(&self, h: usize) -> f64 {
        if h == 0 {
            return 1.0;
        }
        self.steps as f64 / h as f64
    }
}

/// All-reduce (sum) over `2^h` logical nodes executed natively on the
/// hypercube: phase `i` combines partners across dimension `i`. Takes `h`
/// communication steps and leaves the total in every node.
#[allow(clippy::needless_range_loop)]
pub fn allreduce_hypercube(h: usize, values: &[u64]) -> AscendOutcome {
    let n = 1usize << h;
    assert_eq!(values.len(), n, "need one value per logical node");
    // Two fixed buffers, swapped per phase — no per-phase allocation.
    let mut vals = values.to_vec();
    let mut next = vec![0u64; n];
    for dim in 0..h {
        for x in 0..n {
            next[x] = vals[x].wrapping_add(vals[x ^ (1 << dim)]);
        }
        std::mem::swap(&mut vals, &mut next);
    }
    AscendOutcome {
        steps: h,
        values: vals,
    }
}

/// All-reduce (sum) executed with the shuffle-exchange emulation on a
/// physical machine.
///
/// * `se` — the logical shuffle-exchange network (`2^h` logical nodes).
/// * `placement` — where each logical SE node lives physically. For the
///   un-protected network this is the identity; for the fault-tolerant
///   network it is the embedding produced by reconfiguration.
/// * `machine` — the physical machine (graph + faults).
///
/// Each phase performs an exchange step (logical edge `x ↔ x⊕1`) and a
/// shuffle step (logical edge `x → shuffle(x)`), so the run takes `2h`
/// steps. Every logical edge used must map to a healthy physical link;
/// otherwise the run aborts with the corresponding [`SimError`].
#[allow(clippy::needless_range_loop)]
pub fn allreduce_shuffle_exchange(
    se: &ShuffleExchange,
    placement: &Embedding,
    machine: &PhysicalMachine,
    values: &[u64],
) -> Result<AscendOutcome, SimError> {
    let n = se.node_count();
    assert_eq!(values.len(), n, "need one value per logical node");
    assert_eq!(
        placement.len(),
        n,
        "placement must cover every logical node"
    );
    let h = se.h();
    // `vals` and `scratch` ping-pong across the exchange and shuffle steps;
    // every slot is overwritten each step, so no clearing (and no per-phase
    // allocation) is needed.
    let mut vals = values.to_vec();
    let mut scratch = vec![0u64; n];
    let mut steps = 0;
    for _phase in 0..h {
        // Exchange step: logical x combines with x ^ 1.
        for x in 0..n {
            let partner = se.exchange(x);
            machine.check_link(placement.apply(x), placement.apply(partner))?;
            scratch[x] = vals[x].wrapping_add(vals[partner]);
        }
        steps += 1;
        // Shuffle step: the value held by logical x moves to shuffle(x).
        for x in 0..n {
            let dest = se.shuffle(x);
            if dest != x {
                machine.check_link(placement.apply(x), placement.apply(dest))?;
            }
            vals[dest] = scratch[x];
        }
        steps += 1;
    }
    Ok(AscendOutcome {
        steps,
        values: vals,
    })
}

/// The Descend variant: dimensions in decreasing order. On the
/// shuffle-exchange the emulation is symmetric (unshuffle instead of
/// shuffle), and costs the same `2h` steps.
#[allow(clippy::needless_range_loop)]
pub fn descend_shuffle_exchange(
    se: &ShuffleExchange,
    placement: &Embedding,
    machine: &PhysicalMachine,
    values: &[u64],
) -> Result<AscendOutcome, SimError> {
    let n = se.node_count();
    assert_eq!(values.len(), n);
    assert_eq!(placement.len(), n);
    let h = se.h();
    let mut vals = values.to_vec();
    let mut scratch = vec![0u64; n];
    let mut steps = 0;
    for _phase in 0..h {
        // Unshuffle first, then exchange: the mirror image of the Ascend run.
        for x in 0..n {
            let dest = se.unshuffle(x);
            if dest != x {
                machine.check_link(placement.apply(x), placement.apply(dest))?;
            }
            scratch[dest] = vals[x];
        }
        steps += 1;
        for x in 0..n {
            let partner = se.exchange(x);
            machine.check_link(placement.apply(x), placement.apply(partner))?;
            vals[x] = scratch[x].wrapping_add(scratch[partner]);
        }
        steps += 1;
    }
    Ok(AscendOutcome {
        steps,
        values: vals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::PortModel;
    use ftdb_core::{FaultSet, FtShuffleExchange};
    use ftdb_graph::Embedding;

    fn seq(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    fn total(n: usize) -> u64 {
        (0..n as u64).sum()
    }

    #[test]
    fn hypercube_allreduce_sums_everything_in_h_steps() {
        for h in 1..=6 {
            let n = 1 << h;
            let out = allreduce_hypercube(h, &seq(n));
            assert_eq!(out.steps, h);
            assert!(out.values.iter().all(|&v| v == total(n)));
            assert!((out.slowdown_vs_hypercube(h) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shuffle_exchange_allreduce_on_healthy_machine() {
        for h in 1..=6 {
            let se = ShuffleExchange::new(h);
            let n = se.node_count();
            let machine = PhysicalMachine::new(se.graph().clone(), PortModel::MultiPort);
            let placement = Embedding::identity(n);
            let out = allreduce_shuffle_exchange(&se, &placement, &machine, &seq(n)).unwrap();
            assert_eq!(out.steps, 2 * h, "h={h}");
            assert!(out.values.iter().all(|&v| v == total(n)), "h={h}");
            assert!((out.slowdown_vs_hypercube(h) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn descend_also_sums_everything() {
        for h in 2..=5 {
            let se = ShuffleExchange::new(h);
            let n = se.node_count();
            let machine = PhysicalMachine::new(se.graph().clone(), PortModel::MultiPort);
            let placement = Embedding::identity(n);
            let out = descend_shuffle_exchange(&se, &placement, &machine, &seq(n)).unwrap();
            assert_eq!(out.steps, 2 * h);
            assert!(out.values.iter().all(|&v| v == total(n)));
        }
    }

    #[test]
    fn single_fault_stalls_the_unprotected_network() {
        // The paper's motivating scenario: SE_4 with processor 5 faulty and
        // no spare — the Ascend run must abort.
        let se = ShuffleExchange::new(4);
        let n = se.node_count();
        let mut machine = PhysicalMachine::new(se.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(5);
        let placement = Embedding::identity(n);
        let err = allreduce_shuffle_exchange(&se, &placement, &machine, &seq(n)).unwrap_err();
        assert_eq!(err, SimError::FaultyProcessor { node: 5 });
    }

    #[test]
    fn fault_tolerant_network_restores_full_speed() {
        // Same logical computation, but the physical machine is B^1_{2,4}
        // with one faulty node; after reconfiguration the run completes in
        // the same 2h steps as the healthy network.
        let h = 4;
        let ft = FtShuffleExchange::new(h, 1).unwrap();
        let se = ShuffleExchange::new(h);
        let n = se.node_count();
        for faulty in 0..ft.node_count() {
            let faults = FaultSet::from_nodes(ft.node_count(), [faulty]);
            let placement = ft.reconfigure_verified(&faults).unwrap();
            let machine =
                PhysicalMachine::with_faults(ft.graph().clone(), faults, PortModel::MultiPort);
            let out = allreduce_shuffle_exchange(&se, &placement, &machine, &seq(n)).unwrap();
            assert_eq!(out.steps, 2 * h);
            assert!(out.values.iter().all(|&v| v == total(n)));
        }
    }

    #[test]
    fn slowdown_helper_handles_zero_dimension() {
        let out = AscendOutcome {
            steps: 0,
            values: vec![0],
        };
        assert_eq!(out.slowdown_vs_hypercube(0), 1.0);
    }
}
