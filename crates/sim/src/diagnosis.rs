//! System-level fault diagnosis: detect the fault set before reconfiguring.
//!
//! The paper assumes the fault set is known ("given any set of k node
//! faults …"); a real machine has to *find* it first. This module provides
//! the missing operational step under a crash-fault model: every healthy
//! processor probes its neighbours once per round, a processor that fails to
//! answer any healthy neighbour is flagged, and the flags are aggregated
//! into the global fault set that the reconfiguration algorithm consumes.
//! Because the fault-tolerant graphs are connected and have minimum degree
//! well above `k`, every faulty processor has at least one healthy
//! neighbour, so one probing round suffices for complete diagnosis whenever
//! at most `k < min-degree` processors have crashed.
//!
//! [`detect_reconfigure_resume`] chains the whole recovery pipeline:
//! diagnose → reconfigure (rank map) → verify → re-run the Ascend all-reduce
//! — the end-to-end path a machine built on these constructions would take
//! after a crash.

use crate::ascend_descend::allreduce_shuffle_exchange;
use crate::machine::{PhysicalMachine, SimError};
use ftdb_core::{FaultSet, FtShuffleExchange};
use ftdb_graph::NodeId;
use ftdb_topology::ShuffleExchange;

/// The outcome of one probing-based diagnosis pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiagnosisReport {
    /// The fault set as diagnosed by the healthy processors.
    pub diagnosed: FaultSet,
    /// Number of probe messages sent (one per direction of each link with a
    /// healthy prober).
    pub probes_sent: usize,
    /// Faulty processors that no healthy neighbour could observe (possible
    /// only if faults isolate a node, which cannot happen for `k` below the
    /// minimum degree).
    pub unobserved: Vec<NodeId>,
}

impl DiagnosisReport {
    /// `true` if the diagnosis matches the machine's actual fault set.
    pub fn is_complete_and_correct(&self, actual: &FaultSet) -> bool {
        self.unobserved.is_empty()
            && self.diagnosed.len() == actual.len()
            && actual.iter().all(|f| self.diagnosed.contains(f))
    }
}

/// Runs one probing round on the machine and returns the diagnosed fault
/// set. Healthy processors probe every neighbour; a processor is flagged
/// faulty iff it is actually crashed and at least one healthy neighbour
/// probed it (crash faults cannot lie, so there are no false positives).
pub fn diagnose(machine: &PhysicalMachine) -> DiagnosisReport {
    let g = machine.graph();
    let mut diagnosed = FaultSet::empty(g.node_count());
    let mut observed = vec![false; g.node_count()];
    let mut probes_sent = 0;
    for prober in g.nodes() {
        if !machine.is_healthy(prober) {
            continue;
        }
        for &target in g.neighbors(prober) {
            let target = target as usize;
            probes_sent += 1;
            observed[target] = true;
            if !machine.is_healthy(target) {
                diagnosed.add(target);
            }
        }
    }
    let unobserved = machine.faults().iter().filter(|&f| !observed[f]).collect();
    DiagnosisReport {
        diagnosed,
        probes_sent,
        unobserved,
    }
}

/// Summary of the full detect → reconfigure → resume pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The diagnosis step's report.
    pub diagnosis: DiagnosisReport,
    /// Steps taken by the resumed Ascend all-reduce.
    pub resumed_steps: usize,
    /// The all-reduce total computed after recovery.
    pub total: u64,
}

/// Runs the complete recovery pipeline on a fault-tolerant shuffle-exchange
/// machine whose actual fault set is `actual_faults`:
///
/// 1. probe-based diagnosis on the physical machine,
/// 2. rank-based reconfiguration from the *diagnosed* fault set,
/// 3. verification of the resulting embedding, and
/// 4. a full Ascend all-reduce over the logical shuffle-exchange.
///
/// Returns an error if any stage fails (it cannot, for `|actual_faults| ≤ k`,
/// which is what the accompanying tests demonstrate).
pub fn detect_reconfigure_resume(
    ft: &FtShuffleExchange,
    actual_faults: &FaultSet,
    values: &[u64],
) -> Result<RecoveryOutcome, SimError> {
    let machine = PhysicalMachine::with_faults(
        ft.graph().clone(),
        actual_faults.clone(),
        crate::machine::PortModel::MultiPort,
    );
    let diagnosis = diagnose(&machine);
    // Reconfigure from what was *diagnosed*, not from ground truth.
    let placement =
        ft.reconfigure_verified(&diagnosis.diagnosed)
            .map_err(|_| SimError::Unreachable {
                source: 0,
                target: 0,
            })?;
    let se = ShuffleExchange::new(ft.h());
    let out = allreduce_shuffle_exchange(&se, &placement, &machine, values)?;
    Ok(RecoveryOutcome {
        diagnosis,
        resumed_steps: out.steps,
        total: out.values[0],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::PortModel;
    use crate::workload;
    use ftdb_core::FtDeBruijn2;
    use rand::SeedableRng;

    #[test]
    fn healthy_machine_diagnoses_nothing() {
        let ft = FtDeBruijn2::new(4, 2);
        let machine = PhysicalMachine::new(ft.graph().clone(), PortModel::MultiPort);
        let report = diagnose(&machine);
        assert!(report.diagnosed.is_empty());
        assert!(report.unobserved.is_empty());
        assert_eq!(report.probes_sent, 2 * ft.graph().edge_count());
    }

    #[test]
    fn crashed_processors_are_found_exactly() {
        let ft = FtDeBruijn2::new(4, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..25 {
            let actual =
                FaultSet::random(ft.node_count(), 3, &mut rng).expect("k within node count");
            let machine = PhysicalMachine::with_faults(
                ft.graph().clone(),
                actual.clone(),
                PortModel::MultiPort,
            );
            let report = diagnose(&machine);
            assert!(report.is_complete_and_correct(&actual));
        }
    }

    #[test]
    fn diagnosis_never_reports_false_positives() {
        let ft = FtDeBruijn2::new(5, 2);
        let actual = FaultSet::from_nodes(ft.node_count(), [4, 19]);
        let machine =
            PhysicalMachine::with_faults(ft.graph().clone(), actual.clone(), PortModel::MultiPort);
        let report = diagnose(&machine);
        assert_eq!(report.diagnosed.iter().collect::<Vec<_>>(), vec![4, 19]);
    }

    #[test]
    fn full_recovery_pipeline_restores_the_computation() {
        let h = 4;
        let k = 2;
        let ft = FtShuffleExchange::new(h, k).unwrap();
        let values = workload::index_values(1 << h);
        let expected: u64 = values.iter().sum();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let actual =
                FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
            let outcome = detect_reconfigure_resume(&ft, &actual, &values)
                .expect("recovery pipeline must succeed for <= k crashes");
            assert!(outcome.diagnosis.is_complete_and_correct(&actual));
            assert_eq!(outcome.resumed_steps, 2 * h);
            assert_eq!(outcome.total, expected);
        }
    }

    #[test]
    fn pipeline_with_no_faults_is_a_noop_recovery() {
        let ft = FtShuffleExchange::new(3, 1).unwrap();
        let values = workload::index_values(8);
        let outcome =
            detect_reconfigure_resume(&ft, &FaultSet::empty(ft.node_count()), &values).unwrap();
        assert!(outcome.diagnosis.diagnosed.is_empty());
        assert_eq!(outcome.total, values.iter().sum::<u64>());
    }
}
