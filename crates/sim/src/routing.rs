//! Packet routing on healthy and faulty machines.
//!
//! Two routing strategies are simulated:
//!
//! * **Logical (oblivious) routing** — the classic de Bruijn digit-shifting
//!   route (or shuffle-exchange route), mapped onto the physical machine
//!   through a placement embedding. This is how a production machine routes:
//!   cheap, local decisions, fixed path length ≤ `h` (or `2h`). It has no
//!   notion of faults: if the path crosses a faulty processor the packet is
//!   lost — the situation the paper's constructions are designed to avoid by
//!   restoring a fully healthy logical topology.
//! * **Adaptive (BFS) routing** — shortest healthy path in the surviving
//!   physical graph. Used as a foil: it shows that even when packets *can*
//!   be salvaged without spares, they pay latency and the machine loses the
//!   uniform-step structure that Ascend/Descend algorithms rely on.
//!
//! Both strategies expose two layers:
//!
//! * `route_*` functions returning a [`PacketOutcome`] — convenient, but
//!   they allocate the delivered path.
//! * `route_*_into` kernels that write the path into a caller-owned buffer
//!   and report the hop count — zero heap allocation per packet once the
//!   buffers are warm. [`RouteScratch`] bundles the buffers; the workload
//!   drivers (sequential and batched) keep one scratch per worker thread
//!   and route entire permutations without touching the allocator.

use crate::machine::{PhysicalMachine, SimError};
use crate::metrics::RoutingStats;
use ftdb_graph::traversal::{self, Searcher};
use ftdb_graph::{Embedding, NodeId};
use ftdb_topology::DeBruijn2;

/// The result of routing one packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketOutcome {
    /// Delivered over the given physical path (hop count = `path.len() - 1`).
    Delivered {
        /// The physical path taken, source and target inclusive.
        path: Vec<NodeId>,
    },
    /// Dropped because of the given error.
    Dropped(SimError),
}

impl PacketOutcome {
    /// Hop count if delivered.
    pub fn hops(&self) -> Option<usize> {
        match self {
            PacketOutcome::Delivered { path } => Some(path.len().saturating_sub(1)),
            PacketOutcome::Dropped(_) => None,
        }
    }
}

/// Reusable per-worker routing scratch: the physical path buffer and the
/// BFS state for adaptive routing. One `RouteScratch` per thread routes any
/// number of packets with zero per-packet allocation.
#[derive(Clone, Debug, Default)]
pub struct RouteScratch {
    /// Buffer the routed physical path is written into.
    pub path: Vec<NodeId>,
    searcher: Searcher,
}

impl RouteScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        RouteScratch::default()
    }
}

/// Allocation-free kernel for the oblivious de Bruijn route: walks the
/// digit-shifting route from logical `source` to logical `target`, checking
/// every physical link and processor through `placement`, and writes the
/// physical path into `out`.
///
/// Returns the hop count on delivery. `out` is cleared first; once its
/// capacity reaches `h + 1` no allocation happens.
pub fn route_logical_debruijn_into(
    db: &DeBruijn2,
    placement: &Embedding,
    machine: &PhysicalMachine,
    source: NodeId,
    target: NodeId,
    out: &mut Vec<NodeId>,
) -> Result<usize, SimError> {
    check_endpoints(db, source, target)?;
    out.clear();
    let g = machine.graph();
    let h = db.h();
    let mut current = source;
    let mut physical = placement.apply(source);
    if !machine.is_healthy(physical) {
        return Err(SimError::FaultyProcessor { node: physical });
    }
    out.push(physical);
    for i in (0..h).rev() {
        let next = db.route_step(current, target >> i);
        if next != current {
            let next_physical = placement.apply(next);
            // `physical` is already known healthy, so only the new endpoint
            // and the connecting link need checking (same classification as
            // `PhysicalMachine::check_link`, including its allowance for a
            // step whose endpoints coincide under a non-injective
            // placement — no physical link is needed then).
            if !machine.is_healthy(next_physical) {
                return Err(SimError::FaultyProcessor {
                    node: next_physical,
                });
            }
            if next_physical != physical && !g.has_edge(physical, next_physical) {
                return Err(SimError::MissingLink {
                    link: (physical, next_physical),
                });
            }
            out.push(next_physical);
            physical = next_physical;
        }
        current = next;
    }
    debug_assert_eq!(current, target);
    Ok(out.len() - 1)
}

/// Routes one packet along the logical de Bruijn route from logical node
/// `source` to logical node `target`, executing it on `machine` through the
/// `placement` embedding.
pub fn route_logical_debruijn(
    db: &DeBruijn2,
    placement: &Embedding,
    machine: &PhysicalMachine,
    source: NodeId,
    target: NodeId,
) -> PacketOutcome {
    let mut path = Vec::with_capacity(db.h() + 1);
    match route_logical_debruijn_into(db, placement, machine, source, target, &mut path) {
        Ok(_) => PacketOutcome::Delivered { path },
        Err(e) => PacketOutcome::Dropped(e),
    }
}

/// Allocation-free kernel for adaptive routing: BFS restricted to healthy
/// processors, path written into `scratch.path`. Returns the hop count on
/// delivery.
pub fn route_adaptive_into(
    machine: &PhysicalMachine,
    physical_source: NodeId,
    physical_target: NodeId,
    scratch: &mut RouteScratch,
) -> Result<usize, SimError> {
    let limit = machine.node_count();
    for endpoint in [physical_source, physical_target] {
        if endpoint >= limit {
            return Err(SimError::EndpointOutOfRange {
                node: endpoint,
                limit,
            });
        }
    }
    if !machine.is_healthy(physical_source) {
        return Err(SimError::FaultyProcessor {
            node: physical_source,
        });
    }
    if !machine.is_healthy(physical_target) {
        return Err(SimError::FaultyProcessor {
            node: physical_target,
        });
    }
    let found = scratch.searcher.shortest_path_filtered_into(
        machine.graph(),
        physical_source,
        physical_target,
        |v| machine.is_healthy(v),
        &mut scratch.path,
    );
    if found {
        Ok(scratch.path.len() - 1)
    } else {
        Err(SimError::Unreachable {
            source: physical_source,
            target: physical_target,
        })
    }
}

/// Routes one packet adaptively: shortest path between the *physical*
/// endpoints inside the healthy part of the machine.
pub fn route_adaptive(
    machine: &PhysicalMachine,
    physical_source: NodeId,
    physical_target: NodeId,
) -> PacketOutcome {
    let mut scratch = RouteScratch::new();
    match route_adaptive_into(machine, physical_source, physical_target, &mut scratch) {
        Ok(_) => PacketOutcome::Delivered { path: scratch.path },
        Err(e) => PacketOutcome::Dropped(e),
    }
}

/// How much per-packet validation a workload run still needs, decided once
/// per workload by [`workload_trust`]. All tiers produce byte-identical
/// statistics; the cheaper tiers just skip checks that the upfront
/// validation proved can never fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Trust {
    /// Placement images are in range, every logical edge maps to a physical
    /// link, and the machine has no faults: nothing can fail, count hops
    /// with pure arithmetic.
    Full,
    /// Links are valid but faults exist: check processor health per hop.
    Health,
    /// No guarantees: run the full per-hop link + health checks.
    Checked,
}

/// Validates `placement` against the machine once: O(V + E) instead of
/// O(packets · h). This is the batching win — a production machine
/// validates its routing table when it is installed, not per packet.
fn workload_trust(db: &DeBruijn2, placement: &Embedding, machine: &PhysicalMachine) -> Trust {
    let n = machine.node_count();
    if placement.len() != db.node_count() || placement.as_slice().iter().any(|&p| p >= n) {
        return Trust::Checked;
    }
    let g = machine.graph();
    // Coinciding endpoints need no physical link, matching
    // `PhysicalMachine::check_link`'s allowance for `u == v`.
    let edges_ok = db.graph().edges().all(|(a, b)| {
        let (pa, pb) = (placement.apply(a), placement.apply(b));
        pa == pb || g.has_edge(pa, pb)
    });
    if !edges_ok {
        return Trust::Checked;
    }
    if machine.faults().is_empty() {
        Trust::Full
    } else {
        Trust::Health
    }
}

/// Checks that both route endpoints name logical nodes. Every kernel calls
/// this first, so a malformed pair surfaces as a [`SimError`] (and thus a
/// dropped packet in the workload drivers) instead of a release-mode panic.
// analyzer: alloc-free
#[inline]
fn check_endpoints(db: &DeBruijn2, source: NodeId, target: NodeId) -> Result<(), SimError> {
    let limit = db.node_count();
    if source >= limit {
        return Err(SimError::EndpointOutOfRange {
            node: source,
            limit,
        });
    }
    if target >= limit {
        return Err(SimError::EndpointOutOfRange {
            node: target,
            limit,
        });
    }
    Ok(())
}

/// Hop count of the oblivious route when nothing can fail (Trust::Full):
/// pure shift arithmetic, no memory traffic besides the instruction stream.
#[inline]
// analyzer: alloc-free
fn oblivious_hops_trusted(
    db: &DeBruijn2,
    source: NodeId,
    target: NodeId,
) -> Result<usize, SimError> {
    check_endpoints(db, source, target)?;
    let mut hops = 0;
    let mut current = source;
    for i in (0..db.h()).rev() {
        let next = db.route_step(current, target >> i);
        if next != current {
            hops += 1;
        }
        current = next;
    }
    Ok(hops)
}

/// Hop count when links are trusted but processors may be faulty
/// (Trust::Health): one health check per visited node.
#[inline]
// analyzer: alloc-free
fn oblivious_hops_health(
    db: &DeBruijn2,
    placement: &Embedding,
    machine: &PhysicalMachine,
    source: NodeId,
    target: NodeId,
) -> Result<usize, SimError> {
    check_endpoints(db, source, target)?;
    let physical = placement.apply(source);
    if !machine.is_healthy(physical) {
        return Err(SimError::FaultyProcessor { node: physical });
    }
    let mut hops = 0;
    let mut current = source;
    for i in (0..db.h()).rev() {
        let next = db.route_step(current, target >> i);
        if next != current {
            let p = placement.apply(next);
            if !machine.is_healthy(p) {
                return Err(SimError::FaultyProcessor { node: p });
            }
            hops += 1;
        }
        current = next;
    }
    Ok(hops)
}

/// Routes one chunk of a workload under a precomputed trust tier.
fn run_logical_chunk(
    db: &DeBruijn2,
    placement: &Embedding,
    machine: &PhysicalMachine,
    pairs: &[(NodeId, NodeId)],
    trust: Trust,
    path: &mut Vec<NodeId>,
) -> RoutingStats {
    let mut stats = RoutingStats::default();
    match trust {
        Trust::Full => {
            for &(s, t) in pairs {
                match oblivious_hops_trusted(db, s, t) {
                    Ok(hops) => stats.record_delivered(hops),
                    Err(_) => stats.record_dropped(),
                }
            }
        }
        Trust::Health => {
            for &(s, t) in pairs {
                match oblivious_hops_health(db, placement, machine, s, t) {
                    Ok(hops) => stats.record_delivered(hops),
                    Err(_) => stats.record_dropped(),
                }
            }
        }
        Trust::Checked => {
            for &(s, t) in pairs {
                match route_logical_debruijn_into(db, placement, machine, s, t, path) {
                    Ok(hops) => stats.record_delivered(hops),
                    Err(_) => stats.record_dropped(),
                }
            }
        }
    }
    stats
}

/// Routes a whole workload of logical `(source, target)` pairs with the
/// oblivious de Bruijn strategy and aggregates statistics.
///
/// Single-threaded driver over the allocation-free kernels: the placement
/// is validated once ([`workload_trust`]) and one path buffer serves every
/// packet — zero allocation per packet.
pub fn run_logical_workload(
    db: &DeBruijn2,
    placement: &Embedding,
    machine: &PhysicalMachine,
    pairs: &[(NodeId, NodeId)],
) -> RoutingStats {
    let trust = workload_trust(db, placement, machine);
    let mut path = Vec::with_capacity(db.h() + 1);
    run_logical_chunk(db, placement, machine, pairs, trust, &mut path)
}

/// Routes a workload of *physical* `(source, target)` pairs adaptively.
pub fn run_adaptive_workload(
    machine: &PhysicalMachine,
    pairs: &[(NodeId, NodeId)],
) -> RoutingStats {
    let mut stats = RoutingStats::default();
    let mut scratch = RouteScratch::new();
    for &(s, t) in pairs {
        match route_adaptive_into(machine, s, t, &mut scratch) {
            Ok(hops) => stats.record_delivered(hops),
            Err(_) => stats.record_dropped(),
        }
    }
    stats
}

/// Splits `pairs` into `threads` contiguous chunks and routes each chunk on
/// its own worker (crossbeam scoped threads), each with private
/// [`RouteScratch`] buffers. Statistics are merged after the join, so the
/// hot loop is lock- and allocation-free. With `threads <= 1` (or a tiny
/// workload) this falls back to the sequential driver — same results either
/// way, since the per-packet outcomes are independent.
pub fn run_logical_workload_batched(
    db: &DeBruijn2,
    placement: &Embedding,
    machine: &PhysicalMachine,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> RoutingStats {
    let threads = threads.max(1).min(pairs.len().max(1));
    if threads == 1 {
        return run_logical_workload(db, placement, machine, pairs);
    }
    let trust = workload_trust(db, placement, machine);
    let chunk = pairs.len().div_ceil(threads);
    let mut stats = RoutingStats::default();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move |_| {
                    let mut path = Vec::with_capacity(db.h() + 1);
                    run_logical_chunk(db, placement, machine, slice, trust, &mut path)
                })
            })
            .collect();
        for handle in handles {
            stats.merge(&handle.join().expect("routing worker panicked")); // analyzer: allow(expect) -- a worker panic must propagate to the caller, not be merged into partial stats
        }
    })
    .expect("routing scope panicked"); // analyzer: allow(expect) -- crossbeam scope errors only reflect a worker panic that is already propagating
    stats
}

/// Batched counterpart of [`run_adaptive_workload`]: contiguous chunks, one
/// BFS scratch per worker.
pub fn run_adaptive_workload_batched(
    machine: &PhysicalMachine,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> RoutingStats {
    let threads = threads.max(1).min(pairs.len().max(1));
    if threads == 1 {
        return run_adaptive_workload(machine, pairs);
    }
    let chunk = pairs.len().div_ceil(threads);
    let mut stats = RoutingStats::default();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move |_| {
                    let mut local = RoutingStats::default();
                    let mut scratch = RouteScratch::new();
                    for &(s, t) in slice {
                        match route_adaptive_into(machine, s, t, &mut scratch) {
                            Ok(hops) => local.record_delivered(hops),
                            Err(_) => local.record_dropped(),
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            stats.merge(&handle.join().expect("routing worker panicked")); // analyzer: allow(expect) -- a worker panic must propagate to the caller, not be merged into partial stats
        }
    })
    .expect("routing scope panicked"); // analyzer: allow(expect) -- crossbeam scope errors only reflect a worker panic that is already propagating
    stats
}

/// A sanity helper used by tests and experiments: the maximum hop count the
/// oblivious route can take on a healthy machine (the de Bruijn diameter).
pub fn worst_case_oblivious_hops(db: &DeBruijn2) -> usize {
    traversal::diameter(db.graph()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::PortModel;
    use crate::workload;
    use ftdb_core::{FaultSet, FtDeBruijn2};
    use ftdb_graph::Embedding;
    use rand::SeedableRng;

    #[test]
    fn healthy_machine_delivers_all_logical_packets() {
        let db = DeBruijn2::new(4);
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let placement = Embedding::identity(db.node_count());
        for s in 0..db.node_count() {
            for t in 0..db.node_count() {
                let out = route_logical_debruijn(&db, &placement, &machine, s, t);
                let hops = out.hops().expect("healthy machine must deliver");
                assert!(hops <= db.h());
            }
        }
    }

    #[test]
    fn into_kernel_path_matches_outcome_path() {
        let db = DeBruijn2::new(5);
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let placement = Embedding::identity(db.node_count());
        let mut path = Vec::new();
        for (s, t) in [(0, 31), (7, 7), (12, 19)] {
            let hops = route_logical_debruijn_into(&db, &placement, &machine, s, t, &mut path)
                .expect("healthy delivery");
            match route_logical_debruijn(&db, &placement, &machine, s, t) {
                PacketOutcome::Delivered { path: reference } => {
                    assert_eq!(path, reference);
                    assert_eq!(hops, reference.len() - 1);
                }
                other => panic!("expected delivery, got {other:?}"),
            }
        }
    }

    #[test]
    fn faulty_node_drops_logical_packets_through_it() {
        let db = DeBruijn2::new(4);
        let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(1);
        let placement = Embedding::identity(db.node_count());
        // A route ending at the faulty node is dropped.
        let out = route_logical_debruijn(&db, &placement, &machine, 5, 1);
        assert!(matches!(out, PacketOutcome::Dropped(_)));
        // And so is one that merely passes through it: 8 -> 1 -> 2.
        let through = route_logical_debruijn(&db, &placement, &machine, 8, 2);
        assert!(matches!(through, PacketOutcome::Dropped(_)));
        // Routes that avoid it still work.
        let ok = route_logical_debruijn(&db, &placement, &machine, 10, 5);
        assert!(ok.hops().is_some());
    }

    #[test]
    fn adaptive_routing_survives_faults_at_a_latency_cost() {
        let db = DeBruijn2::new(4);
        let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(1);
        // 8 -> 2 obliviously goes through 1 (8=1000 -> 0001? shift route) and
        // is droppable; adaptively it finds another healthy path.
        let adaptive = route_adaptive(&machine, 8, 2);
        assert!(adaptive.hops().is_some());
        // Faulty endpoints are still undeliverable.
        assert!(matches!(
            route_adaptive(&machine, 1, 3),
            PacketOutcome::Dropped(SimError::FaultyProcessor { node: 1 })
        ));
    }

    #[test]
    fn adaptive_routing_reports_unreachable_partitions() {
        // A path graph cut in the middle.
        let g = ftdb_graph::generators::path(5);
        let faults = FaultSet::from_nodes(5, [2]);
        let machine = PhysicalMachine::with_faults(g, faults, PortModel::SinglePort);
        assert!(matches!(
            route_adaptive(&machine, 0, 4),
            PacketOutcome::Dropped(SimError::Unreachable { .. })
        ));
    }

    #[test]
    fn reconfigured_ft_machine_delivers_everything_again() {
        let ft = FtDeBruijn2::new(4, 1);
        let db = ft.target().clone();
        for faulty in [0usize, 7, 16] {
            let faults = FaultSet::from_nodes(ft.node_count(), [faulty]);
            let placement = ft.reconfigure_verified(&faults).unwrap();
            let machine =
                PhysicalMachine::with_faults(ft.graph().clone(), faults, PortModel::MultiPort);
            let pairs: Vec<(usize, usize)> = (0..db.node_count())
                .flat_map(|s| [(s, (s * 7 + 3) % db.node_count()), (s, 0)])
                .collect();
            let stats = run_logical_workload(&db, &placement, &machine, &pairs);
            assert_eq!(stats.dropped, 0, "faulty={faulty}");
            assert_eq!(stats.delivered as usize, pairs.len());
            assert!(stats.max_hops <= db.h());
        }
    }

    #[test]
    fn workload_statistics_accumulate() {
        let db = DeBruijn2::new(3);
        let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(3);
        let placement = Embedding::identity(db.node_count());
        let pairs = vec![(0, 7), (0, 3), (5, 6)];
        let stats = run_logical_workload(&db, &placement, &machine, &pairs);
        assert_eq!(stats.delivered + stats.dropped, 3);
        assert!(stats.dropped >= 1); // the packet to the faulty node
        let adaptive = run_adaptive_workload(&machine, &[(0, 7), (6, 2)]);
        assert_eq!(adaptive.delivered + adaptive.dropped, 2);
    }

    #[test]
    fn non_injective_placement_delivers_over_coinciding_endpoints() {
        // check_link treats a step whose physical endpoints coincide as not
        // needing a link; the kernels and the workload tiers must agree.
        let db = DeBruijn2::new(3);
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let collapsed = Embedding::from_map(vec![0; db.node_count()]);
        for (s, t) in [(0, 7), (3, 4), (6, 6)] {
            let out = route_logical_debruijn(&db, &collapsed, &machine, s, t);
            assert!(out.hops().is_some(), "({s},{t}) must deliver: {out:?}");
        }
        let pairs: Vec<(usize, usize)> = (0..8).map(|s| (s, 7 - s)).collect();
        let mut reference = RoutingStats::default();
        for &(s, t) in &pairs {
            reference.record(&route_logical_debruijn(&db, &collapsed, &machine, s, t));
        }
        assert_eq!(
            run_logical_workload(&db, &collapsed, &machine, &pairs),
            reference
        );
        assert_eq!(
            run_logical_workload_batched(&db, &collapsed, &machine, &pairs, 3),
            reference
        );
    }

    #[test]
    fn workload_tiers_match_per_packet_reference() {
        // The trust-tier drivers must aggregate exactly what per-packet
        // routing reports, on (a) a healthy machine (Full), (b) a faulty
        // machine (Health), and (c) a machine whose graph is missing links
        // (Checked).
        let db = DeBruijn2::new(5);
        let n = db.node_count();
        let placement = Embedding::identity(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let pairs = workload::permutation_pairs(n, &mut rng);
        let healthy = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut faulty = healthy.clone();
        faulty.inject_fault(3);
        faulty.inject_fault(20);
        let sparse = PhysicalMachine::new(ftdb_graph::generators::cycle(n), PortModel::MultiPort);
        for machine in [&healthy, &faulty, &sparse] {
            let mut reference = RoutingStats::default();
            for &(s, t) in &pairs {
                reference.record(&route_logical_debruijn(&db, &placement, machine, s, t));
            }
            let driver = run_logical_workload(&db, &placement, machine, &pairs);
            assert_eq!(driver, reference);
            let batched = run_logical_workload_batched(&db, &placement, machine, &pairs, 3);
            assert_eq!(batched, reference);
        }
    }

    #[test]
    fn batched_workload_matches_sequential() {
        let db = DeBruijn2::new(6);
        let n = db.node_count();
        let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(5);
        machine.inject_fault(40);
        let placement = Embedding::identity(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let pairs = workload::permutation_pairs(n, &mut rng);
        let sequential = run_logical_workload(&db, &placement, &machine, &pairs);
        for threads in [1usize, 2, 4, 7] {
            let batched = run_logical_workload_batched(&db, &placement, &machine, &pairs, threads);
            assert_eq!(batched, sequential, "threads={threads}");
        }
        let uniform = workload::uniform_pairs(n, 100, &mut rng);
        let seq_adaptive = run_adaptive_workload(&machine, &uniform);
        for threads in [2usize, 5] {
            let batched = run_adaptive_workload_batched(&machine, &uniform, threads);
            assert_eq!(batched, seq_adaptive, "threads={threads}");
        }
    }

    #[test]
    fn batched_workload_handles_degenerate_inputs() {
        let db = DeBruijn2::new(3);
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let placement = Embedding::identity(db.node_count());
        let empty = run_logical_workload_batched(&db, &placement, &machine, &[], 4);
        assert_eq!(empty.delivered + empty.dropped, 0);
        let single = run_logical_workload_batched(&db, &placement, &machine, &[(0, 5)], 16);
        assert_eq!(single.delivered, 1);
    }

    #[test]
    fn out_of_range_endpoints_are_errors_not_panics() {
        let db = DeBruijn2::new(3);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let placement = Embedding::identity(n);
        let mut path = Vec::new();
        // Oblivious kernel: source and target out of range, in both orders.
        for (s, t) in [(n, 0), (0, n + 3)] {
            let bad = s.max(t);
            assert_eq!(
                route_logical_debruijn_into(&db, &placement, &machine, s, t, &mut path),
                Err(SimError::EndpointOutOfRange {
                    node: bad,
                    limit: n
                })
            );
            assert!(matches!(
                route_logical_debruijn(&db, &placement, &machine, s, t),
                PacketOutcome::Dropped(SimError::EndpointOutOfRange { .. })
            ));
        }
        // Adaptive kernel.
        let mut scratch = RouteScratch::new();
        assert_eq!(
            route_adaptive_into(&machine, n, 0, &mut scratch),
            Err(SimError::EndpointOutOfRange { node: n, limit: n })
        );
        assert_eq!(
            route_adaptive_into(&machine, 0, n + 1, &mut scratch),
            Err(SimError::EndpointOutOfRange {
                node: n + 1,
                limit: n
            })
        );
    }

    #[test]
    fn out_of_range_pairs_count_as_dropped_in_every_trust_tier() {
        // The same malformed pair must degrade into one dropped packet on a
        // healthy machine (Full tier), a faulty machine (Health tier) and a
        // link-deficient machine (Checked tier) — never a panic.
        let db = DeBruijn2::new(3);
        let n = db.node_count();
        let placement = Embedding::identity(n);
        let pairs = vec![(0, 5), (n + 7, 1), (2, n), (3, 3)];
        let healthy = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut faulty = healthy.clone();
        faulty.inject_fault(6);
        let sparse = PhysicalMachine::new(ftdb_graph::generators::cycle(n), PortModel::MultiPort);
        for machine in [&healthy, &faulty, &sparse] {
            let stats = run_logical_workload(&db, &placement, machine, &pairs);
            assert_eq!(stats.delivered + stats.dropped, pairs.len() as u64);
            assert!(stats.dropped >= 2, "both malformed pairs must be dropped");
            let batched = run_logical_workload_batched(&db, &placement, machine, &pairs, 2);
            assert_eq!(batched, stats);
        }
    }

    #[test]
    fn worst_case_hops_is_the_diameter() {
        let db = DeBruijn2::new(5);
        assert_eq!(worst_case_oblivious_hops(&db), 5);
    }
}
