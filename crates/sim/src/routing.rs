//! Packet routing on healthy and faulty machines.
//!
//! Two routing strategies are simulated:
//!
//! * **Logical (oblivious) routing** — the classic de Bruijn digit-shifting
//!   route (or shuffle-exchange route), mapped onto the physical machine
//!   through a placement embedding. This is how a production machine routes:
//!   cheap, local decisions, fixed path length ≤ `h` (or `2h`). It has no
//!   notion of faults: if the path crosses a faulty processor the packet is
//!   lost — the situation the paper's constructions are designed to avoid by
//!   restoring a fully healthy logical topology.
//! * **Adaptive (BFS) routing** — shortest healthy path in the surviving
//!   physical graph. Used as a foil: it shows that even when packets *can*
//!   be salvaged without spares, they pay latency and the machine loses the
//!   uniform-step structure that Ascend/Descend algorithms rely on.

use crate::machine::{PhysicalMachine, SimError};
use crate::metrics::RoutingStats;
use ftdb_graph::traversal;
use ftdb_graph::{Embedding, NodeId};
use ftdb_topology::DeBruijn2;

/// The result of routing one packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketOutcome {
    /// Delivered over the given physical path (hop count = `path.len() - 1`).
    Delivered {
        /// The physical path taken, source and target inclusive.
        path: Vec<NodeId>,
    },
    /// Dropped because of the given error.
    Dropped(SimError),
}

impl PacketOutcome {
    /// Hop count if delivered.
    pub fn hops(&self) -> Option<usize> {
        match self {
            PacketOutcome::Delivered { path } => Some(path.len().saturating_sub(1)),
            PacketOutcome::Dropped(_) => None,
        }
    }
}

/// Routes one packet along the logical de Bruijn route from logical node
/// `source` to logical node `target`, executing it on `machine` through the
/// `placement` embedding.
pub fn route_logical_debruijn(
    db: &DeBruijn2,
    placement: &Embedding,
    machine: &PhysicalMachine,
    source: NodeId,
    target: NodeId,
) -> PacketOutcome {
    let logical_path = db.route(source, target);
    let mut physical_path = Vec::with_capacity(logical_path.len());
    for w in logical_path.windows(2) {
        let (pu, pv) = (placement.apply(w[0]), placement.apply(w[1]));
        if let Err(e) = machine.check_link(pu, pv) {
            return PacketOutcome::Dropped(e);
        }
    }
    for &l in &logical_path {
        let p = placement.apply(l);
        if !machine.is_healthy(p) {
            return PacketOutcome::Dropped(SimError::FaultyProcessor { node: p });
        }
        physical_path.push(p);
    }
    PacketOutcome::Delivered { path: physical_path }
}

/// Routes one packet adaptively: shortest path between the *physical*
/// endpoints inside the healthy part of the machine.
pub fn route_adaptive(
    machine: &PhysicalMachine,
    physical_source: NodeId,
    physical_target: NodeId,
) -> PacketOutcome {
    if !machine.is_healthy(physical_source) {
        return PacketOutcome::Dropped(SimError::FaultyProcessor { node: physical_source });
    }
    if !machine.is_healthy(physical_target) {
        return PacketOutcome::Dropped(SimError::FaultyProcessor { node: physical_target });
    }
    // BFS restricted to healthy nodes.
    let g = machine.graph();
    let n = g.node_count();
    let mut parent = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    parent[physical_source] = physical_source;
    queue.push_back(physical_source);
    while let Some(u) = queue.pop_front() {
        if u == physical_target {
            break;
        }
        for &v in g.neighbors(u) {
            if machine.is_healthy(v) && parent[v] == usize::MAX {
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    if parent[physical_target] == usize::MAX {
        return PacketOutcome::Dropped(SimError::Unreachable {
            source: physical_source,
            target: physical_target,
        });
    }
    let mut path = vec![physical_target];
    let mut cur = physical_target;
    while cur != physical_source {
        cur = parent[cur];
        path.push(cur);
    }
    path.reverse();
    PacketOutcome::Delivered { path }
}

/// Routes a whole workload of logical `(source, target)` pairs with the
/// oblivious de Bruijn strategy and aggregates statistics.
pub fn run_logical_workload(
    db: &DeBruijn2,
    placement: &Embedding,
    machine: &PhysicalMachine,
    pairs: &[(NodeId, NodeId)],
) -> RoutingStats {
    let mut stats = RoutingStats::default();
    for &(s, t) in pairs {
        stats.record(&route_logical_debruijn(db, placement, machine, s, t));
    }
    stats
}

/// Routes a workload of *physical* `(source, target)` pairs adaptively.
pub fn run_adaptive_workload(
    machine: &PhysicalMachine,
    pairs: &[(NodeId, NodeId)],
) -> RoutingStats {
    let mut stats = RoutingStats::default();
    for &(s, t) in pairs {
        stats.record(&route_adaptive(machine, s, t));
    }
    stats
}

/// A sanity helper used by tests and experiments: the maximum hop count the
/// oblivious route can take on a healthy machine (the de Bruijn diameter).
pub fn worst_case_oblivious_hops(db: &DeBruijn2) -> usize {
    traversal::diameter(db.graph()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::PortModel;
    use ftdb_core::{FaultSet, FtDeBruijn2};
    use ftdb_graph::Embedding;

    #[test]
    fn healthy_machine_delivers_all_logical_packets() {
        let db = DeBruijn2::new(4);
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let placement = Embedding::identity(db.node_count());
        for s in 0..db.node_count() {
            for t in 0..db.node_count() {
                let out = route_logical_debruijn(&db, &placement, &machine, s, t);
                let hops = out.hops().expect("healthy machine must deliver");
                assert!(hops <= db.h());
            }
        }
    }

    #[test]
    fn faulty_node_drops_logical_packets_through_it() {
        let db = DeBruijn2::new(4);
        let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(1);
        let placement = Embedding::identity(db.node_count());
        // A route ending at the faulty node is dropped.
        let out = route_logical_debruijn(&db, &placement, &machine, 5, 1);
        assert!(matches!(out, PacketOutcome::Dropped(_)));
        // And so is one that merely passes through it: 8 -> 1 -> 2.
        let through = route_logical_debruijn(&db, &placement, &machine, 8, 2);
        assert!(matches!(through, PacketOutcome::Dropped(_)));
        // Routes that avoid it still work.
        let ok = route_logical_debruijn(&db, &placement, &machine, 10, 5);
        assert!(ok.hops().is_some());
    }

    #[test]
    fn adaptive_routing_survives_faults_at_a_latency_cost() {
        let db = DeBruijn2::new(4);
        let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(1);
        // 8 -> 2 obliviously goes through 1 (8=1000 -> 0001? shift route) and
        // is droppable; adaptively it finds another healthy path.
        let adaptive = route_adaptive(&machine, 8, 2);
        assert!(adaptive.hops().is_some());
        // Faulty endpoints are still undeliverable.
        assert!(matches!(
            route_adaptive(&machine, 1, 3),
            PacketOutcome::Dropped(SimError::FaultyProcessor { node: 1 })
        ));
    }

    #[test]
    fn adaptive_routing_reports_unreachable_partitions() {
        // A path graph cut in the middle.
        let g = ftdb_graph::generators::path(5);
        let faults = FaultSet::from_nodes(5, [2]);
        let machine = PhysicalMachine::with_faults(g, faults, PortModel::SinglePort);
        assert!(matches!(
            route_adaptive(&machine, 0, 4),
            PacketOutcome::Dropped(SimError::Unreachable { .. })
        ));
    }

    #[test]
    fn reconfigured_ft_machine_delivers_everything_again() {
        let ft = FtDeBruijn2::new(4, 1);
        let db = ft.target().clone();
        for faulty in [0usize, 7, 16] {
            let faults = FaultSet::from_nodes(ft.node_count(), [faulty]);
            let placement = ft.reconfigure_verified(&faults).unwrap();
            let machine = PhysicalMachine::with_faults(
                ft.graph().clone(),
                faults,
                PortModel::MultiPort,
            );
            let pairs: Vec<(usize, usize)> = (0..db.node_count())
                .flat_map(|s| [(s, (s * 7 + 3) % db.node_count()), (s, 0)])
                .collect();
            let stats = run_logical_workload(&db, &placement, &machine, &pairs);
            assert_eq!(stats.dropped, 0, "faulty={faulty}");
            assert_eq!(stats.delivered as usize, pairs.len());
            assert!(stats.max_hops <= db.h());
        }
    }

    #[test]
    fn workload_statistics_accumulate() {
        let db = DeBruijn2::new(3);
        let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(3);
        let placement = Embedding::identity(db.node_count());
        let pairs = vec![(0, 7), (0, 3), (5, 6)];
        let stats = run_logical_workload(&db, &placement, &machine, &pairs);
        assert_eq!(stats.delivered + stats.dropped, 3);
        assert!(stats.dropped >= 1); // the packet to the faulty node
        let adaptive = run_adaptive_workload(&machine, &[(0, 7), (6, 2)]);
        assert_eq!(adaptive.delivered + adaptive.dropped, 2);
    }

    #[test]
    fn worst_case_hops_is_the_diameter() {
        let db = DeBruijn2::new(5);
        assert_eq!(worst_case_oblivious_hops(&db), 5);
    }
}
