//! Further Ascend/Descend-class collectives: parallel prefix (scan) and a
//! generic dimension-exchange driver.
//!
//! The paper's argument is about the whole *class* of Ascend/Descend
//! algorithms, not just all-reduce, so the simulator provides a second
//! representative: the prefix sum (scan), which is the workhorse behind
//! packing, sorting and load balancing on these machines. The hypercube
//! runs it in `h` dimension-exchange steps; the shuffle-exchange emulation
//! runs it in `2h` steps over the same exchange/shuffle schedule used by
//! [`crate::ascend_descend`], while tracking which logical hypercube node
//! currently resides in each shuffle-exchange slot.

use crate::machine::{PhysicalMachine, SimError};
use ftdb_graph::Embedding;
use ftdb_topology::ShuffleExchange;

/// Outcome of a scan run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Number of synchronous communication steps consumed.
    pub steps: usize,
    /// `prefix[x]` is the inclusive prefix sum of the values of logical
    /// nodes `0..=x`.
    pub prefix: Vec<u64>,
    /// The total (same in every node after the run).
    pub total: u64,
}

/// The sequential reference: inclusive prefix sums.
pub fn sequential_inclusive_scan(values: &[u64]) -> Vec<u64> {
    let mut acc = 0u64;
    values
        .iter()
        .map(|&v| {
            acc = acc.wrapping_add(v);
            acc
        })
        .collect()
}

/// Inclusive prefix sum on the hypercube in `h` dimension-exchange steps.
///
/// Every node keeps a pair `(prefix, total)`; when exchanging across
/// dimension `d`, the node whose bit `d` is 1 adds the partner's running
/// total to its prefix, and both add each other's totals. This works for
/// any dimension order, which is what lets the shuffle-exchange emulation
/// reuse it with its own schedule.
pub fn scan_hypercube(h: usize, values: &[u64]) -> ScanOutcome {
    let n = 1usize << h;
    assert_eq!(values.len(), n, "need one value per logical node");
    // Ping-pong between two (prefix, total) buffer pairs — allocation per
    // run is fixed, independent of the number of phases.
    let mut prefix = values.to_vec();
    let mut total = values.to_vec();
    let mut next_prefix = vec![0u64; n];
    let mut next_total = vec![0u64; n];
    for dim in 0..h {
        for (x, (p, t)) in next_prefix
            .iter_mut()
            .zip(next_total.iter_mut())
            .enumerate()
        {
            let partner = x ^ (1 << dim);
            *p = if x & (1 << dim) != 0 {
                prefix[x].wrapping_add(total[partner])
            } else {
                prefix[x]
            };
            *t = total[x].wrapping_add(total[partner]);
        }
        std::mem::swap(&mut prefix, &mut next_prefix);
        std::mem::swap(&mut total, &mut next_total);
    }
    ScanOutcome {
        steps: h,
        total: total[0],
        prefix,
    }
}

/// Inclusive prefix sum with the shuffle-exchange emulation on a physical
/// machine (same calling convention as
/// [`crate::ascend_descend::allreduce_shuffle_exchange`]).
///
/// Unlike all-reduce, the scan's combining rule is order-sensitive: the
/// hypercube dimensions must be processed from least to most significant.
/// The emulation therefore interleaves the exchange steps with *unshuffle*
/// steps (one exchange + one unshuffle per phase, `2h` steps in total), which
/// rotates the labels so that phase `i`'s exchange pairs logical nodes that
/// differ in bit `i`. Each slot carries the identity of the logical
/// hypercube node whose running `(prefix, total)` pair it currently holds,
/// so the combining rule knows which side of the dimension each partner is
/// on.
pub fn scan_shuffle_exchange(
    se: &ShuffleExchange,
    placement: &Embedding,
    machine: &PhysicalMachine,
    values: &[u64],
) -> Result<ScanOutcome, SimError> {
    let n = se.node_count();
    assert_eq!(values.len(), n, "need one value per logical node");
    assert_eq!(
        placement.len(),
        n,
        "placement must cover every logical node"
    );
    let h = se.h();
    // State per physical slot: (logical owner, prefix, total). Each step
    // fully overwrites the "next" buffers, so the two buffer sets ping-pong
    // with no per-phase allocation.
    let mut owner: Vec<usize> = (0..n).collect();
    let mut prefix = values.to_vec();
    let mut total = values.to_vec();
    let mut next_owner = vec![0usize; n];
    let mut next_prefix = vec![0u64; n];
    let mut next_total = vec![0u64; n];
    let mut steps = 0;
    for dim in 0..h {
        // The exchange step pairs slots x and x^1; after `dim` unshuffle
        // steps their owners differ exactly in hypercube dimension `dim`.
        for x in 0..n {
            let partner = se.exchange(x);
            machine.check_link(placement.apply(x), placement.apply(partner))?;
            debug_assert_eq!(owner[x] ^ owner[partner], 1 << dim);
            next_prefix[x] = if owner[x] & (1 << dim) != 0 {
                prefix[x].wrapping_add(total[partner])
            } else {
                prefix[x]
            };
            next_total[x] = total[x].wrapping_add(total[partner]);
        }
        std::mem::swap(&mut prefix, &mut next_prefix);
        std::mem::swap(&mut total, &mut next_total);
        steps += 1;
        // The unshuffle step moves each slot's state (and its owner) along
        // the unshuffle permutation, lining up the next dimension.
        for x in 0..n {
            let dest = se.unshuffle(x);
            if dest != x {
                machine.check_link(placement.apply(x), placement.apply(dest))?;
            }
            next_owner[dest] = owner[x];
            next_prefix[dest] = prefix[x];
            next_total[dest] = total[x];
        }
        std::mem::swap(&mut owner, &mut next_owner);
        std::mem::swap(&mut prefix, &mut next_prefix);
        std::mem::swap(&mut total, &mut next_total);
        steps += 1;
    }
    // After h unshuffles every slot has rotated all the way around, so slot
    // x again holds logical node x's state.
    debug_assert!(owner.iter().enumerate().all(|(slot, &o)| slot == o));
    Ok(ScanOutcome {
        steps,
        total: total[0],
        prefix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::PortModel;
    use ftdb_core::{FaultSet, FtShuffleExchange};
    use rand::SeedableRng;

    fn values(n: usize, seed: u64) -> Vec<u64> {
        use rand::RngExt;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0..1000u64)).collect()
    }

    #[test]
    fn sequential_scan_reference() {
        assert_eq!(sequential_inclusive_scan(&[1, 2, 3, 4]), vec![1, 3, 6, 10]);
        assert_eq!(sequential_inclusive_scan(&[]), Vec::<u64>::new());
    }

    #[test]
    fn hypercube_scan_matches_sequential() {
        for h in 1..=7 {
            let n = 1 << h;
            let vals = values(n, h as u64);
            let out = scan_hypercube(h, &vals);
            assert_eq!(out.steps, h);
            assert_eq!(out.prefix, sequential_inclusive_scan(&vals), "h={h}");
            assert_eq!(out.total, *sequential_inclusive_scan(&vals).last().unwrap());
        }
    }

    #[test]
    fn shuffle_exchange_scan_matches_sequential_on_healthy_machine() {
        for h in 1..=6 {
            let se = ShuffleExchange::new(h);
            let n = se.node_count();
            let machine = PhysicalMachine::new(se.graph().clone(), PortModel::MultiPort);
            let placement = Embedding::identity(n);
            let vals = values(n, 100 + h as u64);
            let out = scan_shuffle_exchange(&se, &placement, &machine, &vals).unwrap();
            assert_eq!(out.steps, 2 * h, "h={h}");
            assert_eq!(out.prefix, sequential_inclusive_scan(&vals), "h={h}");
        }
    }

    #[test]
    fn faulty_unprotected_machine_stalls_the_scan() {
        let h = 4;
        let se = ShuffleExchange::new(h);
        let n = se.node_count();
        let mut machine = PhysicalMachine::new(se.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(7);
        let result = scan_shuffle_exchange(&se, &Embedding::identity(n), &machine, &values(n, 3));
        assert!(matches!(result, Err(SimError::FaultyProcessor { node: 7 })));
    }

    #[test]
    fn reconfigured_ft_machine_scans_correctly() {
        let h = 4;
        let k = 2;
        let ft = FtShuffleExchange::new(h, k).unwrap();
        let se = ShuffleExchange::new(h);
        let n = se.node_count();
        let vals = values(n, 9);
        let expected = sequential_inclusive_scan(&vals);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let faults =
                FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
            let placement = ft.reconfigure_verified(&faults).unwrap();
            let machine =
                PhysicalMachine::with_faults(ft.graph().clone(), faults, PortModel::MultiPort);
            let out = scan_shuffle_exchange(&se, &placement, &machine, &vals).unwrap();
            assert_eq!(out.prefix, expected);
            assert_eq!(out.steps, 2 * h);
        }
    }
}
