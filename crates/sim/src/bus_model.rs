//! Timing model for the Section V bus implementation.
//!
//! Section V argues:
//!
//! * replacing the two forward links of each node by one bus costs
//!   "approximately a factor of 2" **if** each processor could previously
//!   send two different values in unit time (multi-port), and
//! * "little or no slowdown" **if** each processor can send only one value
//!   per unit time anyway (single-port), because the serialisation was
//!   already there.
//!
//! This module models one communication *superstep* of a de Bruijn-style
//! computation in which every node must deliver one distinct value to each
//! of its `fanout` forward partners (2 for the plain de Bruijn graph,
//! `2k + 2` for `B^k_{2,h}`), and counts unit-time slots under three
//! implementations: multi-port point-to-point, single-port point-to-point,
//! and the shared bus. The numbers reproduce the paper's factor-of-2 claim
//! exactly.

use crate::machine::PortModel;

/// The interconnect implementation being timed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum Interconnect {
    /// Dedicated point-to-point links with the given port model.
    PointToPoint(PortModel),
    /// One shared bus per node (Section V): a single value can cross the bus
    /// per time slot, regardless of the port model.
    Bus,
}

/// Number of unit-time slots needed for every node to send `distinct_values`
/// different values to distinct forward partners, repeated for
/// `supersteps` supersteps.
pub fn slots_needed(
    interconnect: Interconnect,
    distinct_values: usize,
    supersteps: usize,
) -> usize {
    let per_step = match interconnect {
        Interconnect::PointToPoint(PortModel::MultiPort) => usize::from(distinct_values > 0),
        Interconnect::PointToPoint(PortModel::SinglePort) => distinct_values,
        Interconnect::Bus => distinct_values,
    };
    per_step * supersteps
}

/// The slowdown of the bus implementation relative to point-to-point links
/// under the given port model, for a workload where every node sends
/// `distinct_values` distinct values per superstep.
///
/// Returns 1.0 when the point-to-point baseline needs zero slots.
pub fn bus_slowdown(port_model: PortModel, distinct_values: usize) -> f64 {
    let p2p = slots_needed(Interconnect::PointToPoint(port_model), distinct_values, 1);
    let bus = slots_needed(Interconnect::Bus, distinct_values, 1);
    if p2p == 0 {
        1.0
    } else {
        bus as f64 / p2p as f64
    }
}

/// A row of the SIM2 table: one fanout / port-model combination.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct BusTimingRow {
    /// Number of distinct values each node must send per superstep.
    pub fanout: usize,
    /// Slots per superstep with multi-port point-to-point links.
    pub p2p_multi_port: usize,
    /// Slots per superstep with single-port point-to-point links.
    pub p2p_single_port: usize,
    /// Slots per superstep with the shared bus.
    pub bus: usize,
    /// Bus slowdown vs the multi-port baseline.
    pub slowdown_vs_multi_port: f64,
    /// Bus slowdown vs the single-port baseline.
    pub slowdown_vs_single_port: f64,
}

/// Builds the SIM2 table rows for the given fanouts.
pub fn bus_timing_table(fanouts: &[usize]) -> Vec<BusTimingRow> {
    fanouts
        .iter()
        .map(|&fanout| BusTimingRow {
            fanout,
            p2p_multi_port: slots_needed(
                Interconnect::PointToPoint(PortModel::MultiPort),
                fanout,
                1,
            ),
            p2p_single_port: slots_needed(
                Interconnect::PointToPoint(PortModel::SinglePort),
                fanout,
                1,
            ),
            bus: slots_needed(Interconnect::Bus, fanout, 1),
            slowdown_vs_multi_port: bus_slowdown(PortModel::MultiPort, fanout),
            slowdown_vs_single_port: bus_slowdown(PortModel::SinglePort, fanout),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn de_bruijn_fanout_two_matches_the_paper() {
        // Two distinct values per step (the plain de Bruijn forward links):
        // bus is 2x slower than multi-port, but no slower than single-port.
        assert_eq!(bus_slowdown(PortModel::MultiPort, 2), 2.0);
        assert_eq!(bus_slowdown(PortModel::SinglePort, 2), 1.0);
    }

    #[test]
    fn ft_graph_after_reconfiguration_still_sends_two_values() {
        // In B^k_{2,h} each node owns one bus spanning 2k+2 nodes, but after
        // reconfiguration it still only sends 2 *distinct* values per
        // superstep (to its two logical de Bruijn successors), so the bus
        // slowdown remains ≈ 2 independent of k — the paper's claim.
        for _k in 0..5 {
            let distinct_values_after_reconfiguration = 2;
            assert_eq!(
                bus_slowdown(PortModel::MultiPort, distinct_values_after_reconfiguration),
                2.0
            );
            assert_eq!(
                bus_slowdown(PortModel::SinglePort, distinct_values_after_reconfiguration),
                1.0
            );
        }
    }

    #[test]
    fn slowdown_grows_only_with_distinct_values_sent() {
        // The general law of the model: bus cost tracks the number of
        // distinct values a node injects, not the width of its bus.
        for values in 1..8 {
            assert_eq!(bus_slowdown(PortModel::MultiPort, values), values as f64);
            assert_eq!(bus_slowdown(PortModel::SinglePort, values), 1.0);
        }
    }

    #[test]
    fn slots_scale_linearly_with_supersteps() {
        assert_eq!(
            slots_needed(Interconnect::PointToPoint(PortModel::MultiPort), 2, 10),
            10
        );
        assert_eq!(slots_needed(Interconnect::Bus, 2, 10), 20);
        assert_eq!(
            slots_needed(Interconnect::PointToPoint(PortModel::SinglePort), 2, 10),
            20
        );
        assert_eq!(slots_needed(Interconnect::Bus, 0, 10), 0);
    }

    #[test]
    fn timing_table_has_expected_shape() {
        let table = bus_timing_table(&[2, 4, 6]);
        assert_eq!(table.len(), 3);
        assert_eq!(table[0].bus, 2);
        assert_eq!(table[0].p2p_multi_port, 1);
        assert_eq!(table[2].fanout, 6);
        assert_eq!(table[2].slowdown_vs_single_port, 1.0);
    }

    #[test]
    fn zero_fanout_is_benign() {
        assert_eq!(bus_slowdown(PortModel::MultiPort, 0), 1.0);
        assert_eq!(bus_slowdown(PortModel::SinglePort, 0), 1.0);
    }
}
