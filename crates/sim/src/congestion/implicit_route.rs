//! On-the-fly digit-shift next-hop generators: O(1) route state per packet.
//!
//! The oblivious de Bruijn route from `s` to `t` on `B(2,h)` is a shift
//! register: hop `i` shifts bit `h-1-i` of `t` into the low end of the
//! current label. The whole route is therefore recomputable from two words
//! of state — the current *logical* label and the not-yet-shifted target
//! bits — so the congestion engine never needs to materialize a path for an
//! oblivious packet. The generators here reproduce, hop for hop, exactly
//! the physical paths the materialized loader builds:
//!
//! * logical self-steps (`next == current`) cost no hop and are skipped,
//!   matching [`crate::routing::route_logical_debruijn_into`];
//! * consecutive physical duplicates under a non-injective placement are
//!   collapsed, matching the engine's packet loader.
//!
//! The remaining-bits register uses a sentinel encoding borrowed from
//! binary heaps of bits: `rem = (1 << bits_left) | remaining_target_bits`.
//! The sentinel's position *is* the count of bits left, so one `u32` carries
//! both the queue and its length; `rem == 1` means the route is exhausted.
//! A second generator covers the shuffle-exchange route automaton
//! ([`se_next_hop`]), proving the paper's other constant-degree topology is
//! equally O(1)-recomputable (the property suite checks it against
//! `ShuffleExchange::route`).
//!
//! Everything here is branch-light integer arithmetic on caller-owned
//! state: no allocation, no panics, no global state — the functions are
//! called from the engine's cycle loop and must stay that way.

/// Initial remaining-bits register for a route to `target` on `B(2,h)`:
/// all `h` target bits queued behind the sentinel.
#[inline]
pub fn rem_init(h: u32, target: u32) -> u32 {
    (1 << h) | target
}

/// True when the shift register has consumed every target bit — the packet
/// is at its final logical position.
// analyzer: alloc-free
#[inline]
pub fn rem_exhausted(rem: u32) -> bool {
    rem == 1
}

/// One shift-register step: consumes the highest queued target bit and
/// shifts it into `pos` (mod `mask + 1`). Caller must ensure
/// `!rem_exhausted(rem)`. Returns `(next_pos, next_rem)`.
// analyzer: alloc-free
#[inline]
pub fn shift_step(pos: u32, rem: u32, mask: u32) -> (u32, u32) {
    debug_assert!(rem > 1, "shift_step on an exhausted register");
    // The sentinel bit's index is the number of target bits still queued.
    let left = 31 - rem.leading_zeros();
    let bit = (rem >> (left - 1)) & 1;
    let next = ((pos << 1) | bit) & mask;
    let low = (1 << (left - 1)) - 1;
    (next, (rem & low) | (low + 1))
}

/// Physical image of logical node `x` under `place` (an empty slice is the
/// identity placement — the engine elides the map for healthy machines).
// analyzer: alloc-free
#[inline]
pub fn apply_place(place: &[u32], x: u32) -> u32 {
    if place.is_empty() {
        x
    } else {
        place[x as usize]
    }
}

/// Advances the shift register to the next *distinct physical* node:
/// logical self-steps and placement collapses cost no hop, exactly like the
/// materialized loader. Returns `(next_phys, pos_after, rem_after)`, or
/// `None` when the route exhausts without leaving `cur_phys` — the packet
/// is already at its physical target.
// analyzer: alloc-free
#[inline]
pub fn next_hop(
    place: &[u32],
    mask: u32,
    cur_phys: u32,
    mut pos: u32,
    mut rem: u32,
) -> Option<(u32, u32, u32)> {
    while !rem_exhausted(rem) {
        let (np, nr) = shift_step(pos, rem, mask);
        pos = np;
        rem = nr;
        let phys = apply_place(place, pos);
        if phys != cur_phys {
            return Some((phys, pos, rem));
        }
    }
    None
}

/// O(1) "does the route end here?" test for the **identity placement**
/// (empty `place`, where `phys == pos`): the register exhausts without
/// leaving `cur` iff no queued bit can shift the label anywhere else. A
/// shift keeps the label fixed only for the two shift-invariant labels —
/// all-zeros fed a 0 and all-ones fed a 1 — so the walk stays in place iff
/// the register is empty (`rem == 1`), or `cur` is all-zeros with only
/// zero bits queued (`rem` is a bare sentinel: a power of two), or
/// all-ones with only one bits queued (`rem + 1` is a power of two).
/// Equivalent to `next_hop(&[], mask, cur, cur, rem).is_none()`
/// (unit-tested below against the walk, exhaustively).
// analyzer: alloc-free
#[inline]
pub fn exhausts_in_place(cur: u32, mask: u32, rem: u32) -> bool {
    rem == 1 || (cur == 0 && rem & (rem - 1) == 0) || (cur == mask && rem & (rem + 1) == 0)
}

/// DELIVERS peek shared by the engines: true when the route from state
/// `(phys, pos, rem)` has no further hop. O(1) on the identity placement
/// via [`exhausts_in_place`]; placements break the `phys == pos` identity
/// that relies on, so a placed walk peeks with [`next_hop`].
// analyzer: alloc-free
#[inline]
pub fn route_ends_at(place: &[u32], mask: u32, phys: u32, pos: u32, rem: u32) -> bool {
    if place.is_empty() {
        exhausts_in_place(phys, mask, rem)
    } else {
        next_hop(place, mask, phys, pos, rem).is_none()
    }
}

/// Hops remaining from state `(cur_phys, pos, rem)` — O(h) (it walks the
/// register), used by loaders and tests, never by the cycle loop.
pub fn hops_left(place: &[u32], mask: u32, cur_phys: u32, pos: u32, rem: u32) -> u32 {
    let mut hops = 0;
    let (mut phys, mut pos, mut rem) = (cur_phys, pos, rem);
    while let Some((p, np, nr)) = next_hop(place, mask, phys, pos, rem) {
        hops += 1;
        phys = p;
        pos = np;
        rem = nr;
    }
    hops
}

/// Dateline test for the virtual-channel ordering: hop `cur -> next`
/// crosses a dateline iff it *descends* the physical label. Rank every
/// (link, vc) channel by the pair `(vc, source label)` ordered
/// lexicographically; an ascending hop keeps its VC and strictly grows the
/// label, and a descending hop moves to VC `vc + 1` (capped), so along any
/// loop-free route the channel rank strictly increases while VCs remain —
/// no cyclic channel dependency can close, which is the classic dateline
/// freedom-from-deadlock argument. On the identity-placed `B(2,h)` this is
/// O(1) from the shift state alone: the next label is
/// `(2·cur + b) mod 2^h`, which is smaller than `cur` iff `cur`'s top bit
/// is set (the wrap of a de Bruijn shift cycle; equality happens only at
/// the two shift-invariant self-loops, which the generators skip). The cap
/// at `vcs - 1` means full formal freedom needs more VCs than a route has
/// descents; with fewer, datelines still break the single-loop waits that
/// deadlock depth-1 buffers, and the engine's quiescence detector remains
/// the honest backstop (see `docs/CONGESTION.md`).
// analyzer: alloc-free
#[inline]
pub fn dateline_crossing(cur: u32, next: u32) -> bool {
    next < cur
}

/// One step of the shuffle-exchange route automaton of
/// `ShuffleExchange::route`: round `j` (1-based) optionally exchanges the
/// low bit to match target bit `(h - j + 1) % h`, then shuffles (rotates
/// left). State is `(current, round, shuffled_pending)` where
/// `shuffled_pending = true` means round `round`'s exchange has been
/// emitted and the shuffle is next. Returns the next distinct node and the
/// state after it, or `None` when the route is exhausted (self-steps are
/// skipped, matching the route's duplicate dropping). O(1) amortized: at
/// most `2h` states exist per route.
#[inline]
pub fn se_next_hop(
    h: u32,
    target: u32,
    cur: u32,
    round: u32,
    shuffle_pending: bool,
) -> Option<(u32, u32, bool)> {
    let mask = (1u32 << h) - 1;
    let mut c = cur;
    let mut j = round;
    let mut pending = shuffle_pending;
    while j <= h {
        if !pending {
            let position = (h - j + 1) % h;
            let want = (target >> position) & 1;
            if c & 1 != want {
                return Some((c ^ 1, j, true));
            }
        }
        // Shuffle: rotate the h-bit label left.
        let s = ((c << 1) | (c >> (h - 1))) & mask;
        j += 1;
        pending = false;
        if s != c {
            return Some((s, j, false));
        }
        c = s;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdb_topology::{DeBruijn2, ShuffleExchange};

    fn collect_db(place: &[u32], h: u32, s: u32, t: u32) -> Vec<u32> {
        let mask = (1u32 << h) - 1;
        let mut out = vec![apply_place(place, s)];
        let (mut phys, mut pos, mut rem) = (apply_place(place, s), s, rem_init(h, t));
        while let Some((p, np, nr)) = next_hop(place, mask, phys, pos, rem) {
            out.push(p);
            phys = p;
            pos = np;
            rem = nr;
        }
        out
    }

    #[test]
    fn generator_matches_materialized_routes_on_healthy_b2h() {
        for h in 1..=6u32 {
            let db = DeBruijn2::new(h as usize);
            let n = db.node_count();
            for s in 0..n {
                for t in 0..n {
                    let mut want = Vec::new();
                    db.route_into(s, t, &mut want);
                    // route_into returns the logical node sequence with
                    // self-steps dropped; under the identity placement that
                    // is exactly the physical path.
                    let want: Vec<u32> = want.iter().map(|&x| x as u32).collect();
                    let got = collect_db(&[], h, s as u32, t as u32);
                    assert_eq!(got, want, "h={h} s={s} t={t}");
                }
            }
        }
    }

    #[test]
    fn hops_left_counts_the_remaining_route() {
        let h = 5u32;
        for s in 0..32u32 {
            for t in 0..32u32 {
                let path = collect_db(&[], h, s, t);
                assert_eq!(
                    hops_left(&[], 31, s, s, rem_init(h, t)),
                    (path.len() - 1) as u32
                );
            }
        }
    }

    #[test]
    fn exhausts_in_place_matches_the_register_walk_exhaustively() {
        // Every (cur, rem) pair — including states no route reaches — must
        // agree with the walk the closed form replaces.
        for h in 1..=6u32 {
            let mask = (1u32 << h) - 1;
            for cur in 0..=mask {
                for left in 0..=h {
                    for bits in 0..(1u32 << left) {
                        let rem = (1 << left) | bits;
                        assert_eq!(
                            exhausts_in_place(cur, mask, rem),
                            next_hop(&[], mask, cur, cur, rem).is_none(),
                            "h={h} cur={cur} rem={rem:#b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dateline_crossing_is_the_top_bit_on_identity_shift_steps() {
        // On B(2,h) the only label descents a shift step can produce are the
        // wraps of the shift cycles: next = (2·cur + b) mod 2^h < cur iff
        // cur's top bit is set (self-loops excluded — the generators skip
        // them). Check every (cur, b) exhaustively at several radices.
        for h in 1..=8u32 {
            let mask = (1u32 << h) - 1;
            for cur in 0..=mask {
                for b in 0..2u32 {
                    let next = ((cur << 1) | b) & mask;
                    if next == cur {
                        continue; // shift-invariant self-loop, never a hop
                    }
                    let top_bit_set = cur >> (h - 1) == 1;
                    assert_eq!(
                        dateline_crossing(cur, next),
                        top_bit_set,
                        "h={h} cur={cur:#b} next={next:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn se_generator_matches_route_exhaustively_at_small_h() {
        for h in 1..=5u32 {
            let se = ShuffleExchange::new(h as usize);
            let n = se.node_count();
            for s in 0..n {
                for t in 0..n {
                    let want = se.route(s, t);
                    let mut got = vec![s as u32];
                    let (mut cur, mut round, mut pending) = (s as u32, 1, false);
                    while let Some((nx, nj, np)) = se_next_hop(h, t as u32, cur, round, pending) {
                        got.push(nx);
                        cur = nx;
                        round = nj;
                        pending = np;
                    }
                    let want: Vec<u32> = want.iter().map(|&x| x as u32).collect();
                    assert_eq!(got, want, "h={h} s={s} t={t}");
                }
            }
        }
    }
}
