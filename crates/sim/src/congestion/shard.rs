//! The sharded congestion engine: [`ShardedSim`] partitions the machine's
//! nodes into contiguous label ranges (the de Bruijn prefix cut, see
//! [`super::boundary`]), runs one wake-list core per shard, and exchanges
//! boundary flits and credit returns at cycle barriers. Its
//! [`CongestionReport`] is byte-identical to [`super::CongestionSim`]'s for
//! any shard count and thread count — enforced by the differential suite
//! and the CI shard-determinism job.
//!
//! Why equivalence holds: every resource a packet contends for in a cycle —
//! its node's output port, its outgoing link's claim stamp, that link's
//! per-VC downstream credits — is a function of the packet's *current*
//! node, so it is owned by exactly one shard and arbitration never races.
//! Per-shard examination in ascending packet id equals the global id order
//! restricted to each shard, and winners are decided per-resource, so
//! splitting the scan changes nothing. Credit returns already take effect
//! at least one cycle late in the single-table engine (`packet_flits`
//! cycles under wormhole — the timed credit FIFO), which makes barrier
//! shipping invisible: a credit generated at cycle `c` is due at
//! `c + packet_flits`, and the barrier delivers it to its owner before the
//! phase of cycle `c + 1 <= c + packet_flits`. A migrating packet is
//! examined again only on the following cycle, exactly like a mover in the
//! single engine; its VC index rides along in the [`Flit`].
//!
//! The sharded engine only carries implicit (O(1)) route state per packet —
//! materialized segments appear only as re-route spills — and does not
//! support `reset`, recovery re-targeting, or adaptive loads; use
//! [`super::CongestionSim`] for those.

use super::boundary::{shard_floor, shard_of, BoundaryBatch, Flit};
use super::engine::{
    edge_slot_in, implicit_entry_in, pk, pk_node, pk_slot, pk_terminal, CongestionConfig,
    CongestionEngine, CongestionReport, EngineKind, FaultResponse, FlowControl, LinkGate,
    RouteSource, Switching, DELIVERS, IMPLICIT_ACTIVE, NEVER, NONE_ID, NO_LOGICAL, NO_SLOT,
};
use super::implicit_route;
use crate::machine::{PhysicalMachine, PortModel};
use crate::metrics::LatencySummary;
use ftdb_core::LinkFaultSet;
use ftdb_graph::traversal::Searcher;
use ftdb_graph::{Embedding, NodeId};
use ftdb_topology::DeBruijn2;

/// Resolution code: packet dropped while in the network.
const RES_DROPPED: u8 = 0;
/// Resolution code: packet delivered while in the network.
const RES_DELIVERED: u8 = 1;
/// Resolution code: dropped at injection (source died first) — never
/// entered the network, so the driver must not decrement `live`.
const RES_DROPPED_AT_INJECT: u8 = 2;
/// Resolution code: delivered at injection (born on its target).
const RES_DELIVERED_AT_INJECT: u8 = 3;

/// Read-only cycle context shared by every shard core (and, in threaded
/// runs, by every worker thread).
struct ShardCtx<'a> {
    machine: &'a PhysicalMachine,
    /// First global CSR slot of each shard; length `shards + 1`.
    slot_start: &'a [u32],
    inject_at: &'a [u32],
    logical_target: &'a [u32],
    imp_place: &'a [u32],
    imp_mask: u32,
    n: usize,
    shards: usize,
    single_port: bool,
    park: bool,
    fault_response: FaultResponse,
}

/// One shard's share of the engine state. Link-gate state (`links`, the
/// credit FIFO marks, blocked queues) is indexed by *local* gate id
/// (`global_gidx - slot_lo * vcs`, one gate per (link slot, VC) exactly
/// like the single engine); packet arrays span the full id space so global
/// packet ids index directly (a packet is *hosted* by the shard owning its
/// current node — `cursor != NEVER` exactly there).
struct ShardCore {
    node_lo: usize,
    node_hi: usize,
    slot_lo: usize,
    slot_hi: usize,
    flow_depth: u32,
    /// Virtual channels per link; 1 for the legacy flow-control modes.
    vcs: usize,
    /// Flits per packet (link/credit hold time); 1 outside wormhole.
    packet_flits: u32,
    /// Whether per-VC metrics (`vc`, `blocked_since`) are live.
    track_vc: bool,
    // --- local link state (local gate ids: (slot - slot_lo) * vcs + vc) --
    links: Vec<LinkGate>,
    /// Timed credit returns `(due_cycle, local_gidx, count)`, due-sorted;
    /// mirrors the single engine's FIFO (barrier-shipped returns land with
    /// the same due cycle they would have had locally).
    credit_fifo: Vec<(u32, u32, u32)>,
    credit_fifo_pos: usize,
    /// Per-gate coalescing cursor into `credit_fifo` (entry index + 1).
    credit_mark: Vec<u32>,
    blocked_head: Vec<u32>,
    blocked_tail: Vec<u32>,
    /// Timed claim expiries `(due_cycle, local_slot)`; on expiry every VC
    /// queue head of the slot that can admit a flit is woken.
    served_fifo: Vec<(u32, u32)>,
    served_fifo_pos: usize,
    // --- local node state ------------------------------------------------
    node_claim: Vec<u32>,
    // --- dynamic faults (full copies: hazard checks need remote deads) ---
    dead: Vec<bool>,
    dead_list: Vec<u32>,
    schedule: Vec<(u32, u32)>,
    schedule_pos: usize,
    /// `(cycle, global CSR slot)` directed-link kills; every core carries
    /// the full schedule (the hazard check needs remote dead links), but a
    /// kill only wakes the gates of *locally owned* slots.
    link_schedule: Vec<(u32, u32)>,
    link_schedule_pos: usize,
    /// Dead directed CSR slots, over the full global slot universe.
    dead_link: Vec<bool>,
    dead_link_list: Vec<u32>,
    // --- packet state (full id space; valid while hosted here) -----------
    entry: Vec<u64>,
    imp_pos: Vec<u32>,
    imp_rem: Vec<u32>,
    /// `NEVER` = resolved or hosted elsewhere, [`IMPLICIT_ACTIVE`] = riding
    /// the digit-shift generator, else an index into the local `arena`.
    cursor: Vec<u32>,
    /// Local-arena end of a materialized (re-routed/migrated) segment.
    seg_end: Vec<u32>,
    /// *Global* gate id (`slot * vcs + vc`) of the buffer the packet
    /// occupies (may belong to another shard after a migration; credits
    /// route home at the barrier).
    occupied_slot: Vec<u32>,
    /// Current virtual channel per hosted packet (0 outside VC mode).
    vc: Vec<u8>,
    /// First-failure cycle per hosted blocked packet (`NEVER` = clear);
    /// only maintained when `track_vc`.
    blocked_since: Vec<u32>,
    blocked_next: Vec<u32>,
    in_network: Vec<bool>,
    queued_now: Vec<u64>,
    queued_next: Vec<u64>,
    /// Local path arena for re-route spills and migrated-in segments.
    arena: Vec<u64>,
    // --- injection (home-shard packets only) ------------------------------
    pending_inject: Vec<u32>,
    inject_pos: usize,
    // --- per-cycle outputs ------------------------------------------------
    /// `(id, cycle, RES_*)` resolutions this cycle, drained by the driver.
    resolved: Vec<(u32, u32, u8)>,
    /// Outbound flits per destination shard.
    out_flits: Vec<Vec<Flit>>,
    /// Outbound credit returns (global slot ids) per destination shard.
    out_credits: Vec<Vec<u32>>,
    moved: u64,
    injected: u64,
    killed: usize,
    /// Per-VC flit totals for this core's links (summed by the driver).
    vc_flits: Vec<u64>,
    /// Per-VC closed head-of-line blocked spans (summed by the driver; the
    /// report adds the still-open spans of hosted packets).
    vc_hol_blocked_cycles: Vec<u64>,
    // --- re-route scratch -------------------------------------------------
    searcher: Searcher,
    reroute_path: Vec<NodeId>,
}

impl ShardCore {
    #[allow(clippy::too_many_arguments)]
    fn new(
        node_lo: usize,
        node_hi: usize,
        slot_lo: usize,
        slot_hi: usize,
        n: usize,
        total_slots: usize,
        shards: usize,
        flow_depth: u32,
        vcs: usize,
        packet_flits: u32,
        track_vc: bool,
    ) -> Self {
        let slots = slot_hi - slot_lo;
        let gates = slots * vcs;
        let credit_len = if flow_depth > 0 { gates } else { 0 };
        ShardCore {
            node_lo,
            node_hi,
            slot_lo,
            slot_hi,
            flow_depth,
            vcs,
            packet_flits,
            track_vc,
            links: vec![
                LinkGate {
                    claim: NEVER,
                    credits: flow_depth,
                };
                gates
            ],
            credit_fifo: Vec::with_capacity(credit_len * packet_flits as usize),
            credit_fifo_pos: 0,
            credit_mark: vec![0; credit_len],
            blocked_head: vec![NONE_ID; gates],
            blocked_tail: vec![NONE_ID; gates],
            served_fifo: Vec::with_capacity((slots * packet_flits as usize).min(1 << 16)),
            served_fifo_pos: 0,
            node_claim: vec![NEVER; node_hi - node_lo],
            dead: vec![false; n],
            dead_list: Vec::new(),
            schedule: Vec::new(),
            schedule_pos: 0,
            link_schedule: Vec::new(),
            link_schedule_pos: 0,
            dead_link: vec![false; total_slots],
            dead_link_list: Vec::new(),
            entry: Vec::new(),
            imp_pos: Vec::new(),
            imp_rem: Vec::new(),
            cursor: Vec::new(),
            seg_end: Vec::new(),
            occupied_slot: Vec::new(),
            vc: Vec::new(),
            blocked_since: Vec::new(),
            blocked_next: Vec::new(),
            in_network: Vec::new(),
            queued_now: Vec::new(),
            queued_next: Vec::new(),
            arena: Vec::new(),
            pending_inject: Vec::new(),
            inject_pos: 0,
            resolved: Vec::new(),
            out_flits: vec![Vec::new(); shards],
            out_credits: vec![Vec::new(); shards],
            moved: 0,
            injected: 0,
            killed: 0,
            vc_flits: vec![0; if track_vc { vcs } else { 0 }],
            vc_hol_blocked_cycles: vec![0; if track_vc { vcs } else { 0 }],
            searcher: Searcher::default(),
            reroute_path: Vec::new(),
        }
    }

    /// Appends default (not-hosted) per-packet state for a new packet id.
    fn push_packet_defaults(&mut self, id: usize) {
        self.entry.push(pk(0, NO_SLOT));
        self.imp_pos.push(0);
        self.imp_rem.push(1);
        self.cursor.push(NEVER);
        self.seg_end.push(0);
        self.occupied_slot.push(NO_SLOT);
        self.vc.push(0);
        self.blocked_since.push(NEVER);
        self.blocked_next.push(NONE_ID);
        self.in_network.push(false);
        let words = (id >> 6) + 1;
        if self.queued_now.len() < words {
            self.queued_now.resize(words, 0);
            self.queued_next.resize(words, 0);
        }
    }

    fn is_alive(&self, ctx: &ShardCtx<'_>, node: NodeId) -> bool {
        ctx.machine.is_healthy(node) && !self.dead[node]
    }

    #[inline]
    fn queue_now(&mut self, id: usize) {
        self.queued_now[id >> 6] |= 1u64 << (id & 63);
    }

    /// Parks `id` on local slot `ls`'s blocked queue, sorted by id (= age);
    /// mirrors the single-table engine exactly.
    fn park_on_slot(&mut self, id: usize, ls: usize) {
        let id32 = id as u32;
        let head = self.blocked_head[ls];
        if head == NONE_ID {
            self.blocked_head[ls] = id32;
            self.blocked_tail[ls] = id32;
            self.blocked_next[id] = NONE_ID;
        } else if id32 > self.blocked_tail[ls] {
            let tail = self.blocked_tail[ls] as usize;
            self.blocked_next[tail] = id32;
            self.blocked_tail[ls] = id32;
            self.blocked_next[id] = NONE_ID;
        } else if id32 < head {
            self.blocked_next[id] = head;
            self.blocked_head[ls] = id32;
        } else {
            let mut prev = head as usize;
            while self.blocked_next[prev] != NONE_ID && self.blocked_next[prev] < id32 {
                prev = self.blocked_next[prev] as usize;
            }
            self.blocked_next[id] = self.blocked_next[prev];
            self.blocked_next[prev] = id32;
        }
    }

    fn wake_head(&mut self, ls: usize) {
        let head = self.blocked_head[ls];
        if head != NONE_ID {
            self.queue_now(head as usize);
            self.blocked_head[ls] = self.blocked_next[head as usize];
            if self.blocked_head[ls] == NONE_ID {
                self.blocked_tail[ls] = NONE_ID;
            }
        }
    }

    fn wake_slot(&mut self, ls: usize) {
        let mut cur = self.blocked_head[ls];
        while cur != NONE_ID {
            self.queue_now(cur as usize);
            cur = self.blocked_next[cur as usize];
        }
        self.blocked_head[ls] = NONE_ID;
        self.blocked_tail[ls] = NONE_ID;
    }

    fn wake_all_parked(&mut self) {
        for ls in 0..self.blocked_head.len() {
            if self.blocked_head[ls] != NONE_ID {
                self.wake_slot(ls);
            }
        }
    }

    /// Records that blocked packet `id` became unblocked at `cycle`; the
    /// mirror of the single engine's `note_unblocked`.
    #[inline]
    fn note_unblocked(&mut self, id: usize, cycle: u32) {
        if self.track_vc {
            let since = self.blocked_since[id];
            if since != NEVER {
                self.vc_hol_blocked_cycles[self.vc[id] as usize] += (cycle - since) as u64;
                self.blocked_since[id] = NEVER;
            }
        }
    }

    /// Records that packet `id` failed examination at `cycle`; only the
    /// *first* failure since the last move sticks.
    #[inline]
    fn note_blocked(&mut self, id: usize, cycle: u32) {
        if self.track_vc && self.blocked_since[id] == NEVER {
            self.blocked_since[id] = cycle;
        }
    }

    /// Enqueues a credit return for *local* gate `lg`, due at `due`,
    /// coalescing per (due, gate) through `credit_mark` exactly like the
    /// single engine's `return_credit` — one FIFO entry (and so one wake)
    /// per gate per generating cycle, whatever mix of local and
    /// barrier-shipped returns produced it.
    fn push_credit(&mut self, lg: u32, due: u32) {
        let m = self.credit_mark[lg as usize] as usize;
        if m > 0 && m <= self.credit_fifo.len() {
            let entry = &mut self.credit_fifo[m - 1];
            // A stale mark only coalesces when both the due cycle and the
            // gate match — applied entries are always due in the past.
            if entry.0 == due && entry.1 == lg {
                entry.2 += 1;
                return;
            }
        }
        self.credit_mark[lg as usize] = self.credit_fifo.len() as u32 + 1;
        self.credit_fifo.push((due, lg, 1));
    }

    /// Schedules a credit return for *local* gate `lg` generated at
    /// `cycle`: due `packet_flits` cycles later, when the tail flit clears
    /// the slot.
    fn return_credit_local(&mut self, lg: usize, cycle: u32) {
        self.push_credit(lg as u32, cycle + self.packet_flits);
    }

    /// Returns a credit for *global* gate `g` generated at `cycle`: locally
    /// when this shard owns the gate's link slot, else shipped to the owner
    /// at the cycle barrier (the owner restores the due cycle from the
    /// barrier timing). Slot ownership follows the contiguous CSR cut, so
    /// the owner is the last shard whose slot range starts at or before the
    /// gate's slot (skipping any empty shards in between).
    fn return_credit_global(&mut self, ctx: &ShardCtx<'_>, g: u32, cycle: u32) {
        let gu = g as usize;
        let slot = gu / self.vcs;
        if slot >= self.slot_lo && slot < self.slot_hi {
            self.return_credit_local(gu - self.slot_lo * self.vcs, cycle);
        } else {
            let owner = ctx.slot_start.partition_point(|&x| (x as usize) <= slot) - 1;
            self.out_credits[owner].push(g);
        }
    }

    /// Resolves hosted packet `id` with resolution `code`, releasing its
    /// buffer slot (possibly to another shard) under credit flow control.
    fn resolve(&mut self, ctx: &ShardCtx<'_>, id: usize, cycle: u32, code: u8) {
        self.note_unblocked(id, cycle);
        self.resolved.push((id as u32, cycle, code));
        self.in_network[id] = false;
        self.cursor[id] = NEVER;
        if self.flow_depth > 0 {
            let g = self.occupied_slot[id];
            if g != NO_SLOT {
                self.return_credit_global(ctx, g, cycle);
                self.occupied_slot[id] = NO_SLOT;
            }
        }
    }

    /// Applies the credit returns due by `cycle` (local and barrier-shipped
    /// share the FIFO, with identical due cycles) and wakes each
    /// replenished gate's queue head; the applied prefix is reclaimed
    /// exactly like the single engine's. Per-gate independence makes the
    /// application order irrelevant, so the interleaving of local and
    /// remote returns cannot perturb the outcome.
    fn apply_pending_credits(&mut self, cycle: u32) {
        while self.credit_fifo_pos < self.credit_fifo.len() {
            let (due, lg, count) = self.credit_fifo[self.credit_fifo_pos];
            if due > cycle {
                break;
            }
            self.credit_fifo_pos += 1;
            let lgu = lg as usize;
            self.links[lgu].credits += count;
            debug_assert!(
                self.links[lgu].credits <= self.flow_depth,
                "credit overflow"
            );
            self.wake_head(lgu);
        }
        if self.credit_fifo_pos >= self.credit_fifo.len() {
            self.credit_fifo.clear();
            self.credit_fifo_pos = 0;
        } else if self.credit_fifo_pos >= 64 && self.credit_fifo_pos * 2 >= self.credit_fifo.len() {
            self.credit_fifo.drain(..self.credit_fifo_pos);
            self.credit_fifo_pos = 0;
        }
    }

    /// Wakes the served-slot VC queue heads whose link claims expire by
    /// `cycle`; the mirror of the single engine's `apply_due_serves`.
    fn apply_due_serves(&mut self, cycle: u32) {
        while self.served_fifo_pos < self.served_fifo.len() {
            let (due, ls) = self.served_fifo[self.served_fifo_pos];
            if due > cycle {
                break;
            }
            self.served_fifo_pos += 1;
            let base = ls as usize * self.vcs;
            for lg in base..base + self.vcs {
                if self.blocked_head[lg] != NONE_ID
                    && (self.flow_depth == 0 || self.links[lg].credits > 0)
                {
                    self.wake_head(lg);
                }
            }
        }
        if self.served_fifo_pos >= self.served_fifo.len() {
            self.served_fifo.clear();
            self.served_fifo_pos = 0;
        } else if self.served_fifo_pos >= 64 && self.served_fifo_pos * 2 >= self.served_fifo.len() {
            self.served_fifo.drain(..self.served_fifo_pos);
            self.served_fifo_pos = 0;
        }
    }

    /// Whether timed credit returns or claim expiries are still in flight
    /// on this core — the per-core share of the single engine's
    /// `credits_pending() || serves_pending()` quiescence veto.
    fn fifos_drained(&self) -> bool {
        self.credit_fifo_pos >= self.credit_fifo.len()
            && self.served_fifo_pos >= self.served_fifo.len()
    }

    /// Injects due home packets; mirrors the single engine's
    /// `inject_due_packets` with resolutions routed through the driver.
    fn inject_due(&mut self, ctx: &ShardCtx<'_>, cycle: u32) {
        while self.inject_pos < self.pending_inject.len() {
            let id = self.pending_inject[self.inject_pos] as usize;
            if ctx.inject_at[id] > cycle {
                break;
            }
            self.inject_pos += 1;
            let source = pk_node(self.entry[id]);
            if !self.is_alive(ctx, source) {
                self.cursor[id] = NEVER;
                self.resolved
                    .push((id as u32, cycle, RES_DROPPED_AT_INJECT));
            } else if pk_terminal(self.entry[id]) {
                self.cursor[id] = NEVER;
                self.resolved
                    .push((id as u32, cycle, RES_DELIVERED_AT_INJECT));
            } else {
                self.queue_now(id);
                self.in_network[id] = true;
                self.injected += 1;
            }
        }
    }

    /// Applies due schedule entries (every core holds the full node and
    /// link schedules, so `killed` agrees across shards), drops packets
    /// hosted on dead nodes, and wakes every parked packet — mirroring
    /// `fire_due_faults`. Directed-link kills are marked globally but wake
    /// only the gates of locally-owned dead slots: parked packets live on
    /// the shard owning their next-hop slot, so the per-link wake stays a
    /// local event with no barrier traffic.
    fn fire_due_faults(&mut self, ctx: &ShardCtx<'_>, cycle: u32) {
        while self.schedule_pos < self.schedule.len() && self.schedule[self.schedule_pos].0 <= cycle
        {
            let (_, node) = self.schedule[self.schedule_pos];
            self.schedule_pos += 1;
            if !self.dead[node as usize] {
                self.dead[node as usize] = true;
                self.dead_list.push(node);
                self.killed += 1;
            }
        }
        if self.killed > 0 {
            for id in 0..self.in_network.len() {
                if self.in_network[id] && self.dead[pk_node(self.entry[id])] {
                    self.resolve(ctx, id, cycle, RES_DROPPED);
                }
            }
            self.wake_all_parked();
        }
        let first_new_link = self.dead_link_list.len();
        while self.link_schedule_pos < self.link_schedule.len()
            && self.link_schedule[self.link_schedule_pos].0 <= cycle
        {
            let (_, slot) = self.link_schedule[self.link_schedule_pos];
            self.link_schedule_pos += 1;
            if !self.dead_link[slot as usize] {
                self.dead_link[slot as usize] = true;
                self.dead_link_list.push(slot);
                self.killed += 1;
            }
        }
        for i in first_new_link..self.dead_link_list.len() {
            let slot = self.dead_link_list[i] as usize;
            if slot >= self.slot_lo && slot < self.slot_hi {
                let base = (slot - self.slot_lo) * self.vcs;
                for lg in base..base + self.vcs {
                    if self.blocked_head[lg] != NONE_ID {
                        self.wake_slot(lg);
                    }
                }
            }
        }
    }

    /// The physical node hosted packet `id`'s route ends on.
    fn route_target(&self, ctx: &ShardCtx<'_>, id: usize) -> NodeId {
        if self.cursor[id] == IMPLICIT_ACTIVE {
            implicit_route::apply_place(ctx.imp_place, ctx.logical_target[id]) as usize
        } else {
            pk_node(self.arena[self.seg_end[id] as usize - 1])
        }
    }

    /// Fills packed hop slots of `arena[from..to]`, like the single
    /// engine's `pack_hop_slots` over its path arena.
    fn pack_hop_slots(&mut self, ctx: &ShardCtx<'_>, from: usize, to: usize) {
        for i in from..to.saturating_sub(1) {
            let u = pk_node(self.arena[i]);
            let v = pk_node(self.arena[i + 1]) as u32;
            let slot = edge_slot_in(ctx.machine, u, v)
                // analyzer: allow(expect) -- the BFS route was computed against this CSR, so a missing slot is a search bug; aborting beats simulating a phantom link
                .expect("re-routes only traverse physical links");
            let delivers = if i + 2 == to { DELIVERS } else { 0 };
            self.arena[i] = pk(u as u32, slot as u32) | delivers;
        }
        if to > from {
            let last = pk_node(self.arena[to - 1]) as u32;
            self.arena[to - 1] = pk(last, NO_SLOT);
        }
    }

    /// Replaces hosted packet `id`'s remaining route with a BFS path from
    /// its current node to `target`, spilled into the local arena. Returns
    /// false (packet untouched) when no healthy path exists.
    fn reroute_packet(&mut self, ctx: &ShardCtx<'_>, id: usize, target: NodeId) -> bool {
        let here = pk_node(self.entry[id]);
        let machine = ctx.machine;
        let dead = &self.dead;
        let dead_link = &self.dead_link;
        let found = self.searcher.shortest_path_avoiding_into(
            machine.graph(),
            here,
            target,
            |v| machine.is_healthy(v) && !dead[v],
            |slot| !dead_link[slot],
            &mut self.reroute_path,
        );
        if !found {
            return false;
        }
        let start = self.arena.len() as u32;
        self.arena
            .extend(self.reroute_path.iter().map(|&v| v as u64));
        let end = self.arena.len();
        self.pack_hop_slots(ctx, start as usize, end);
        self.cursor[id] = start;
        self.seg_end[id] = end as u32;
        self.entry[id] = self.arena[start as usize];
        true
    }

    /// Advances hosted packet `id` past the hop it just won — an O(1)
    /// shift-register step for implicit packets, an arena-cursor bump for
    /// materialized ones. Never called on a delivering hop.
    fn advance_route(&mut self, ctx: &ShardCtx<'_>, id: usize, crossed_slot: usize) {
        let next_node = ctx.machine.graph().csr().1[crossed_slot];
        let at = self.cursor[id];
        if at == IMPLICIT_ACTIVE {
            let (pos, rem) = (self.imp_pos[id], self.imp_rem[id]);
            let (p2, pos2, rem2) =
                implicit_route::next_hop(ctx.imp_place, ctx.imp_mask, next_node, pos, rem)
                    // analyzer: allow(expect) -- the crossed entry lacked DELIVERS, so the register provably holds another hop
                    .expect("a non-delivering hop always has a successor");
            let slot = edge_slot_in(ctx.machine, next_node as usize, p2)
                // analyzer: allow(expect) -- the loader validated every shift edge of this route against this CSR
                .expect("implicit routes only traverse physical links");
            let delivers =
                implicit_route::route_ends_at(ctx.imp_place, ctx.imp_mask, p2, pos2, rem2);
            self.entry[id] = pk(next_node, slot as u32) | if delivers { DELIVERS } else { 0 };
            self.imp_pos[id] = pos2;
            self.imp_rem[id] = rem2;
        } else {
            let next = at + 1;
            self.cursor[id] = next;
            self.entry[id] = self.arena[next as usize];
        }
    }

    /// Ships hosted packet `id` — whose current node `now` belongs to
    /// another shard — to its new host at the cycle barrier. Its route
    /// state travels in the flit; its occupied buffer slot stays recorded
    /// (globally) and drains back to this shard when the packet next moves.
    fn emigrate(&mut self, ctx: &ShardCtx<'_>, id: usize, now: usize) {
        let dest = shard_of(now, ctx.n, ctx.shards);
        let path = if self.cursor[id] == IMPLICIT_ACTIVE {
            Vec::new()
        } else {
            self.arena[self.cursor[id] as usize..self.seg_end[id] as usize].to_vec()
        };
        // A mover's blocked span was closed by `note_unblocked` on the move
        // that triggered this migration, so no HoL state needs to travel.
        debug_assert!(
            self.blocked_since[id] == NEVER,
            "blocked span crossed a barrier"
        );
        self.out_flits[dest].push(Flit {
            id: id as u32,
            entry: self.entry[id],
            pos: self.imp_pos[id],
            rem: self.imp_rem[id],
            occupied_slot: self.occupied_slot[id],
            vc: self.vc[id],
            path,
        });
        self.in_network[id] = false;
        self.cursor[id] = NEVER;
        self.occupied_slot[id] = NO_SLOT;
    }

    /// Adopts barrier-shipped state at the start of cycle `now`: credit
    /// returns into the timed FIFO (due `now + packet_flits - 1`, i.e. the
    /// same `generating_cycle + packet_flits` a local return would carry)
    /// and in-migrating flits into the hosted table, queued for this
    /// cycle's examination — the same timing a mover has in the
    /// single-table engine.
    fn apply_inbound(&mut self, flits: &[Flit], credits: &[u32], now: u32) {
        let due = now + self.packet_flits - 1;
        for &g in credits {
            let gu = g as usize;
            let slot = gu / self.vcs;
            debug_assert!(
                slot >= self.slot_lo && slot < self.slot_hi,
                "foreign credit"
            );
            self.push_credit((gu - self.slot_lo * self.vcs) as u32, due);
        }
        for flit in flits {
            let id = flit.id as usize;
            self.entry[id] = flit.entry;
            self.imp_pos[id] = flit.pos;
            self.imp_rem[id] = flit.rem;
            self.occupied_slot[id] = flit.occupied_slot;
            self.vc[id] = flit.vc;
            if flit.path.is_empty() {
                self.cursor[id] = IMPLICIT_ACTIVE;
            } else {
                let start = self.arena.len() as u32;
                self.arena.extend_from_slice(&flit.path);
                self.cursor[id] = start;
                self.seg_end[id] = start + flit.path.len() as u32;
            }
            self.in_network[id] = true;
            self.queue_now(id);
        }
    }

    /// Collects this cycle's outbound batches (one per destination shard
    /// with traffic), leaving the buffers empty for the next cycle.
    fn take_batches(&mut self, src: u32) -> Vec<BoundaryBatch> {
        let mut batches = Vec::new();
        for dst in 0..self.out_flits.len() {
            if self.out_flits[dst].is_empty() && self.out_credits[dst].is_empty() {
                continue;
            }
            batches.push(BoundaryBatch {
                src,
                dst: dst as u32,
                flits: std::mem::take(&mut self.out_flits[dst]),
                credits: std::mem::take(&mut self.out_credits[dst]),
            });
        }
        batches
    }

    /// One shard's share of a cycle, phase-for-phase identical to the
    /// single-table engine's `step`: apply due credits, wake due served
    /// slots, inject due packets, fire due faults, then examine queued
    /// packets in ascending id order.
    fn phase(&mut self, ctx: &ShardCtx<'_>, cycle: u32) {
        self.moved = 0;
        self.injected = 0;
        self.killed = 0;
        self.apply_pending_credits(cycle);
        self.apply_due_serves(cycle);
        self.inject_due(ctx, cycle);
        self.fire_due_faults(ctx, cycle);
        self.exam(ctx, cycle);
    }

    /// The examination pass (the single engine's `step` body) over this
    /// shard's queued packets.
    fn exam(&mut self, ctx: &ShardCtx<'_>, stamp: u32) {
        let credit_based = self.flow_depth > 0;
        let vcs = self.vcs;
        let pf = self.packet_flits;
        let track_vc = self.track_vc;
        let hazard = !self.dead_list.is_empty() || !self.dead_link_list.is_empty();
        for wi in 0..self.queued_now.len() {
            let mut word = self.queued_now[wi];
            if word == 0 {
                continue;
            }
            self.queued_now[wi] = 0;
            let base = wi << 6;
            while word != 0 {
                let id = base + word.trailing_zeros() as usize;
                word &= word - 1;
                if self.cursor[id] == NEVER {
                    continue;
                }
                let entry = self.entry[id];
                let slot = pk_slot(entry) as usize;
                debug_assert!(slot >= self.slot_lo && slot < self.slot_hi, "foreign slot");
                if hazard {
                    let next = ctx.machine.graph().csr().1[slot] as usize;
                    if self.dead[next] || self.dead_link[slot] {
                        match ctx.fault_response {
                            FaultResponse::Drop => {
                                self.resolve(ctx, id, stamp, RES_DROPPED);
                                continue;
                            }
                            FaultResponse::RerouteAdaptive => {
                                let target = self.route_target(ctx, id);
                                if !self.is_alive(ctx, target)
                                    || !self.reroute_packet(ctx, id, target)
                                {
                                    self.resolve(ctx, id, stamp, RES_DROPPED);
                                    continue;
                                }
                                if self.cursor[id] + 1 == self.seg_end[id] {
                                    self.resolve(ctx, id, stamp, RES_DELIVERED);
                                    continue;
                                }
                                self.queued_next[wi] |= 1u64 << (id & 63);
                                continue;
                            }
                        }
                    }
                }
                let here = pk_node(entry);
                let ls = slot - self.slot_lo;
                let vc = self.vc[id] as usize;
                let lg = ls * vcs + vc;
                // The physical link claim lives at the slot's VC-0 gate and
                // holds for `packet_flits` cycles, exactly like the single
                // engine (`claim != stamp` for single-flit packets).
                let link_claim = self.links[ls * vcs].claim;
                let link_free = link_claim == NEVER || stamp - link_claim >= pf;
                let port_claim = self.node_claim[here - self.node_lo];
                let port_free = !ctx.single_port || port_claim == NEVER || stamp - port_claim >= pf;
                let credit_free = !credit_based || self.links[lg].credits > 0;
                if port_free && credit_free && link_free {
                    self.links[ls * vcs].claim = stamp;
                    if ctx.single_port {
                        self.node_claim[here - self.node_lo] = stamp;
                    }
                    if credit_based {
                        self.links[lg].credits -= 1;
                        let prev = self.occupied_slot[id];
                        if prev != NO_SLOT {
                            self.return_credit_global(ctx, prev, stamp);
                        }
                        self.occupied_slot[id] = (slot * vcs + vc) as u32;
                    }
                    if ctx.park || pf > 1 {
                        self.served_fifo.push((stamp + pf, ls as u32));
                    }
                    self.moved += 1;
                    if track_vc {
                        self.vc_flits[vc] += pf as u64;
                        self.note_unblocked(id, stamp);
                    }
                    if entry & DELIVERS != 0 {
                        self.resolve(ctx, id, stamp, RES_DELIVERED);
                    } else {
                        if track_vc {
                            // Dateline rule, identical to the single engine:
                            // a label-descending hop bumps the VC (capped).
                            let next = ctx.machine.graph().csr().1[slot] as usize;
                            if vc + 1 < vcs
                                && implicit_route::dateline_crossing(here as u32, next as u32)
                            {
                                self.vc[id] = (vc + 1) as u8;
                            }
                        }
                        self.advance_route(ctx, id, slot);
                        let now = pk_node(self.entry[id]);
                        if now >= self.node_lo && now < self.node_hi {
                            self.queued_next[wi] |= 1u64 << (id & 63);
                        } else {
                            self.emigrate(ctx, id, now);
                        }
                    }
                } else if ctx.park
                    && (!credit_free || (link_claim == stamp && self.blocked_head[lg] != NONE_ID))
                {
                    self.note_blocked(id, stamp);
                    self.park_on_slot(id, lg);
                } else {
                    self.note_blocked(id, stamp);
                    self.queued_next[wi] |= 1u64 << (id & 63);
                }
            }
        }
        std::mem::swap(&mut self.queued_now, &mut self.queued_next);
    }

    fn injects_done(&self) -> bool {
        self.inject_pos >= self.pending_inject.len()
    }
}

/// A command from the driver to a persistent worker thread.
enum WorkerCmd {
    /// Apply last cycle's inbound traffic, run one cycle phase, report.
    Cycle {
        cycle: u32,
        flits: Vec<Flit>,
        credits: Vec<u32>,
    },
    /// Apply inbound traffic without running a cycle (the exit flush, so
    /// the cores hold a consistent post-barrier state when the run stops).
    Apply {
        now: u32,
        flits: Vec<Flit>,
        credits: Vec<u32>,
    },
    /// Join.
    Stop,
}

/// One worker's cycle result. `None` on the result channel means the worker
/// panicked (the payload re-raises through the scope join).
struct WorkerOut {
    shard: u32,
    moved: u64,
    injected: u64,
    killed: usize,
    resolved: Vec<(u32, u32, u8)>,
    batches: Vec<BoundaryBatch>,
    pending_empty: bool,
    injects_done: bool,
    schedule_done: bool,
}

/// The sharded wake-list congestion engine. See the module docs for the
/// partition and the equivalence argument; see [`super::CongestionSim`] for
/// the cycle model. `shards = 1, threads = 1` degenerates to the single
/// engine (modulo layout); reports are byte-identical in every
/// configuration.
pub struct ShardedSim {
    machine: PhysicalMachine,
    config: CongestionConfig,
    /// Flits per packet (1 outside wormhole switching); the driver's
    /// flit accounting multiplies packet-moves by this.
    packet_flits: u32,
    shards: usize,
    threads: usize,
    /// First global CSR slot per shard (length `shards + 1`).
    slot_start: Vec<u32>,
    cores: Vec<ShardCore>,
    // --- global packet table (driver-owned) -------------------------------
    inject_at: Vec<u32>,
    logical_target: Vec<u32>,
    delivered_at: Vec<u32>,
    dropped_at: Vec<u32>,
    latencies: Vec<u32>,
    // --- implicit context -------------------------------------------------
    imp_mask: u32,
    imp_place: Vec<u32>,
    imp_ctx: bool,
    // --- run state --------------------------------------------------------
    delivered: u64,
    dropped: u64,
    live: u64,
    total_flits: u64,
    cycle: u32,
    deadlocked: bool,
    open_loop_sources: u32,
    /// Latest injection cycle queued by a timed load, for the cross-load
    /// append assert (mirrors the single engine's check).
    last_queued_inject: Option<u32>,
}

impl ShardedSim {
    /// Creates a sharded engine over `machine` with `shards` contiguous
    /// node partitions, run by one worker thread per shard when
    /// `threads > 1` (and serially, still shard-by-shard, otherwise).
    ///
    /// # Panics
    /// Panics when `shards == 0` or when `config` asks for materialized
    /// routes — the sharded engine carries O(1) implicit route state only;
    /// use [`super::CongestionSim`] for materialized loads.
    pub fn new(
        machine: PhysicalMachine,
        config: CongestionConfig,
        shards: usize,
        threads: usize,
    ) -> Self {
        assert!(shards >= 1, "at least one shard");
        assert!(
            config.route_source == RouteSource::Implicit,
            "the sharded engine carries O(1) implicit route state only; \
             use CongestionSim for materialized loads"
        );
        let (flow_depth, vcs, packet_flits) = match config.flow_control {
            FlowControl::Infinite => (0, 1, 1),
            FlowControl::CreditBased { buffer_depth } => {
                assert!(
                    buffer_depth >= 1,
                    "credit flow control needs at least one slot"
                );
                (buffer_depth, 1, 1)
            }
            FlowControl::VirtualChannel {
                vcs,
                buffer_depth,
                switching,
            } => {
                assert!(
                    vcs >= 1,
                    "virtual-channel flow control needs at least one VC"
                );
                assert!(
                    buffer_depth >= 1,
                    "credit flow control needs at least one slot"
                );
                let packet_flits = match switching {
                    Switching::StoreAndForward => 1,
                    Switching::Wormhole { packet_flits } => {
                        assert!(packet_flits >= 1, "wormhole packets need at least one flit");
                        packet_flits
                    }
                };
                (buffer_depth, vcs, packet_flits)
            }
        };
        let track_vc = matches!(config.flow_control, FlowControl::VirtualChannel { .. });
        let n = machine.node_count();
        let (offsets, _) = machine.graph().csr();
        let mut slot_start = Vec::with_capacity(shards + 1);
        for s in 0..=shards {
            slot_start.push(offsets[shard_floor(s, n, shards)]);
        }
        let cores = (0..shards)
            .map(|s| {
                ShardCore::new(
                    shard_floor(s, n, shards),
                    shard_floor(s + 1, n, shards),
                    slot_start[s] as usize,
                    slot_start[s + 1] as usize,
                    n,
                    slot_start[shards] as usize,
                    shards,
                    flow_depth,
                    vcs as usize,
                    packet_flits,
                    track_vc,
                )
            })
            .collect();
        ShardedSim {
            config,
            packet_flits,
            shards,
            threads: threads.max(1),
            slot_start,
            cores,
            inject_at: Vec::new(),
            logical_target: Vec::new(),
            delivered_at: Vec::new(),
            dropped_at: Vec::new(),
            latencies: Vec::new(),
            imp_mask: 0,
            imp_place: Vec::new(),
            imp_ctx: false,
            delivered: 0,
            dropped: 0,
            live: 0,
            total_flits: 0,
            cycle: 0,
            deadlocked: false,
            open_loop_sources: 0,
            last_queued_inject: None,
            machine,
        }
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &PhysicalMachine {
        &self.machine
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u32 {
        self.cycle
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Worker threads a threaded run uses (one per shard when `> 1`).
    pub fn threads(&self) -> usize {
        if self.threads > 1 && self.shards > 1 {
            self.shards
        } else {
            1
        }
    }

    /// `(injected, delivered, dropped, in_flight)` so far.
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        (
            self.inject_at.len() as u64,
            self.delivered,
            self.dropped,
            self.live,
        )
    }

    /// Captures (or checks) the implicit-routing context. Unlike the single
    /// engine there is no materialized fallback, so a second load through a
    /// different placement or radix is a hard error.
    fn capture_implicit_ctx(&mut self, db: &DeBruijn2, placement: &Embedding) {
        let mask = (db.node_count() - 1) as u32;
        let identity = placement
            .as_slice()
            .iter()
            .enumerate()
            .all(|(i, &v)| i == v);
        if self.imp_ctx {
            let same_place = if identity {
                self.imp_place.is_empty()
            } else {
                self.imp_place.len() == placement.len()
                    && placement
                        .as_slice()
                        .iter()
                        .zip(self.imp_place.iter())
                        .all(|(&a, &b)| a as u32 == b)
            };
            assert!(
                self.imp_mask == mask && same_place,
                "the sharded engine cannot mix implicit contexts; route every \
                 load through one placement (CongestionSim materializes instead)"
            );
            return;
        }
        self.imp_ctx = true;
        self.imp_mask = mask;
        self.imp_place.clear();
        if !identity {
            self.imp_place
                .extend(placement.as_slice().iter().map(|&v| v as u32));
        }
    }

    /// Appends one implicit packet, mirroring the single engine's
    /// `push_packet_implicit` + `push_outcome` semantics with the hosted
    /// state placed in the home shard only.
    fn push_implicit(&mut self, s: u32, t: u32, inject_cycle: u32) {
        let id = self.inject_at.len();
        let (entry, pos, rem) =
            implicit_entry_in(&self.machine, &self.imp_place, self.imp_mask, s, t);
        let zero_hop = pk_terminal(entry);
        for core in &mut self.cores {
            core.push_packet_defaults(id);
        }
        self.inject_at.push(inject_cycle);
        self.logical_target.push(t);
        let home = shard_of(pk_node(entry), self.machine.node_count(), self.shards);
        let core = &mut self.cores[home];
        core.entry[id] = entry;
        core.imp_pos[id] = pos;
        core.imp_rem[id] = rem;
        if zero_hop && inject_cycle == 0 {
            self.delivered_at.push(0);
            self.dropped_at.push(NEVER);
            self.delivered += 1;
            self.latencies.push(0);
        } else {
            self.delivered_at.push(NEVER);
            self.dropped_at.push(NEVER);
            core.cursor[id] = IMPLICIT_ACTIVE;
            if inject_cycle == 0 {
                core.queue_now(id);
                core.in_network[id] = true;
                self.live += 1;
            } else {
                core.pending_inject.push(id as u32);
                self.last_queued_inject = Some(inject_cycle);
            }
        }
    }

    /// Records a packet that could not be routed at load time: injected and
    /// immediately dropped, like the single engine's `push_dead_packet`.
    fn push_dead(&mut self, inject_cycle: u32) {
        let id = self.inject_at.len();
        for core in &mut self.cores {
            core.push_packet_defaults(id);
        }
        self.inject_at.push(inject_cycle);
        self.logical_target.push(NO_LOGICAL);
        self.delivered_at.push(NEVER);
        self.dropped_at.push(inject_cycle);
        self.dropped += 1;
    }

    /// Loads a workload of logical pairs routed with the oblivious de
    /// Bruijn scheme through `placement`; see
    /// [`super::CongestionSim::load_oblivious`]. Every packet is implicit.
    pub fn load_oblivious(
        &mut self,
        db: &DeBruijn2,
        placement: &Embedding,
        pairs: &[(NodeId, NodeId)],
    ) {
        self.capture_implicit_ctx(db, placement);
        let mut path = Vec::with_capacity(db.h() + 1);
        for &(s, t) in pairs {
            match crate::routing::route_logical_debruijn_into(
                db,
                placement,
                &self.machine,
                s,
                t,
                &mut path,
            ) {
                Ok(_) => self.push_implicit(s as u32, t as u32, 0),
                Err(_) => self.push_dead(0),
            }
        }
    }

    /// Loads an open-loop schedule of `(inject_cycle, source, target)`
    /// logical triples; see
    /// [`super::CongestionSim::load_oblivious_timed`].
    pub fn load_oblivious_timed(
        &mut self,
        db: &DeBruijn2,
        placement: &Embedding,
        injections: &[(u32, NodeId, NodeId)],
    ) {
        assert!(
            injections
                .iter()
                .zip(injections.iter().skip(1))
                .all(|(a, b)| a.0 <= b.0),
            "injection schedule must be sorted by cycle"
        );
        if let (Some(last), Some(&(first, _, _))) = (self.last_queued_inject, injections.first()) {
            assert!(
                first >= last,
                "appended injection schedule starts at cycle {first}, before the \
                 already-queued cycle {last}"
            );
        }
        self.capture_implicit_ctx(db, placement);
        let mut path = Vec::with_capacity(db.h() + 1);
        self.open_loop_sources = db.node_count() as u32;
        for &(cycle, s, t) in injections {
            match crate::routing::route_logical_debruijn_into(
                db,
                placement,
                &self.machine,
                s,
                t,
                &mut path,
            ) {
                Ok(_) => self.push_implicit(s as u32, t as u32, cycle),
                Err(_) => self.push_dead(cycle),
            }
        }
    }

    /// Schedules processor `node` to die at the start of `cycle`. Every
    /// core carries the full schedule (hazard checks need remote deads).
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn schedule_fault(&mut self, cycle: u32, node: NodeId) {
        assert!(node < self.machine.node_count(), "fault node out of range");
        for core in &mut self.cores {
            core.schedule.push((cycle, node as u32));
            core.schedule.sort_unstable();
        }
    }

    /// Schedules the directed link `from -> to` to die at the start of
    /// `cycle` — the sharded counterpart of
    /// [`super::CongestionSim::schedule_link_fault`]. Every core carries the
    /// full link schedule (the hazard check needs remote dead links); the
    /// kill's wake event stays local to the slot's owning shard.
    ///
    /// # Panics
    /// Panics when the directed link does not exist in the machine's graph.
    pub fn schedule_link_fault(&mut self, cycle: u32, from: NodeId, to: NodeId) {
        let slot = edge_slot_in(&self.machine, from, to as u32)
            // analyzer: allow(expect) -- schedule-time validation of caller input, mirroring schedule_fault's range assert; never on the cycle loop
            .expect("scheduled link fault names a missing directed link");
        self.schedule_link_fault_slot(cycle, slot);
    }

    /// Schedules the directed CSR slot `slot` to die at the start of
    /// `cycle`; see [`ShardedSim::schedule_link_fault`].
    ///
    /// # Panics
    /// Panics when `slot` is not a valid CSR slot of the machine's graph.
    pub fn schedule_link_fault_slot(&mut self, cycle: u32, slot: usize) {
        let total = self.slot_start[self.shards] as usize;
        assert!(slot < total, "fault slot out of range");
        for core in &mut self.cores {
            core.link_schedule.push((cycle, slot as u32));
            core.link_schedule.sort_unstable();
        }
    }

    /// Schedules every directed slot in `faults` to die at the start of
    /// `cycle`; the bulk form of [`ShardedSim::schedule_link_fault_slot`].
    ///
    /// # Panics
    /// Panics when `faults` was built over a different graph (slot universe
    /// mismatch).
    pub fn schedule_link_faults(&mut self, cycle: u32, faults: &LinkFaultSet) {
        let total = self.slot_start[self.shards] as usize;
        assert_eq!(
            faults.universe(),
            total,
            "link fault set universe must match the machine's slot count"
        );
        for core in &mut self.cores {
            for slot in faults.iter() {
                core.link_schedule.push((cycle, slot as u32));
            }
            core.link_schedule.sort_unstable();
        }
    }

    /// Applies one drained resolution to the global packet table. Takes the
    /// table's fields individually (not `&mut self`) so the run loops can
    /// call it while `self.cores` is mutably borrowed.
    #[allow(clippy::too_many_arguments)]
    fn apply_resolution(
        inject_at: &[u32],
        delivered_at: &mut [u32],
        dropped_at: &mut [u32],
        latencies: &mut Vec<u32>,
        delivered: &mut u64,
        dropped: &mut u64,
        live: &mut u64,
        (id, cyc, code): (u32, u32, u8),
    ) {
        let id = id as usize;
        if code & 1 == 1 {
            delivered_at[id] = cyc;
            *delivered += 1;
            latencies.push(cyc - inject_at[id]);
        } else {
            dropped_at[id] = cyc;
            *dropped += 1;
        }
        if code < RES_DROPPED_AT_INJECT {
            *live -= 1;
        }
    }

    /// Steps until cycle `horizon` (capped by `max_cycles`), the workload
    /// drains, or a hard deadlock is proven — the sharded counterpart of
    /// [`super::CongestionSim::run_until`].
    pub fn run_until(&mut self, horizon: u32) {
        let horizon = horizon.min(self.config.max_cycles);
        if self.threads > 1 && self.shards > 1 {
            self.run_threaded(horizon);
        } else {
            self.run_serial(horizon);
        }
    }

    fn run_serial(&mut self, horizon: u32) {
        while (self.live > 0 || self.cores.iter().any(|c| !c.injects_done()))
            && self.cycle < horizon
        {
            let ctx = ShardCtx {
                machine: &self.machine,
                slot_start: &self.slot_start,
                inject_at: &self.inject_at,
                logical_target: &self.logical_target,
                imp_place: &self.imp_place,
                imp_mask: self.imp_mask,
                n: self.machine.node_count(),
                shards: self.shards,
                single_port: self.machine.port_model() == PortModel::SinglePort,
                park: self.config.engine == EngineKind::WakeList,
                fault_response: self.config.fault_response,
            };
            let cycle = self.cycle;
            let mut moved = 0u64;
            let mut injected = 0u64;
            for core in &mut self.cores {
                core.phase(&ctx, cycle);
                moved += core.moved;
                injected += core.injected;
            }
            let killed = self.cores.first().map_or(0, |c| c.killed);
            // Injections enter the network before any resolution of the
            // same cycle (the engine's in_flight += 1 at injection).
            self.live += injected;
            let mut batches: Vec<BoundaryBatch> = Vec::new();
            for (s, core) in self.cores.iter_mut().enumerate() {
                batches.append(&mut core.take_batches(s as u32));
            }
            batches.sort_by_key(|b| (b.dst, b.src));
            for b in &batches {
                // Inbound traffic lands at the start of the *next* cycle.
                self.cores[b.dst as usize].apply_inbound(&b.flits, &b.credits, cycle + 1);
            }
            {
                let ShardedSim {
                    cores,
                    inject_at,
                    delivered_at,
                    dropped_at,
                    latencies,
                    delivered,
                    dropped,
                    live,
                    ..
                } = self;
                for core in cores {
                    for res in core.resolved.drain(..) {
                        Self::apply_resolution(
                            inject_at,
                            delivered_at,
                            dropped_at,
                            latencies,
                            delivered,
                            dropped,
                            live,
                            res,
                        );
                    }
                }
            }
            self.total_flits += moved * self.packet_flits as u64;
            self.cycle += 1;
            if moved == 0
                && injected == 0
                && killed == 0
                && self.live > 0
                && self.cores.iter().all(|c| c.fifos_drained())
                && self.cores.iter().all(|c| c.injects_done())
                && self.cores.iter().all(|c| {
                    c.schedule_pos >= c.schedule.len()
                        && c.link_schedule_pos >= c.link_schedule.len()
                })
            {
                self.deadlocked = true;
                break;
            }
        }
    }

    fn run_threaded(&mut self, horizon: u32) {
        let shards = self.shards;
        let pf = self.packet_flits as u64;
        let mut any_pending = self.cores.iter().any(|c| !c.injects_done());
        let ShardedSim {
            machine,
            config,
            slot_start,
            cores,
            inject_at,
            logical_target,
            delivered_at,
            dropped_at,
            latencies,
            imp_mask,
            imp_place,
            delivered,
            dropped,
            live,
            total_flits,
            cycle,
            deadlocked,
            ..
        } = self;
        let ctx = ShardCtx {
            machine,
            slot_start,
            inject_at,
            logical_target,
            imp_place,
            imp_mask: *imp_mask,
            n: machine.node_count(),
            shards,
            single_port: machine.port_model() == PortModel::SinglePort,
            park: config.engine == EngineKind::WakeList,
            fault_response: config.fault_response,
        };
        let scope_result = crossbeam::scope(|s| {
            let (res_tx, res_rx) = crossbeam::channel::unbounded::<Option<WorkerOut>>();
            let mut cmd_txs = Vec::with_capacity(shards);
            for (shard, core) in cores.iter_mut().enumerate() {
                let (cmd_tx, cmd_rx) = crossbeam::channel::unbounded::<WorkerCmd>();
                cmd_txs.push(cmd_tx);
                let res_tx = res_tx.clone();
                let ctx = &ctx;
                s.spawn(move |_| worker_loop(shard as u32, core, ctx, &cmd_rx, &res_tx));
            }
            drop(res_tx);
            let mut inbound_flits: Vec<Vec<Flit>> = (0..shards).map(|_| Vec::new()).collect();
            let mut inbound_credits: Vec<Vec<u32>> = (0..shards).map(|_| Vec::new()).collect();
            'run: while (*live > 0 || any_pending) && *cycle < horizon {
                for (shard, tx) in cmd_txs.iter().enumerate() {
                    let cmd = WorkerCmd::Cycle {
                        cycle: *cycle,
                        flits: std::mem::take(&mut inbound_flits[shard]),
                        credits: std::mem::take(&mut inbound_credits[shard]),
                    };
                    if tx.send(cmd).is_err() {
                        break 'run;
                    }
                }
                let mut outs: Vec<WorkerOut> = Vec::with_capacity(shards);
                for _ in 0..shards {
                    match res_rx.recv() {
                        Ok(Some(o)) => outs.push(o),
                        Ok(None) | Err(_) => break 'run,
                    }
                }
                outs.sort_by_key(|o| o.shard);
                let moved: u64 = outs.iter().map(|o| o.moved).sum();
                let injected: u64 = outs.iter().map(|o| o.injected).sum();
                let killed = outs.first().map_or(0, |o| o.killed);
                any_pending = outs.iter().any(|o| !o.injects_done);
                let all_pending_empty = outs.iter().all(|o| o.pending_empty);
                let all_schedule_done = outs.iter().all(|o| o.schedule_done);
                *live += injected;
                for o in &mut outs {
                    for res in o.resolved.drain(..) {
                        Self::apply_resolution(
                            inject_at,
                            delivered_at,
                            dropped_at,
                            latencies,
                            delivered,
                            dropped,
                            live,
                            res,
                        );
                    }
                }
                let mut batches: Vec<BoundaryBatch> =
                    outs.iter_mut().flat_map(|o| o.batches.drain(..)).collect();
                batches.sort_by_key(|b| (b.dst, b.src));
                let mut credits_shipped = false;
                for b in batches {
                    if !b.credits.is_empty() {
                        credits_shipped = true;
                    }
                    inbound_flits[b.dst as usize].extend(b.flits);
                    inbound_credits[b.dst as usize].extend(b.credits);
                }
                *total_flits += moved * pf;
                *cycle += 1;
                // The workers report their timed-FIFO state *before* the
                // barrier; pre-barrier-drained plus nothing shipped is
                // exactly the single engine's post-return emptiness check
                // (and shipped flits imply `moved > 0` anyway).
                if moved == 0
                    && injected == 0
                    && killed == 0
                    && *live > 0
                    && all_pending_empty
                    && !credits_shipped
                    && !any_pending
                    && all_schedule_done
                {
                    *deadlocked = true;
                    break 'run;
                }
            }
            // Flush the last barrier's traffic so the cores are left in a
            // consistent post-barrier state, then join the workers.
            for (shard, tx) in cmd_txs.iter().enumerate() {
                let flits = std::mem::take(&mut inbound_flits[shard]);
                let credits = std::mem::take(&mut inbound_credits[shard]);
                if !flits.is_empty() || !credits.is_empty() {
                    let _ = tx.send(WorkerCmd::Apply {
                        now: *cycle,
                        flits,
                        credits,
                    });
                }
                let _ = tx.send(WorkerCmd::Stop);
            }
        });
        if let Err(payload) = scope_result {
            std::panic::resume_unwind(payload);
        }
    }

    /// Steps until the workload drains, `max_cycles` is hit, or the network
    /// hard-deadlocks.
    pub fn run_to_quiescence(&mut self) {
        self.run_until(self.config.max_cycles);
    }

    /// Runs to quiescence and returns the final report.
    pub fn run(&mut self) -> CongestionReport {
        self.run_to_quiescence();
        self.report()
    }

    /// The report for the run so far — byte-identical to the single-table
    /// engine's for the same workload, any shard/thread count.
    pub fn report(&mut self) -> CongestionReport {
        // Resolution order varies with the shard cut; the multiset of
        // latencies does not. A full sort (idempotent) restores the
        // canonical form the summary is computed from.
        self.latencies.sort_unstable();
        // Per-VC counters are element-wise sums over the cores (u64 adds
        // commute, so the shard cut is invisible); still-open blocked spans
        // are folded in from each packet's unique hosting core, exactly
        // like the single engine's report-time scan.
        let first = self.cores.first();
        let track_vc = first.is_some_and(|c| c.track_vc);
        let vcs = first.map_or(0, |c| if c.track_vc { c.vcs } else { 0 });
        let mut vc_flits = vec![0u64; vcs];
        let mut vc_hol = vec![0u64; vcs];
        if track_vc {
            for core in &self.cores {
                for (acc, v) in vc_flits.iter_mut().zip(&core.vc_flits) {
                    *acc += v;
                }
                for (acc, v) in vc_hol.iter_mut().zip(&core.vc_hol_blocked_cycles) {
                    *acc += v;
                }
                for id in 0..core.in_network.len() {
                    if core.in_network[id] && core.blocked_since[id] != NEVER {
                        vc_hol[core.vc[id] as usize] +=
                            (self.cycle - core.blocked_since[id]) as u64;
                    }
                }
            }
        }
        CongestionReport {
            cycles: self.cycle,
            injected: self.inject_at.len() as u64,
            delivered: self.delivered,
            dropped: self.dropped,
            total_flits: self.total_flits,
            completed: self.live == 0 && self.cores.iter().all(|c| c.injects_done()),
            deadlocked: self.deadlocked,
            vc_flits,
            vc_hol_blocked_cycles: vc_hol,
            latency: LatencySummary::from_sorted(&self.latencies),
        }
    }

    /// Per-packet outcome; see [`super::CongestionSim::packet_outcome`].
    pub fn packet_outcome(&self, id: usize) -> (u32, Option<u32>, Option<u32>) {
        let lift = |c: u32| if c == NEVER { None } else { Some(c) };
        (
            self.inject_at[id],
            lift(self.delivered_at[id]),
            lift(self.dropped_at[id]),
        )
    }

    /// Bytes of heap capacity devoted to per-packet route state across all
    /// cores — the sharded counterpart of
    /// [`super::CongestionSim::route_state_bytes`]. O(packets) for the
    /// implicit workloads this engine carries (re-route spills add the
    /// materialized exception).
    pub fn route_state_bytes(&self) -> usize {
        use std::mem::size_of;
        let per_core: usize = self
            .cores
            .iter()
            .map(|c| {
                (c.arena.capacity() + c.entry.capacity()) * size_of::<u64>()
                    + (c.imp_pos.capacity()
                        + c.imp_rem.capacity()
                        + c.cursor.capacity()
                        + c.seg_end.capacity())
                        * size_of::<u32>()
            })
            .sum();
        per_core + (self.logical_target.capacity() + self.imp_place.capacity()) * size_of::<u32>()
    }
}

/// The persistent per-shard worker: applies the previous barrier's inbound
/// traffic, runs the cycle phase, and reports. A panic anywhere in the
/// cycle work sends `None` first so the driver never blocks on a dead
/// worker, then re-raises (the scope join carries it to the caller).
fn worker_loop(
    shard: u32,
    core: &mut ShardCore,
    ctx: &ShardCtx<'_>,
    cmd_rx: &crossbeam::channel::Receiver<WorkerCmd>,
    res_tx: &crossbeam::channel::Sender<Option<WorkerOut>>,
) {
    while let Ok(cmd) = cmd_rx.recv() {
        match cmd {
            WorkerCmd::Cycle {
                cycle,
                flits,
                credits,
            } => {
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    core.apply_inbound(&flits, &credits, cycle);
                    core.phase(ctx, cycle);
                    WorkerOut {
                        shard,
                        moved: core.moved,
                        injected: core.injected,
                        killed: core.killed,
                        resolved: std::mem::take(&mut core.resolved),
                        batches: core.take_batches(shard),
                        pending_empty: core.fifos_drained(),
                        injects_done: core.injects_done(),
                        schedule_done: core.schedule_pos >= core.schedule.len()
                            && core.link_schedule_pos >= core.link_schedule.len(),
                    }
                }));
                match out {
                    Ok(o) => {
                        if res_tx.send(Some(o)).is_err() {
                            return;
                        }
                    }
                    Err(payload) => {
                        let _ = res_tx.send(None);
                        std::panic::resume_unwind(payload);
                    }
                }
            }
            WorkerCmd::Apply {
                now,
                flits,
                credits,
            } => core.apply_inbound(&flits, &credits, now),
            WorkerCmd::Stop => return,
        }
    }
}

impl CongestionEngine for ShardedSim {
    fn run_until(&mut self, horizon: u32) {
        ShardedSim::run_until(self, horizon);
    }
    fn counts(&self) -> (u64, u64, u64, u64) {
        ShardedSim::counts(self)
    }
    fn packet_outcome(&self, id: usize) -> (u32, Option<u32>, Option<u32>) {
        ShardedSim::packet_outcome(self, id)
    }
    fn cycle(&self) -> u32 {
        ShardedSim::cycle(self)
    }
    fn deadlocked(&self) -> bool {
        self.deadlocked
    }
    fn open_loop_sources(&self) -> u32 {
        self.open_loop_sources
    }
    fn node_count(&self) -> usize {
        self.machine.node_count()
    }
    fn report(&mut self) -> CongestionReport {
        ShardedSim::report(self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::measure_open_loop;
    use super::*;
    use crate::workload;
    use rand::SeedableRng;

    fn machine_for(h: usize, port: PortModel) -> (DeBruijn2, PhysicalMachine) {
        let db = DeBruijn2::new(h);
        let machine = PhysicalMachine::new(db.graph().clone(), port);
        (db, machine)
    }

    fn single_report(
        db: &DeBruijn2,
        port: PortModel,
        config: CongestionConfig,
        pairs: &[(NodeId, NodeId)],
    ) -> CongestionReport {
        let machine = PhysicalMachine::new(db.graph().clone(), port);
        let mut sim = super::super::CongestionSim::new(machine, config);
        sim.load_oblivious(db, &Embedding::identity(db.node_count()), pairs);
        sim.run()
    }

    fn sharded_report(
        db: &DeBruijn2,
        port: PortModel,
        config: CongestionConfig,
        pairs: &[(NodeId, NodeId)],
        shards: usize,
        threads: usize,
    ) -> CongestionReport {
        let machine = PhysicalMachine::new(db.graph().clone(), port);
        let mut sim = ShardedSim::new(machine, config, shards, threads);
        sim.load_oblivious(db, &Embedding::identity(db.node_count()), pairs);
        sim.run()
    }

    /// Field-by-field equality over every public `CongestionReport` field,
    /// naming the diverging field. The destructuring is exhaustive (no
    /// `..`), so a new report field fails to compile here until it is
    /// compared — and `ftdb-analyzer`'s `diff-coverage` audit holds this
    /// file, as the sharded determinism suite, to the same bar as the
    /// engine-vs-rescan suite.
    fn assert_report_fields_equal(sharded: &CongestionReport, single: &CongestionReport) {
        let CongestionReport {
            cycles,
            injected,
            delivered,
            dropped,
            total_flits,
            completed,
            deadlocked,
            vc_flits,
            vc_hol_blocked_cycles,
            latency,
        } = sharded;
        assert_eq!(*cycles, single.cycles, "cycles diverged");
        assert_eq!(*injected, single.injected, "injected diverged");
        assert_eq!(*delivered, single.delivered, "delivered diverged");
        assert_eq!(*dropped, single.dropped, "dropped diverged");
        assert_eq!(*total_flits, single.total_flits, "total_flits diverged");
        assert_eq!(*completed, single.completed, "completed diverged");
        assert_eq!(*deadlocked, single.deadlocked, "deadlocked diverged");
        assert_eq!(*vc_flits, single.vc_flits, "vc_flits diverged");
        assert_eq!(
            *vc_hol_blocked_cycles, single.vc_hol_blocked_cycles,
            "vc_hol_blocked_cycles diverged"
        );
        assert_eq!(*latency, single.latency, "latency summary diverged");
    }

    #[test]
    fn matches_single_engine_on_healthy_permutation() {
        let (db, _) = machine_for(5, PortModel::MultiPort);
        let n = db.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let pairs = workload::permutation_pairs(n, &mut rng);
        for port in [PortModel::MultiPort, PortModel::SinglePort] {
            let config = CongestionConfig::default();
            let want = single_report(&db, port, config, &pairs);
            assert_eq!(want.delivered, n as u64);
            for shards in 1..=4 {
                let got = sharded_report(&db, port, config, &pairs, shards, 1);
                assert_report_fields_equal(&got, &want);
                assert_eq!(got, want, "shards={shards} port={port:?}");
            }
        }
    }

    #[test]
    fn matches_single_engine_under_credit_flow_hotspot() {
        let (db, _) = machine_for(4, PortModel::SinglePort);
        let n = db.node_count();
        let pairs = workload::all_to_one(n, 3);
        for depth in [1u32, 2] {
            let config = CongestionConfig {
                flow_control: FlowControl::CreditBased {
                    buffer_depth: depth,
                },
                ..CongestionConfig::default()
            };
            let want = single_report(&db, PortModel::SinglePort, config, &pairs);
            for shards in [1usize, 2, 3, 4] {
                let got = sharded_report(&db, PortModel::SinglePort, config, &pairs, shards, 1);
                assert_report_fields_equal(&got, &want);
                assert_eq!(got, want, "depth={depth} shards={shards}");
            }
        }
    }

    #[test]
    fn matches_single_engine_under_vc_wormhole_hotspot() {
        // Virtual channels and wormhole trains exercise every new barrier
        // path at once: per-(link, vc) credit returns shipped across shards,
        // timed credit dues surviving the barrier, VC labels riding Flit
        // migrations, and multi-cycle link holds spanning a cycle boundary.
        // The vcs = 2 / depth = 1 rows drain a workload that deadlocks the
        // vcs = 1 rows, so both the draining and the wedged fixed points are
        // checked for byte-identical reports.
        let (db, _) = machine_for(4, PortModel::SinglePort);
        let n = db.node_count();
        let pairs = workload::all_to_one(n, 3);
        for vcs in [1u32, 2, 4] {
            for switching in [
                Switching::StoreAndForward,
                Switching::Wormhole { packet_flits: 3 },
            ] {
                let config = CongestionConfig {
                    flow_control: FlowControl::VirtualChannel {
                        vcs,
                        buffer_depth: 1,
                        switching,
                    },
                    ..CongestionConfig::default()
                };
                let want = single_report(&db, PortModel::SinglePort, config, &pairs);
                for shards in [1usize, 2, 3, 4] {
                    let got = sharded_report(&db, PortModel::SinglePort, config, &pairs, shards, 1);
                    assert_report_fields_equal(&got, &want);
                    assert_eq!(got, want, "vcs={vcs} {switching:?} shards={shards}");
                }
                let got = sharded_report(&db, PortModel::SinglePort, config, &pairs, 4, 2);
                assert_report_fields_equal(&got, &want);
                assert_eq!(got, want, "vcs={vcs} {switching:?} threaded");
            }
        }
    }

    #[test]
    fn matches_single_engine_with_mid_run_faults_both_responses() {
        let (db, _) = machine_for(5, PortModel::SinglePort);
        let n = db.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let pairs = workload::uniform_pairs(n, 2 * n, &mut rng);
        for response in [FaultResponse::Drop, FaultResponse::RerouteAdaptive] {
            let config = CongestionConfig {
                fault_response: response,
                ..CongestionConfig::default()
            };
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::SinglePort);
            let mut want = super::super::CongestionSim::new(machine, config);
            want.load_oblivious(&db, &Embedding::identity(n), &pairs);
            want.schedule_fault(2, 3);
            want.schedule_fault(4, 17);
            let want = want.run();
            for shards in [2usize, 3] {
                let machine = PhysicalMachine::new(db.graph().clone(), PortModel::SinglePort);
                let mut got = ShardedSim::new(machine, config, shards, 1);
                got.load_oblivious(&db, &Embedding::identity(n), &pairs);
                got.schedule_fault(2, 3);
                got.schedule_fault(4, 17);
                let got = got.run();
                assert_report_fields_equal(&got, &want);
                assert_eq!(got, want, "response={response:?} shards={shards}");
            }
        }
    }

    #[test]
    fn open_loop_report_matches_across_shards_and_threads() {
        let (db, _) = machine_for(5, PortModel::SinglePort);
        let n = db.node_count();
        let spec = crate::workload::OpenLoopSpec {
            offered_load: 0.30,
            process: crate::workload::InjectionProcess::Bernoulli,
            warmup_cycles: 16,
            measure_cycles: 32,
            drain_cycles: 256,
            seed: 9,
        };
        let injections = crate::workload::open_loop_injections(n, &spec);
        let config = CongestionConfig {
            flow_control: FlowControl::CreditBased { buffer_depth: 2 },
            ..CongestionConfig::default()
        };
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::SinglePort);
        let mut sim = super::super::CongestionSim::new(machine, config);
        sim.load_oblivious_timed(&db, &Embedding::identity(n), &injections);
        sim.schedule_fault(20, 5);
        let want = measure_open_loop(&mut sim, &spec);
        for (shards, threads) in [(2usize, 1usize), (3, 1), (2, 2), (3, 3)] {
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::SinglePort);
            let mut sharded = ShardedSim::new(machine, config, shards, threads);
            sharded.load_oblivious_timed(&db, &Embedding::identity(n), &injections);
            sharded.schedule_fault(20, 5);
            let got = measure_open_loop(&mut sharded, &spec);
            assert_eq!(got, want, "shards={shards} threads={threads}");
        }
    }

    #[test]
    fn threaded_run_matches_serial_run() {
        let (db, _) = machine_for(6, PortModel::MultiPort);
        let n = db.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pairs = workload::uniform_pairs(n, 4 * n, &mut rng);
        let config = CongestionConfig {
            flow_control: FlowControl::CreditBased { buffer_depth: 1 },
            ..CongestionConfig::default()
        };
        let serial = sharded_report(&db, PortModel::MultiPort, config, &pairs, 4, 1);
        let threaded = sharded_report(&db, PortModel::MultiPort, config, &pairs, 4, 4);
        assert_report_fields_equal(&threaded, &serial);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn deadlock_is_detected_identically() {
        // A 2-cycle of mutual traffic under depth-1 buffers wedges; both
        // engines must agree on the deadlocked flag and the cycle count.
        let (db, _) = machine_for(3, PortModel::MultiPort);
        let n = db.node_count();
        let mut pairs = Vec::new();
        for s in 0..n {
            pairs.push((s, (s + n / 2) % n));
            pairs.push((s, (s + n / 2 + 1) % n));
            pairs.push(((s + 1) % n, (s + n / 2) % n));
        }
        let config = CongestionConfig {
            flow_control: FlowControl::CreditBased { buffer_depth: 1 },
            ..CongestionConfig::default()
        };
        let want = single_report(&db, PortModel::MultiPort, config, &pairs);
        for shards in [2usize, 4] {
            for threads in [1usize, 2] {
                let got =
                    sharded_report(&db, PortModel::MultiPort, config, &pairs, shards, threads);
                assert_report_fields_equal(&got, &want);
                assert_eq!(got, want, "shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "implicit route state only")]
    fn materialized_loads_are_rejected() {
        let (_, machine) = machine_for(3, PortModel::MultiPort);
        let config = CongestionConfig {
            route_source: RouteSource::Materialized,
            ..CongestionConfig::default()
        };
        let _ = ShardedSim::new(machine, config, 2, 1);
    }

    #[test]
    fn route_state_is_o_packets_not_o_packets_times_h() {
        let (db, machine) = machine_for(10, PortModel::MultiPort);
        let n = db.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let pairs = workload::permutation_pairs(n, &mut rng);
        let mut sim = ShardedSim::new(machine, CongestionConfig::default(), 4, 1);
        sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
        let bytes = sim.route_state_bytes();
        // 4 cores x (8B entry + 16B registers/cursor/seg_end) per packet
        // plus the driver's 4B logical target: comfortably under 192B per
        // packet, independent of h = 10 (a materialized load would add
        // ~8 x 11B of path entries per packet on top).
        assert!(
            bytes < pairs.len() * 192,
            "route state {bytes}B for {} packets",
            pairs.len()
        );
        let report = sim.run();
        assert_eq!(report.delivered, n as u64);
    }
}
