//! The single-table congestion engine: [`CongestionSim`], its loaders,
//! the wake-list cycle loop, recovery and open-loop measurement drivers.
//!
//! See the [module docs](super) for the full model; this file is the
//! reference implementation that [`super::shard::ShardedSim`] must match
//! byte-for-byte.

use super::implicit_route;
use crate::machine::{PhysicalMachine, PortModel, SimError};
use crate::metrics::LatencySummary;
use ftdb_core::{FaultSet, FtDeBruijn2, LinkFaultSet};
use ftdb_graph::traversal::Searcher;
use ftdb_graph::{Embedding, NodeId};
use ftdb_topology::DeBruijn2;

/// Sentinel for "not yet": a cycle stamp that no real cycle reaches.
pub(crate) const NEVER: u32 = u32::MAX;
/// Sentinel for "no logical target recorded" (adaptive loads).
pub(crate) const NO_LOGICAL: u32 = u32::MAX;
/// Sentinel for "occupies no link buffer" (the packet sits in its source's
/// unbounded injection queue). Doubles as the packed hop-slot of a path's
/// final entry, which has no outgoing hop.
pub(crate) const NO_SLOT: u32 = u32::MAX;
/// Sentinel terminating the intrusive blocked-queue lists.
pub(crate) const NONE_ID: u32 = u32::MAX;
/// `cursor` value of a live packet riding the implicit digit-shift
/// generator: its route position lives in `imp_pos`/`imp_rem`, not in the
/// path arena. Distinct from [`NEVER`] (resolved).
pub(crate) const IMPLICIT_ACTIVE: u32 = u32::MAX - 1;
/// `seg_of` value of a packet with no materialized path segment.
pub(crate) const SEG_NONE: u32 = u32::MAX;
/// Flag bit on a packed path entry: the hop leaving this entry lands the
/// packet on its target, so the mover resolves without re-reading the
/// segment bounds on the hot path.
pub(crate) const DELIVERS: u64 = 1 << 63;

/// Packs a route entry: physical node in the low 32 bits, the CSR slot of
/// the hop *leaving* this entry in the high 32 (`NO_SLOT` on a terminal
/// entry). One cache access yields both the node and its outgoing link.
// analyzer: alloc-free
#[inline]
pub(crate) fn pk(node: u32, slot: u32) -> u64 {
    (node as u64) | ((slot as u64) << 32)
}

/// The physical node of a packed route entry.
// analyzer: alloc-free
#[inline]
pub(crate) fn pk_node(entry: u64) -> usize {
    entry as u32 as usize
}

/// The CSR slot of the hop leaving a packed route entry.
// analyzer: alloc-free
#[inline]
pub(crate) fn pk_slot(entry: u64) -> u32 {
    ((entry >> 32) as u32) & !(1 << 31)
}

/// True for a terminal entry: the packet has no outgoing hop (it was loaded
/// already sitting on its target).
// analyzer: alloc-free
#[inline]
pub(crate) fn pk_terminal(entry: u64) -> bool {
    pk_slot(entry) == NO_SLOT & !(1 << 31)
}

/// CSR slot of directed edge `(u, v)` in `machine`'s graph, mirroring
/// `Graph::has_edge`'s scan strategy (rows are sorted; short rows scan
/// linearly). Shared by the single-table and sharded engines; only used at
/// load/re-route time — the cycle loops read the packed hop slots.
pub(crate) fn edge_slot_in(machine: &PhysicalMachine, u: NodeId, v: u32) -> Option<usize> {
    let (offsets, neighbors) = machine.graph().csr();
    let start = offsets[u] as usize;
    let row = &neighbors[start..offsets[u + 1] as usize];
    if row.len() <= 32 {
        row.iter().position(|&x| x == v).map(|p| start + p)
    } else {
        row.binary_search(&v).ok().map(|p| start + p)
    }
}

/// Initial cached entry and shift-register state of an implicit packet from
/// logical `s` to logical `t` under the implicit context `(imp_place,
/// imp_mask)` — O(h). Returns `(entry, pos, rem)`; a terminal entry (see
/// [`pk_terminal`]) means the packet is born on its target. Shared by the
/// single-table and sharded engines.
pub(crate) fn implicit_entry_in(
    machine: &PhysicalMachine,
    imp_place: &[u32],
    imp_mask: u32,
    s: u32,
    t: u32,
) -> (u64, u32, u32) {
    let src_phys = implicit_route::apply_place(imp_place, s);
    let rem0 = implicit_route::rem_init(imp_mask.trailing_ones(), t);
    match implicit_route::next_hop(imp_place, imp_mask, src_phys, s, rem0) {
        None => (pk(src_phys, NO_SLOT), s, 1),
        Some((p1, pos1, rem1)) => {
            let slot = edge_slot_in(machine, src_phys as usize, p1)
                // analyzer: allow(expect) -- the route was validated against this CSR by the loader; a missing shift edge is a loader bug
                .expect("implicit routes only traverse physical links");
            let delivers = implicit_route::route_ends_at(imp_place, imp_mask, p1, pos1, rem1);
            (
                pk(src_phys, slot as u32) | if delivers { DELIVERS } else { 0 },
                pos1,
                rem1,
            )
        }
    }
}

/// Per-directed-link claim stamp and credit counter, interleaved so the
/// examination fast path touches one cache location per link.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LinkGate {
    /// The link is taken for cycle `c` while `claim == c`.
    pub(crate) claim: u32,
    /// Free downstream buffer slots (unused under
    /// [`FlowControl::Infinite`]).
    pub(crate) credits: u32,
}

/// How a packet's flits occupy a link once the head flit wins its claim.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Switching {
    /// One flit per packet (the classic store-and-forward unit used by all
    /// earlier engine revisions): a hop occupies the link for exactly one
    /// cycle and the freed upstream slot's credit returns one cycle later.
    #[default]
    StoreAndForward,
    /// Wormhole / cut-through: a packet is a train of `packet_flits` flits.
    /// The head flit arbitrates exactly like a store-and-forward flit; once
    /// it wins, the body streams behind it, so the link stays busy for
    /// `packet_flits` cycles and the upstream slot's credit returns only
    /// after the tail clears (`packet_flits` cycles after the head moved).
    /// The head may keep advancing while the body streams (cut-through), so
    /// packet latency is counted at *head* arrival.
    Wormhole {
        /// Flits per packet (≥ 1; `1` is exactly store-and-forward).
        packet_flits: u32,
    },
}

/// How link buffers are sized and guarded.
///
/// # Examples
///
/// The depth-1 hot-spot workload that hard-deadlocks under plain
/// credit-based buffers drains once a second, dateline-ordered virtual
/// channel is available on every link:
///
/// ```
/// use ftdb_graph::Embedding;
/// use ftdb_sim::congestion::{CongestionConfig, CongestionSim, FlowControl, Switching};
/// use ftdb_sim::machine::{PhysicalMachine, PortModel};
/// use ftdb_sim::workload;
/// use ftdb_topology::DeBruijn2;
///
/// let db = DeBruijn2::new(5);
/// let n = db.node_count();
/// let config = CongestionConfig {
///     flow_control: FlowControl::VirtualChannel {
///         vcs: 2,
///         buffer_depth: 1,
///         switching: Switching::StoreAndForward,
///     },
///     ..CongestionConfig::default()
/// };
/// let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
/// let mut sim = CongestionSim::new(machine, config);
/// sim.load_oblivious(&db, &Embedding::identity(n), &workload::all_to_one(n, 2));
/// let report = sim.run();
/// assert!(!report.deadlocked);
/// assert_eq!(report.delivered, n as u64);
/// assert_eq!(report.vc_flits.len(), 2); // per-VC flit counters
/// ```
///
/// Under wormhole switching every hop carries `packet_flits` flits, so the
/// flit totals scale with the packet length while delivery stays intact:
///
/// ```
/// use ftdb_graph::Embedding;
/// use ftdb_sim::congestion::{CongestionConfig, CongestionSim, FlowControl, Switching};
/// use ftdb_sim::machine::{PhysicalMachine, PortModel};
/// use ftdb_sim::workload;
/// use ftdb_topology::DeBruijn2;
///
/// let db = DeBruijn2::new(4);
/// let n = db.node_count();
/// let pairs = workload::bit_reversal_pairs(4);
/// let flow = |switching| FlowControl::VirtualChannel { vcs: 2, buffer_depth: 2, switching };
/// let mut totals = Vec::new();
/// for switching in [Switching::StoreAndForward, Switching::Wormhole { packet_flits: 4 }] {
///     let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
///     let mut sim = CongestionSim::new(
///         machine,
///         CongestionConfig { flow_control: flow(switching), ..CongestionConfig::default() },
///     );
///     sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
///     let report = sim.run();
///     assert!(report.completed && !report.deadlocked);
///     totals.push(report.total_flits);
/// }
/// assert_eq!(totals[1], 4 * totals[0]); // 4 flits per packet -> 4x the flits per hop
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowControl {
    /// Unbounded FIFO queues: a flit advances whenever it wins its output
    /// port and link — the PR 3 behaviour, and still the default.
    Infinite,
    /// Bounded per-link input buffers with credit-based flow control: each
    /// directed link starts with `buffer_depth` credits, a flit advancing
    /// over the link consumes one, and the credit returns one cycle after
    /// the occupied downstream slot drains (the packet moves on, is
    /// consumed at its target, or is dropped).
    CreditBased {
        /// Slots in each directed link's downstream input buffer (≥ 1).
        buffer_depth: u32,
    },
    /// `vcs` independent virtual channels per directed link, each with its
    /// own `buffer_depth`-slot input buffer and credit counter, sharing the
    /// physical link bandwidth of one flit per cycle. Packets are assigned
    /// VCs by the dateline rule (start on VC 0, bump on every descent of
    /// the physical label — see `docs/CONGESTION.md` for the
    /// deadlock-freedom proof sketch), which breaks the de Bruijn
    /// shift-cycle credit loops that deadlock [`FlowControl::CreditBased`].
    /// `VirtualChannel { vcs: 1, buffer_depth, switching: StoreAndForward }`
    /// behaves byte-identically to `CreditBased { buffer_depth }` apart
    /// from the extra per-VC report fields.
    VirtualChannel {
        /// Virtual channels per directed link (≥ 1).
        vcs: u32,
        /// Slots in each (link, vc) input buffer (≥ 1).
        buffer_depth: u32,
        /// Store-and-forward single-flit packets or wormhole flit trains.
        switching: Switching,
    },
}

/// Which per-cycle scan discipline the engine runs. Both produce
/// byte-identical reports; they differ only in how much work a cycle costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The event-driven wake-list core (default): a packet blocked on a
    /// full downstream buffer leaves the examination list and parks on
    /// that link slot's blocked queue until a credit returns, so a cycle
    /// costs O(packets that could actually move).
    #[default]
    WakeList,
    /// The naive full rescan retained as the differential-testing
    /// reference: every in-flight packet is examined every cycle.
    NaiveScan,
}

/// What a packet does when its precomputed route runs into a processor that
/// died after the route was computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultResponse {
    /// The packet is dropped at the hop that would enter the dead node.
    Drop,
    /// The packet re-routes in place: a BFS through the surviving machine
    /// from its current position to its (unchanged) physical target. The
    /// re-route happens when the dead node is *encountered*, the way a real
    /// router learns about a downed neighbour.
    RerouteAdaptive,
}

/// How oblivious routes are represented per packet. Reports are
/// byte-identical either way (enforced by the differential suite); the
/// choice only moves memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RouteSource {
    /// O(1) route state per packet (default): a packed current entry plus
    /// the digit-shift register of [`super::implicit_route`]. Adaptive
    /// loads and mid-run re-routes still materialize (their paths are BFS
    /// results, not shift-register walks) into the shared side arena.
    #[default]
    Implicit,
    /// The pre-PR-7 behaviour: every packet's full physical path is
    /// materialized at load, O(h) entries per packet. Retained as the
    /// differential-testing reference and for exotic loads the generator
    /// cannot express (a second oblivious load through a different
    /// placement also falls back here).
    Materialized,
}

/// Knobs for a congestion run.
#[derive(Clone, Copy, Debug)]
pub struct CongestionConfig {
    /// Safety cap on simulated cycles; a run that has not drained by then
    /// reports `completed = false` (it never silently spins).
    pub max_cycles: u32,
    /// Reaction to mid-run faults invalidating precomputed routes.
    pub fault_response: FaultResponse,
    /// Link-buffer sizing: unbounded queues (default) or bounded buffers
    /// with credit-based flow control.
    pub flow_control: FlowControl,
    /// Scan discipline: event-driven wake lists (default) or the retained
    /// naive rescan. Reports are byte-identical either way.
    pub engine: EngineKind,
    /// Route representation for oblivious loads: implicit O(1) shift
    /// registers (default) or materialized O(h) paths. Reports are
    /// byte-identical either way.
    pub route_source: RouteSource,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig {
            max_cycles: 1 << 20,
            fault_response: FaultResponse::Drop,
            flow_control: FlowControl::Infinite,
            engine: EngineKind::WakeList,
            route_source: RouteSource::Implicit,
        }
    }
}

/// Aggregate result of a congestion run.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct CongestionReport {
    /// Cycles simulated until the run drained (or hit the cap).
    pub cycles: u32,
    /// Packets loaded into the engine.
    pub injected: u64,
    /// Packets delivered to their target.
    pub delivered: u64,
    /// Packets dropped (load-time infeasibility or mid-run faults).
    pub dropped: u64,
    /// Total flits moved over links (= delivered physical hops).
    pub total_flits: u64,
    /// Whether every packet resolved before `max_cycles`.
    pub completed: bool,
    /// Whether the run ended in a hard buffer deadlock: live packets remain
    /// but no flit can ever move again. Only possible with bounded buffers;
    /// single-channel credit loops ([`FlowControl::CreditBased`], or
    /// [`FlowControl::VirtualChannel`] with `vcs = 1`) deadlock on the
    /// de Bruijn shift cycles, and the dateline VC ordering with `vcs ≥ 2`
    /// is what breaks them (see `docs/CONGESTION.md`).
    pub deadlocked: bool,
    /// Flits carried per virtual channel over the whole run (a wormhole hop
    /// counts `packet_flits`). Empty unless the run used
    /// [`FlowControl::VirtualChannel`]; length `vcs` otherwise.
    pub vc_flits: Vec<u64>,
    /// Head-of-line blocking: total cycles packets spent blocked (failing
    /// examination, parked or rescanning), summed per the virtual channel
    /// they were travelling on. Still-blocked packets contribute up to the
    /// report cycle, so a deadlocked report shows where the cyclic wait
    /// sits. Empty unless the run used [`FlowControl::VirtualChannel`].
    pub vc_hol_blocked_cycles: Vec<u64>,
    /// Latency distribution over delivered packets, in cycles since
    /// injection (cycle 0).
    pub latency: LatencySummary,
}

impl CongestionReport {
    /// Makespan cycles per delivered packet (the congestion analogue of
    /// ns/packet; 0.0 when nothing was delivered). Mean *latency* is in
    /// [`CongestionReport::latency`].
    pub fn cycles_per_packet(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.cycles as f64 / self.delivered as f64
        }
    }

    /// Mean flits moved per cycle — aggregate network throughput.
    pub fn flits_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_flits as f64 / self.cycles as f64
        }
    }

    /// Fraction of injected packets delivered (1.0 for an empty run).
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }
}

/// The synchronous cycle-level simulator.
///
/// Lifecycle: [`CongestionSim::new`] → `load_*` workload →
/// ([`CongestionSim::schedule_fault`])* → [`CongestionSim::run`] (or
/// [`CongestionSim::step`] in a driver loop) → [`CongestionSim::report`].
/// [`CongestionSim::reset`] rewinds to the post-load state for another run;
/// [`CongestionSim::clear_workload`] discards the workload (keeping the
/// machine and the engine's capacity) so one engine can serve many loads.
#[derive(Clone, Debug)]
pub struct CongestionSim {
    machine: PhysicalMachine,
    config: CongestionConfig,
    // --- materialized route storage (side arena + segment table) --------
    /// Packed path entries: node | hop-slot << 32 (see [`pk`]). Only
    /// materialized route segments live here — adaptive loads, mid-run
    /// re-route spills, and every packet under
    /// [`RouteSource::Materialized`]. Implicit packets never touch it.
    path: Vec<u64>,
    /// Segment table (the "small side table"): `[start, end)` bounds into
    /// `path` per materialized segment, plus the load-time bounds `reset`
    /// restores (re-routes overwrite `start`/`end` with spill positions).
    seg_start: Vec<u32>,
    seg_end: Vec<u32>,
    seg_home_start: Vec<u32>,
    seg_home_end: Vec<u32>,
    /// Per-packet segment index (`SEG_NONE` for implicit packets), so the
    /// per-packet cost of materialized bookkeeping is one `u32`.
    seg_of: Vec<u32>,
    /// Absolute index into `path` of each packet's current node —
    /// [`IMPLICIT_ACTIVE`] while the packet rides the digit-shift
    /// generator, [`NEVER`] once resolved.
    cursor: Vec<u32>,
    // --- implicit route state (O(1) per packet) -------------------------
    /// Cached packed entry of each packet's *current* position: node, the
    /// CSR slot of its next hop, and the `DELIVERS` flag. Valid for every
    /// unresolved packet regardless of route source; the cycle loop reads
    /// only this.
    entry: Vec<u64>,
    /// Logical shift-register position *after* the pending hop (implicit
    /// packets only).
    imp_pos: Vec<u32>,
    /// Remaining target bits after the pending hop, sentinel-encoded (see
    /// [`implicit_route::rem_init`]).
    imp_rem: Vec<u32>,
    /// Logical source per implicit-loaded packet (`NO_LOGICAL` otherwise):
    /// `reset` re-derives the initial entry/register from it in O(h).
    origin: Vec<u32>,
    /// Logical-node mask of the implicit context (`2^h - 1`).
    imp_mask: u32,
    /// Logical→physical map of the implicit context as dense `u32`s; empty
    /// = identity placement (the common healthy case stores nothing).
    imp_place: Vec<u32>,
    /// Whether an implicit context (mask + placement) has been captured; a
    /// later oblivious load through a *different* context falls back to
    /// materialized paths rather than mixing generators.
    imp_ctx: bool,
    /// Logical target per packet (NO_LOGICAL for adaptive loads); lets the
    /// recovery driver re-target packets after a reconfiguration.
    logical_target: Vec<u32>,
    delivered_at: Vec<u32>,
    dropped_at: Vec<u32>,
    /// Injection cycle per packet (0 for the batch `load_*` APIs).
    inject_at: Vec<u32>,
    /// Snapshot of load-time outcomes so `reset` can rewind: packets dead
    /// (or delivered) on arrival keep those stamps across resets.
    resolved_at_load: Vec<u32>,
    /// Packet ids not yet injected, sorted by `inject_at`; `inject_pos`
    /// advances through it as cycles pass.
    pending_inject: Vec<u32>,
    inject_pos: usize,
    /// Logical sources behind the last timed load (0 = none): open-loop
    /// rates are per *logical* source, which on `B^k(2,h)` hosts is fewer
    /// than the physical node count.
    open_loop_sources: u32,
    /// Length of `path` right after loading finished; `reset` truncates
    /// re-route spill segments back to this watermark.
    loaded_path_len: u32,
    /// Segment count right after loading; `reset` truncates re-route spill
    /// segments of implicit packets back to this watermark.
    loaded_seg_len: u32,
    // --- dynamic faults -------------------------------------------------
    /// `(cycle, node)` pairs sorted by cycle; applied before movement.
    schedule: Vec<(u32, u32)>,
    schedule_pos: usize,
    /// Nodes killed by the schedule so far (dense flags + undo list).
    dead: Vec<bool>,
    dead_list: Vec<u32>,
    /// `(cycle, CSR slot)` directed-link kills sorted by cycle; fired with
    /// the node schedule, before any flit moves that cycle.
    link_schedule: Vec<(u32, u32)>,
    link_schedule_pos: usize,
    /// Directed CSR slots killed by the link schedule so far (dense flags +
    /// undo list). A dead slot never admits another flit; packets whose next
    /// hop crosses one are handled per [`FaultResponse`] at examination.
    dead_link: Vec<bool>,
    dead_link_list: Vec<u32>,
    // --- cycle state -----------------------------------------------------
    cycle: u32,
    /// In-flight packets (injected, not yet delivered or dropped).
    in_flight: u64,
    /// Dense in-flight flag per packet: lets the rare whole-network scans
    /// (fault kills, re-targeting) and the lazy queue cleanup skip resolved
    /// ids without compacting every queue they sit in.
    in_network: Vec<bool>,
    /// Bitmap work-queue of packets to examine this cycle (bit per packet
    /// id). Scanning set bits low-to-high *is* oldest-first arbitration
    /// order (ids are assigned in injection order), wakes are O(1) bit
    /// sets, and re-waking an already-queued packet is naturally
    /// idempotent — no sorting, merging or deduplication anywhere.
    queued_now: Vec<u64>,
    /// The bitmap being built for the next cycle (movers and
    /// per-cycle-resource losers); swapped with `queued_now` each step.
    queued_next: Vec<u64>,
    /// Per-(CSR slot, virtual channel) gate, `vcs` entries per slot at
    /// `gidx = slot * vcs + vc`. The physical link's claim stamp lives only
    /// in the slot's *first* gate (`links[slot * vcs].claim` — the VCs share
    /// one flit per cycle of link bandwidth); `credits` is meaningful in
    /// every gate (each VC owns its own downstream buffer). With `vcs = 1`
    /// this degenerates to exactly the historical one-gate-per-slot layout.
    links: Vec<LinkGate>,
    /// Per-node output-port claim stamp (consulted under `SinglePort`).
    node_claim: Vec<u32>,
    // --- credit flow control ----------------------------------------------
    /// Buffer depth per (directed link, VC) buffer (0 = `FlowControl::Infinite`).
    flow_depth: u32,
    /// Virtual channels per directed link (1 unless
    /// [`FlowControl::VirtualChannel`] says otherwise).
    vcs: u32,
    /// Flits per packet: every hop holds its link for this many cycles and
    /// returns the freed upstream credit this many cycles later (1 =
    /// store-and-forward; [`Switching::Wormhole`] sets it higher).
    packet_flits: u32,
    /// Whether per-VC metrics (and the per-packet VC/blocked bookkeeping
    /// feeding them) are live — true only under
    /// [`FlowControl::VirtualChannel`].
    track_vc: bool,
    /// Timed credit-return FIFO: `(due_cycle, gidx, count)` entries, due
    /// cycles nondecreasing (a credit returned during cycle `c` is due at
    /// `c + packet_flits` — "one cycle after the slot drains", where the
    /// slot drains when the tail flit clears it). `credit_fifo_pos` is the
    /// applied prefix; the tail is compacted in place, so the cycle loop
    /// never reallocates once the reserve is warm.
    credit_fifo: Vec<(u32, u32, u32)>,
    credit_fifo_pos: usize,
    /// Per-gidx coalescing cursor into `credit_fifo` (entry index + 1):
    /// several credits for the same gate due the same cycle merge into one
    /// entry, so the FIFO's live length is bounded by the gate count per
    /// due cycle exactly like the historical per-slot pending counters.
    credit_mark: Vec<u32>,
    /// Gate index (`slot * vcs + vc`) of the input buffer each packet
    /// currently occupies (`NO_SLOT` while the packet waits in its source's
    /// injection queue).
    occupied_slot: Vec<u32>,
    /// Head of each gate's blocked queue (packets parked on zero credits or
    /// on a lost link claim; `NONE_ID` = empty), one queue per
    /// (slot, vc) gate. Every packet parked on a gate sits in the *same*
    /// upstream node's buffers and competes for the *same* port, link claim
    /// and credits, so only the oldest can ever move — the queue is kept
    /// sorted by id (= by age) and wake events pop exactly one head instead
    /// of stampeding the whole queue through the examination list. "No free
    /// VC" is therefore just one more parked queue per link slot.
    blocked_head: Vec<u32>,
    /// Tail of each gate's blocked queue: packets park mostly in age order
    /// (injection order), so the common insert is an O(1) tail append.
    blocked_tail: Vec<u32>,
    /// Intrusive next-pointers threading the blocked queues through the
    /// packet table.
    blocked_next: Vec<u32>,
    /// Timed serve FIFO: `(due_cycle, slot)` per flit-crossed link, due when
    /// the link's claim expires (`move cycle + packet_flits`). Each due
    /// slot's VC queue heads are woken at the *start* of the due cycle —
    /// after every park of the claiming cycle has settled into the sorted
    /// queues — so an older packet that re-parks at the head after the
    /// serving move still gets its turn first. Under wormhole the pending
    /// tail doubles as the quiescence witness: an unexpired entry means a
    /// body is still streaming, so the run is not deadlocked yet.
    served_fifo: Vec<(u32, u32)>,
    served_fifo_pos: usize,
    /// Scratch for the credit-conservation checker (per-gate occupancy and
    /// pending credit).
    occupancy_scratch: Vec<u32>,
    pending_scratch: Vec<u32>,
    /// Set when `run_to_quiescence` proves no flit can ever move again.
    deadlocked: bool,
    // --- per-packet VC state ----------------------------------------------
    /// Current virtual channel per packet (dateline rule: injected on VC 0,
    /// bumped — capped at `vcs - 1` — after every hop that descends the
    /// physical label; see [`implicit_route::dateline_crossing`]).
    vc: Vec<u8>,
    /// Cycle each packet first failed examination since it last moved
    /// ([`NEVER`] = not blocked); feeds `vc_hol_blocked_cycles`. Set on the
    /// first failing examination in *both* engines (a packet always gets
    /// examined the cycle after injection or a move), so the totals are
    /// engine-identical even though NaiveScan re-fails every cycle.
    blocked_since: Vec<u32>,
    // --- metrics ----------------------------------------------------------
    /// Flits carried per directed CSR slot over the whole run.
    link_flits: Vec<u64>,
    /// Flits carried per virtual channel (empty unless `track_vc`).
    vc_flits: Vec<u64>,
    /// Blocked cycles accumulated per virtual channel (empty unless
    /// `track_vc`); see [`CongestionReport::vc_hol_blocked_cycles`].
    vc_hol_blocked_cycles: Vec<u64>,
    total_flits: u64,
    delivered: u64,
    dropped: u64,
    /// Latencies of delivered packets, recorded incrementally at delivery;
    /// `lat_sorted` is the length of the already-sorted prefix, so
    /// [`CongestionSim::report`] only sorts what arrived since the last
    /// call and merges (windowed measurement stops paying a full
    /// O(n log n) per window).
    latencies: Vec<u32>,
    lat_sorted: usize,
    lat_scratch: Vec<u32>,
    // --- re-route scratch -------------------------------------------------
    searcher: Searcher,
    reroute_path: Vec<NodeId>,
}

impl CongestionSim {
    /// Creates an engine for the given machine. The machine's static fault
    /// set (if any) is honoured at load time; dynamic faults are layered on
    /// top via [`CongestionSim::schedule_fault`].
    pub fn new(machine: PhysicalMachine, config: CongestionConfig) -> Self {
        let n = machine.node_count();
        let slots = machine.graph().csr().1.len();
        let (flow_depth, vcs, packet_flits) = match config.flow_control {
            FlowControl::Infinite => (0, 1, 1),
            FlowControl::CreditBased { buffer_depth } => {
                assert!(
                    buffer_depth >= 1,
                    "credit flow control needs at least one slot"
                );
                (buffer_depth, 1, 1)
            }
            FlowControl::VirtualChannel {
                vcs,
                buffer_depth,
                switching,
            } => {
                assert!(
                    vcs >= 1,
                    "virtual-channel flow control needs at least one VC"
                );
                assert!(
                    buffer_depth >= 1,
                    "credit flow control needs at least one slot"
                );
                let packet_flits = match switching {
                    Switching::StoreAndForward => 1,
                    Switching::Wormhole { packet_flits } => {
                        assert!(packet_flits >= 1, "wormhole packets need at least one flit");
                        packet_flits
                    }
                };
                (buffer_depth, vcs, packet_flits)
            }
        };
        let track_vc = matches!(config.flow_control, FlowControl::VirtualChannel { .. });
        // One gate per (slot, vc); `vcs = 1` is exactly the historical
        // one-gate-per-slot layout, so the legacy modes pay nothing.
        let gates = slots * vcs as usize;
        // Credit state is only materialised when bounded; `Infinite` pays
        // nothing for the feature beyond the unused half of each LinkGate.
        let credit_len = if flow_depth > 0 { gates } else { 0 };
        CongestionSim {
            config,
            flow_depth,
            vcs,
            packet_flits,
            track_vc,
            // Live (unapplied) credit entries are coalesced per (due, gate)
            // and due cycles span at most `packet_flits` values, but the
            // applied prefix is reclaimed by in-place compaction, so one
            // gate's worth of slack per flit of packet length keeps the
            // steady state allocation-free.
            credit_fifo: Vec::with_capacity(credit_len * packet_flits as usize),
            credit_fifo_pos: 0,
            credit_mark: vec![0; credit_len],
            occupied_slot: Vec::new(),
            blocked_head: vec![NONE_ID; gates],
            blocked_tail: vec![NONE_ID; gates],
            blocked_next: Vec::new(),
            served_fifo: Vec::with_capacity(slots * packet_flits as usize),
            served_fifo_pos: 0,
            occupancy_scratch: vec![0; credit_len],
            pending_scratch: vec![0; credit_len],
            vc: Vec::new(),
            blocked_since: Vec::new(),
            vc_flits: vec![0; if track_vc { vcs as usize } else { 0 }],
            vc_hol_blocked_cycles: vec![0; if track_vc { vcs as usize } else { 0 }],
            deadlocked: false,
            inject_at: Vec::new(),
            pending_inject: Vec::new(),
            inject_pos: 0,
            open_loop_sources: 0,
            path: Vec::new(),
            seg_start: Vec::new(),
            seg_end: Vec::new(),
            seg_home_start: Vec::new(),
            seg_home_end: Vec::new(),
            seg_of: Vec::new(),
            cursor: Vec::new(),
            entry: Vec::new(),
            imp_pos: Vec::new(),
            imp_rem: Vec::new(),
            origin: Vec::new(),
            imp_mask: 0,
            imp_place: Vec::new(),
            imp_ctx: false,
            logical_target: Vec::new(),
            delivered_at: Vec::new(),
            dropped_at: Vec::new(),
            resolved_at_load: Vec::new(),
            loaded_path_len: 0,
            loaded_seg_len: 0,
            schedule: Vec::new(),
            schedule_pos: 0,
            dead: vec![false; n],
            dead_list: Vec::new(),
            link_schedule: Vec::new(),
            link_schedule_pos: 0,
            dead_link: vec![false; slots],
            dead_link_list: Vec::new(),
            cycle: 0,
            in_flight: 0,
            in_network: Vec::new(),
            queued_now: Vec::new(),
            queued_next: Vec::new(),
            links: vec![
                LinkGate {
                    claim: NEVER,
                    credits: flow_depth,
                };
                gates
            ],
            node_claim: vec![NEVER; n],
            link_flits: vec![0; slots],
            total_flits: 0,
            delivered: 0,
            dropped: 0,
            latencies: Vec::new(),
            lat_sorted: 0,
            lat_scratch: Vec::new(),
            searcher: Searcher::default(),
            reroute_path: Vec::new(),
            machine,
        }
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &PhysicalMachine {
        &self.machine
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u32 {
        self.cycle
    }

    /// `(injected, delivered, dropped, in_flight)` — the conservation
    /// invariant `delivered + dropped + in_flight + pending_injections ==
    /// injected` holds after every load, step and reset (for the batch
    /// `load_*` APIs `pending_injections` is always 0, so the PR 3 form
    /// `delivered + dropped + in_flight == injected` still holds).
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        (
            self.inject_at.len() as u64,
            self.delivered,
            self.dropped,
            self.in_flight,
        )
    }

    /// Packets loaded with a future injection cycle that have not entered
    /// the network yet.
    pub fn pending_injections(&self) -> u64 {
        (self.pending_inject.len() - self.inject_pos) as u64
    }

    /// Whether `node` is currently usable (healthy in the static fault set
    /// and not killed by the dynamic schedule).
    // analyzer: alloc-free
    fn is_alive(&self, node: NodeId) -> bool {
        self.machine.is_healthy(node) && !self.dead[node]
    }

    /// CSR slot of directed edge `(u, v)`. Only used at load/re-route time —
    /// the cycle loop reads the packed hop slots.
    fn edge_slot(&self, u: NodeId, v: u32) -> Option<usize> {
        edge_slot_in(&self.machine, u, v)
    }

    /// Fills the packed hop slots of `path[from..to]` (`to` exclusive; the
    /// final entry keeps `NO_SLOT`). The links were validated when the
    /// route was computed, so a missing slot here is a loader bug.
    fn pack_hop_slots(&mut self, from: usize, to: usize) {
        for i in from..to.saturating_sub(1) {
            let u = pk_node(self.path[i]);
            let v = pk_node(self.path[i + 1]) as u32;
            let slot = self
                .edge_slot(u, v)
                // analyzer: allow(expect) -- every loaded path was computed against this CSR, so a missing slot is a loader bug; aborting beats simulating a phantom link
                .expect("loaded paths only traverse physical links");
            let delivers = if i + 2 == to { DELIVERS } else { 0 };
            self.path[i] = pk(u as u32, slot as u32) | delivers;
        }
        if to > from {
            let last = pk_node(self.path[to - 1]) as u32;
            self.path[to - 1] = pk(last, NO_SLOT);
        }
    }

    /// Pushes the per-packet bookkeeping shared by every loader. The caller
    /// has already set up route state (`cursor`/`entry`/segment or shift
    /// register) for packet `id == inject_at.len()` and tells us whether
    /// the packet has any hop to make (`zero_hop`).
    fn push_outcome(&mut self, id: usize, zero_hop: bool, inject_cycle: u32) {
        self.inject_at.push(inject_cycle);
        self.occupied_slot.push(NO_SLOT);
        self.blocked_next.push(NONE_ID);
        self.in_network.push(false);
        self.vc.push(0);
        self.blocked_since.push(NEVER);
        self.grow_queue_for(id);
        if zero_hop && inject_cycle == 0 {
            // Already at the target when injected at load: delivered at
            // injection, latency 0 (the batch semantics — loading precedes
            // any dynamic fault).
            self.delivered_at.push(inject_cycle);
            self.dropped_at.push(NEVER);
            self.resolved_at_load.push(inject_cycle);
            self.delivered += 1;
            self.latencies.push(0);
        } else {
            // Timed zero-hop packets resolve at their injection cycle, in
            // `inject_due_packets` — by then their source may have died.
            self.delivered_at.push(NEVER);
            self.dropped_at.push(NEVER);
            self.resolved_at_load.push(NEVER);
            if inject_cycle == 0 {
                self.queue_now(id);
                self.in_network[id] = true;
                self.in_flight += 1;
            } else {
                self.pending_inject.push(id as u32);
            }
        }
    }

    /// Appends one materialized packet whose physical path is in `path`
    /// (consecutive duplicates — artifacts of non-injective placements —
    /// are collapsed; they cost no cycle and no link). `logical` records
    /// the logical target for later re-targeting, or `NO_LOGICAL`;
    /// `inject_cycle` is when the packet enters its source's injection
    /// queue (0 = live at load, the batch behaviour).
    fn push_packet(&mut self, path: &[NodeId], logical: u32, inject_cycle: u32) {
        let id = self.inject_at.len();
        let start = self.path.len() as u32;
        for &node in path {
            let tail = self.path.last().copied();
            if self.path.len() as u32 == start || tail.map_or(true, |t| pk_node(t) != node) {
                self.path.push(node as u64);
            }
        }
        let end = self.path.len() as u32;
        debug_assert!(end > start, "a packet path holds at least its source");
        self.pack_hop_slots(start as usize, end as usize);
        let seg = self.seg_start.len() as u32;
        self.seg_start.push(start);
        self.seg_end.push(end);
        self.seg_home_start.push(start);
        self.seg_home_end.push(end);
        self.seg_of.push(seg);
        self.cursor.push(start);
        self.entry.push(self.path[start as usize]);
        self.imp_pos.push(0);
        self.imp_rem.push(0);
        self.origin.push(NO_LOGICAL);
        self.logical_target.push(logical);
        self.push_outcome(id, end - start == 1, inject_cycle);
    }

    /// Initial cached entry and shift-register state of an implicit packet
    /// from logical `s` to logical `t` under the captured context — O(h),
    /// used at load and by `reset`. Returns `(entry, pos, rem)`; a terminal
    /// entry (see [`pk_terminal`]) means the packet is born on its target.
    fn implicit_entry(&self, s: u32, t: u32) -> (u64, u32, u32) {
        implicit_entry_in(&self.machine, &self.imp_place, self.imp_mask, s, t)
    }

    /// Appends one implicit packet: O(1) route state derived from the
    /// digit-shift generator over the captured implicit context. The route
    /// was already validated by the loader (`s`/`t` are logical endpoints).
    fn push_packet_implicit(&mut self, s: u32, t: u32, inject_cycle: u32) {
        let id = self.inject_at.len();
        let (entry, pos, rem) = self.implicit_entry(s, t);
        let zero_hop = pk_terminal(entry);
        self.entry.push(entry);
        self.imp_pos.push(pos);
        self.imp_rem.push(rem);
        self.cursor.push(IMPLICIT_ACTIVE);
        self.seg_of.push(SEG_NONE);
        self.origin.push(s);
        self.logical_target.push(t);
        self.push_outcome(id, zero_hop, inject_cycle);
    }

    /// Records a packet that could not be routed at load time: it is
    /// injected and immediately dropped (mirroring the static kernels'
    /// accounting, where infeasible packets count as dropped).
    fn push_dead_packet(&mut self, source_hint: NodeId, inject_cycle: u32) {
        let id = self.inject_at.len();
        self.grow_queue_for(id);
        self.seg_of.push(SEG_NONE);
        self.cursor.push(NEVER);
        self.entry.push(pk(source_hint as u32, NO_SLOT));
        self.imp_pos.push(0);
        self.imp_rem.push(1);
        self.origin.push(NO_LOGICAL);
        self.logical_target.push(NO_LOGICAL);
        self.inject_at.push(inject_cycle);
        self.occupied_slot.push(NO_SLOT);
        self.blocked_next.push(NONE_ID);
        self.in_network.push(false);
        self.vc.push(0);
        self.blocked_since.push(NEVER);
        self.delivered_at.push(NEVER);
        self.dropped_at.push(inject_cycle);
        self.resolved_at_load.push(inject_cycle);
        self.dropped += 1;
    }

    /// Captures (or checks) the implicit-routing context for an oblivious
    /// load: the logical mask and the placement map. Returns true when the
    /// load can use the digit-shift generator; a context mismatch (second
    /// load through a different placement or radix) falls back to
    /// materialized paths so the generator state stays well-defined.
    fn capture_implicit_ctx(&mut self, db: &DeBruijn2, placement: &Embedding) -> bool {
        if self.config.route_source == RouteSource::Materialized {
            return false;
        }
        let mask = (db.node_count() - 1) as u32;
        let identity = placement
            .as_slice()
            .iter()
            .enumerate()
            .all(|(i, &v)| i == v);
        if self.imp_ctx {
            let same_place = if identity {
                self.imp_place.is_empty()
            } else {
                self.imp_place.len() == placement.len()
                    && placement
                        .as_slice()
                        .iter()
                        .zip(self.imp_place.iter())
                        .all(|(&a, &b)| a as u32 == b)
            };
            return self.imp_mask == mask && same_place;
        }
        self.imp_ctx = true;
        self.imp_mask = mask;
        self.imp_place.clear();
        if !identity {
            self.imp_place
                .extend(placement.as_slice().iter().map(|&v| v as u32));
        }
        true
    }

    /// Loads a workload of logical pairs routed with the oblivious de
    /// Bruijn scheme through `placement`. Pairs whose fixed route is
    /// infeasible on the machine as loaded (faulty node, missing link,
    /// out-of-range endpoint) are injected as immediately-dropped packets.
    pub fn load_oblivious(
        &mut self,
        db: &DeBruijn2,
        placement: &Embedding,
        pairs: &[(NodeId, NodeId)],
    ) {
        let implicit = self.capture_implicit_ctx(db, placement);
        let mut path = Vec::with_capacity(db.h() + 1);
        self.reserve_for(pairs.len(), if implicit { 0 } else { db.h() + 1 });
        for &(s, t) in pairs {
            // The validation walk (health + link checks per hop) runs either
            // way; only the *storage* differs — implicit packets keep two
            // words of shift-register state instead of the walked path.
            match crate::routing::route_logical_debruijn_into(
                db,
                placement,
                &self.machine,
                s,
                t,
                &mut path,
            ) {
                Ok(_) if implicit => self.push_packet_implicit(s as u32, t as u32, 0),
                Ok(_) => self.push_packet(&path, t as u32, 0),
                Err(_) => {
                    let hint = if s < placement.len() {
                        placement.apply(s)
                    } else {
                        0
                    };
                    self.push_dead_packet(hint, 0);
                }
            }
        }
        self.loaded_path_len = self.path.len() as u32;
        self.loaded_seg_len = self.seg_start.len() as u32;
    }

    /// Loads an open-loop workload: `(inject_cycle, source, target)` logical
    /// triples (non-decreasing in cycle, as produced by
    /// [`crate::workload::open_loop_injections`]), each routed with the
    /// oblivious de Bruijn scheme through `placement` at load time. A packet
    /// enters its source's (unbounded) injection queue at `inject_cycle`
    /// and competes for the first link's output port — and, under credit
    /// flow control, the first link's buffer credit — from that cycle on.
    pub fn load_oblivious_timed(
        &mut self,
        db: &DeBruijn2,
        placement: &Embedding,
        injections: &[(u32, NodeId, NodeId)],
    ) {
        assert!(
            injections
                .iter()
                .zip(injections.iter().skip(1))
                .all(|(a, b)| a.0 <= b.0),
            "injection schedule must be sorted by cycle"
        );
        // The pending queue is drained front-to-back on the cycle clock, so
        // ordering must hold *across* load calls too: an appended schedule
        // may not start before the latest cycle already queued (it would
        // silently inject late instead of on time).
        if let (Some(&last), Some(&(first, _, _))) =
            (self.pending_inject.last(), injections.first())
        {
            assert!(
                first >= self.inject_at[last as usize],
                "appended injection schedule starts at cycle {first}, before the \
                 already-queued cycle {}",
                self.inject_at[last as usize]
            );
        }
        let implicit = self.capture_implicit_ctx(db, placement);
        let mut path = Vec::with_capacity(db.h() + 1);
        self.reserve_for(injections.len(), if implicit { 0 } else { db.h() + 1 });
        self.pending_inject.reserve(injections.len());
        self.open_loop_sources = db.node_count() as u32;
        for &(cycle, s, t) in injections {
            match crate::routing::route_logical_debruijn_into(
                db,
                placement,
                &self.machine,
                s,
                t,
                &mut path,
            ) {
                Ok(_) if implicit => self.push_packet_implicit(s as u32, t as u32, cycle),
                Ok(_) => self.push_packet(&path, t as u32, cycle),
                Err(_) => {
                    let hint = if s < placement.len() {
                        placement.apply(s)
                    } else {
                        0
                    };
                    self.push_dead_packet(hint, cycle);
                }
            }
        }
        self.loaded_path_len = self.path.len() as u32;
        self.loaded_seg_len = self.seg_start.len() as u32;
    }

    /// Loads a workload of *physical* pairs routed adaptively (BFS through
    /// the currently-healthy machine).
    pub fn load_adaptive(&mut self, pairs: &[(NodeId, NodeId)]) {
        let mut scratch = crate::routing::RouteScratch::new();
        self.reserve_for(pairs.len(), 4);
        for &(s, t) in pairs {
            match crate::routing::route_adaptive_into(&self.machine, s, t, &mut scratch) {
                Ok(_) => self.push_packet(&scratch.path, NO_LOGICAL, 0),
                Err(_) => {
                    self.push_dead_packet(if s < self.machine.node_count() { s } else { 0 }, 0)
                }
            }
        }
        self.loaded_path_len = self.path.len() as u32;
        self.loaded_seg_len = self.seg_start.len() as u32;
    }

    fn reserve_for(&mut self, packets: usize, hops_guess: usize) {
        self.path.reserve(packets * hops_guess);
        for v in [
            &mut self.cursor,
            &mut self.logical_target,
            &mut self.imp_pos,
            &mut self.imp_rem,
            &mut self.origin,
            &mut self.seg_of,
            &mut self.inject_at,
            &mut self.occupied_slot,
            &mut self.blocked_next,
            &mut self.blocked_since,
            &mut self.delivered_at,
            &mut self.dropped_at,
            &mut self.resolved_at_load,
            &mut self.latencies,
            &mut self.lat_scratch,
        ] {
            v.reserve(packets);
        }
        self.entry.reserve(packets);
        self.in_network.reserve(packets);
        self.vc.reserve(packets);
        // The work-queue bitmaps cover every loaded packet (one bit each),
        // so sizing them here keeps the cycle loop allocation-free.
        let words = (self.inject_at.len() + packets).div_ceil(64);
        self.queued_now
            .reserve(words.saturating_sub(self.queued_now.len()));
        self.queued_next
            .reserve(words.saturating_sub(self.queued_next.len()));
    }

    /// Schedules processor `node` to die at the *start* of `cycle` (before
    /// any flit moves that cycle).
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn schedule_fault(&mut self, cycle: u32, node: NodeId) {
        assert!(node < self.machine.node_count(), "fault node out of range");
        self.schedule.push((cycle, node as u32));
        self.schedule.sort_unstable();
    }

    /// The dynamic faults applied so far, merged with the machine's static
    /// fault set — the set a diagnosing runtime would hand to
    /// `reconfigure_verified`.
    pub fn current_fault_set(&self) -> FaultSet {
        let mut faults = FaultSet::empty(self.machine.node_count());
        for f in self.machine.faults().iter() {
            faults.add(f);
        }
        for &d in &self.dead_list {
            faults.add(d as usize);
        }
        faults
    }

    /// Schedules the directed link `from → to` to die at the *start* of
    /// `cycle` (before any flit moves that cycle). The reverse direction
    /// keeps carrying flits unless scheduled separately.
    ///
    /// # Panics
    /// Panics if the graph has no directed link `from → to`.
    pub fn schedule_link_fault(&mut self, cycle: u32, from: NodeId, to: NodeId) {
        let slot = edge_slot_in(&self.machine, from, to as u32)
            // analyzer: allow(expect) -- schedule-time validation of caller input, mirroring schedule_fault's range assert; never on the cycle loop
            .expect("scheduled link fault names a missing directed link");
        self.schedule_link_fault_slot(cycle, slot);
    }

    /// Schedules the directed link occupying CSR `slot` to die at the
    /// *start* of `cycle`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn schedule_link_fault_slot(&mut self, cycle: u32, slot: usize) {
        assert!(slot < self.dead_link.len(), "fault slot out of range");
        self.link_schedule.push((cycle, slot as u32));
        self.link_schedule.sort_unstable();
    }

    /// Schedules every directed link in `faults` to die at the *start* of
    /// `cycle` — the bulk entry point for the correlated generators
    /// ([`LinkFaultSet::bernoulli`], [`LinkFaultSet::burst`],
    /// [`LinkFaultSet::from_node_faults`]).
    ///
    /// # Panics
    /// Panics if `faults` was built against a different graph (slot
    /// universes differ).
    pub fn schedule_link_faults(&mut self, cycle: u32, faults: &LinkFaultSet) {
        assert_eq!(
            faults.universe(),
            self.dead_link.len(),
            "link fault set universe must match the machine's slot count"
        );
        for slot in faults.iter() {
            self.link_schedule.push((cycle, slot as u32));
        }
        self.link_schedule.sort_unstable();
    }

    /// The directed links killed by the dynamic schedule so far, as a
    /// [`LinkFaultSet`] over this machine's graph (the link analogue of
    /// [`CongestionSim::current_fault_set`]).
    pub fn current_link_fault_set(&self) -> LinkFaultSet {
        let mut faults = LinkFaultSet::empty(self.machine.graph());
        for &slot in &self.dead_link_list {
            faults.add(slot as usize);
        }
        faults
    }

    /// Schedules a credit return for gate `gidx`: the freed buffer slot
    /// becomes usable `packet_flits` cycles later — the slot drains when the
    /// tail flit clears it (immediately for store-and-forward), and the
    /// credit travels upstream one cycle after that. Entries for the same
    /// gate due the same cycle coalesce through `credit_mark`, so the FIFO's
    /// live length is bounded exactly like the historical per-slot counters.
    // analyzer: alloc-free
    fn return_credit(&mut self, gidx: u32) {
        let due = self.cycle + self.packet_flits;
        let m = self.credit_mark[gidx as usize] as usize;
        if m > 0 && m <= self.credit_fifo.len() {
            let entry = &mut self.credit_fifo[m - 1];
            // A stale mark can only coalesce if both the due cycle and the
            // gate match — applied entries are always due in the past, so
            // they can never capture a fresh return.
            if entry.0 == due && entry.1 == gidx {
                entry.2 += 1;
                return;
            }
        }
        self.credit_mark[gidx as usize] = self.credit_fifo.len() as u32 + 1;
        self.credit_fifo.push((due, gidx, 1)); // analyzer: allow(alloc) -- capacity reserved at load; the counting-allocator test proves the cycle loop never reallocates
    }

    /// Releases the buffer slot a resolving (delivered or dropped) packet
    /// occupies, if any. Every path that removes a live packet from the
    /// network must go through here under credit flow control — including
    /// fault kills, which would otherwise leak the dead processor's input
    /// slots and starve the upstream links forever.
    // analyzer: alloc-free
    fn release_slot(&mut self, id: usize) {
        if self.flow_depth == 0 {
            return;
        }
        let slot = self.occupied_slot[id];
        if slot != NO_SLOT {
            self.return_credit(slot);
            self.occupied_slot[id] = NO_SLOT;
        }
    }

    /// Records that blocked packet `id` became unblocked (moved or
    /// resolved) at `cycle`, folding the blocked span into the per-VC
    /// head-of-line counter. No-op unless VC metrics are live and the
    /// packet was actually marked blocked; both engines mark and clear at
    /// identical cycles, so the totals are engine-identical.
    #[inline]
    // analyzer: alloc-free
    fn note_unblocked(&mut self, id: usize, cycle: u32) {
        if self.track_vc {
            let since = self.blocked_since[id];
            if since != NEVER {
                self.vc_hol_blocked_cycles[self.vc[id] as usize] += (cycle - since) as u64;
                self.blocked_since[id] = NEVER;
            }
        }
    }

    /// Records that packet `id` failed examination at `cycle` (any gating
    /// resource); only the *first* failure since the last move sticks.
    #[inline]
    // analyzer: alloc-free
    fn note_blocked(&mut self, id: usize, cycle: u32) {
        if self.track_vc && self.blocked_since[id] == NEVER {
            self.blocked_since[id] = cycle;
        }
    }

    /// Marks packet `id` delivered at `cycle`: stamps the outcome, records
    /// the latency, and frees its buffer slot. Under wormhole switching the
    /// stamp is *head* arrival (cut-through consumption); the tail streams
    /// in behind it while the freed credits make their timed way back.
    // analyzer: alloc-free
    fn resolve_delivered(&mut self, id: usize, cycle: u32) {
        self.note_unblocked(id, cycle);
        self.delivered_at[id] = cycle;
        self.delivered += 1;
        self.latencies.push(cycle - self.inject_at[id]); // analyzer: allow(alloc) -- capacity reserved at load; the counting-allocator test proves the cycle loop never reallocates
        self.in_network[id] = false;
        self.cursor[id] = NEVER;
        self.in_flight -= 1;
        self.release_slot(id);
    }

    /// Marks in-flight packet `id` dropped at `cycle` and frees its slot.
    // analyzer: alloc-free
    fn resolve_dropped(&mut self, id: usize, cycle: u32) {
        self.note_unblocked(id, cycle);
        self.dropped_at[id] = cycle;
        self.dropped += 1;
        self.in_network[id] = false;
        self.cursor[id] = NEVER;
        self.in_flight -= 1;
        self.release_slot(id);
    }

    /// Queues packet `id` for examination *this* cycle (wake events fire
    /// before the examination pass).
    #[inline]
    // analyzer: alloc-free
    fn queue_now(&mut self, id: usize) {
        self.queued_now[id >> 6] |= 1u64 << (id & 63);
    }

    /// Grows the work-queue bitmaps to cover packet `id`.
    fn grow_queue_for(&mut self, id: usize) {
        let words = (id >> 6) + 1;
        if self.queued_now.len() < words {
            self.queued_now.resize(words, 0);
            self.queued_next.resize(words, 0);
        }
    }

    /// Parks packet `id` on `slot`'s blocked queue, keeping the queue
    /// sorted by id (= age): it will not be examined again until the slot
    /// sees a credit with `id` at the queue head (or a whole-network wake).
    /// Packets park in injection order on their first hop and in
    /// examination order everywhere else, so the insert is almost always an
    /// O(1) tail append (or head prepend for a re-parking ex-head).
    // analyzer: alloc-free
    fn park_on_slot(&mut self, id: usize, slot: usize) {
        let id32 = id as u32;
        let head = self.blocked_head[slot];
        if head == NONE_ID {
            self.blocked_head[slot] = id32;
            self.blocked_tail[slot] = id32;
            self.blocked_next[id] = NONE_ID;
        } else if id32 > self.blocked_tail[slot] {
            let tail = self.blocked_tail[slot] as usize;
            self.blocked_next[tail] = id32;
            self.blocked_tail[slot] = id32;
            self.blocked_next[id] = NONE_ID;
        } else if id32 < head {
            self.blocked_next[id] = head;
            self.blocked_head[slot] = id32;
        } else {
            // Mid-queue insert: rare (a buffered packet joining a long
            // injection queue), and bounded by the queue length.
            let mut prev = head as usize;
            while self.blocked_next[prev] != NONE_ID && self.blocked_next[prev] < id32 {
                prev = self.blocked_next[prev] as usize;
            }
            self.blocked_next[id] = self.blocked_next[prev];
            self.blocked_next[prev] = id32;
        }
    }

    /// Pops `slot`'s oldest parked packet back into this cycle's work
    /// queue. Only the head can ever move (everything behind it shares the
    /// same node port, link claim and credit counter and is strictly
    /// younger), so one head per wake event is exact — no thundering herd.
    // analyzer: alloc-free
    fn wake_head(&mut self, slot: usize) {
        let head = self.blocked_head[slot];
        if head != NONE_ID {
            self.queue_now(head as usize);
            self.blocked_head[slot] = self.blocked_next[head as usize];
            if self.blocked_head[slot] == NONE_ID {
                self.blocked_tail[slot] = NONE_ID;
            }
        }
    }

    /// Drains `slot`'s blocked queue into this cycle's work queue.
    // analyzer: alloc-free
    fn wake_slot(&mut self, slot: usize) {
        let mut cur = self.blocked_head[slot];
        while cur != NONE_ID {
            self.queue_now(cur as usize);
            cur = self.blocked_next[cur as usize];
        }
        self.blocked_head[slot] = NONE_ID;
        self.blocked_tail[slot] = NONE_ID;
    }

    /// Wakes every parked packet — the response to whole-network events
    /// (a fault firing, a recovery driver re-routing in flight) that can
    /// change any packet's next hop or its movability.
    // analyzer: alloc-free
    fn wake_all_parked(&mut self) {
        for slot in 0..self.blocked_head.len() {
            if self.blocked_head[slot] != NONE_ID {
                self.wake_slot(slot);
            }
        }
    }

    /// Applies the credit returns that have come due by the current cycle
    /// and wakes the packets parked on the replenished gates; returns how
    /// many credits were applied. The applied prefix is reclaimed in place
    /// (full clear when drained, front compaction when the tail lags), so
    /// the FIFO never grows past its load-time reserve in steady state.
    // analyzer: alloc-free
    fn apply_pending_credits(&mut self) -> u64 {
        let mut applied = 0;
        while self.credit_fifo_pos < self.credit_fifo.len() {
            let (due, gidx, count) = self.credit_fifo[self.credit_fifo_pos];
            if due > self.cycle {
                break;
            }
            self.credit_fifo_pos += 1;
            applied += count as u64;
            self.links[gidx as usize].credits += count;
            debug_assert!(
                self.links[gidx as usize].credits <= self.flow_depth,
                "credit overflow"
            );
            self.wake_head(gidx as usize);
        }
        if self.credit_fifo_pos >= self.credit_fifo.len() {
            self.credit_fifo.clear();
            self.credit_fifo_pos = 0;
        } else if self.credit_fifo_pos >= 64 && self.credit_fifo_pos * 2 >= self.credit_fifo.len() {
            // Stale coalescing marks survive compaction harmlessly: a mark
            // only fires when both the due cycle and the gate match, and
            // matching entries are correct coalescing targets wherever the
            // compaction moved them.
            self.credit_fifo.drain(..self.credit_fifo_pos);
            self.credit_fifo_pos = 0;
        }
        applied
    }

    /// Whether timed credit returns are still in flight (parked packets may
    /// yet be woken by them); quiescence must wait for the FIFO to drain.
    #[inline]
    // analyzer: alloc-free
    fn credits_pending(&self) -> bool {
        self.credit_fifo_pos < self.credit_fifo.len()
    }

    /// Wakes the served-slot queues that have come due: when a link's claim
    /// expires (`packet_flits` cycles after the winning move), the head of
    /// *every* VC queue on that slot that could now admit a flit gets one
    /// examination. Extra wakes are harmless — examination is a pure
    /// function of engine state, and an immovable woken packet re-parks
    /// identically in both engines.
    // analyzer: alloc-free
    fn apply_due_serves(&mut self) {
        let vcs = self.vcs as usize;
        while self.served_fifo_pos < self.served_fifo.len() {
            let (due, slot) = self.served_fifo[self.served_fifo_pos];
            if due > self.cycle {
                break;
            }
            self.served_fifo_pos += 1;
            let base = slot as usize * vcs;
            for gidx in base..base + vcs {
                if self.blocked_head[gidx] != NONE_ID
                    && (self.flow_depth == 0 || self.links[gidx].credits > 0)
                {
                    self.wake_head(gidx);
                }
            }
        }
        if self.served_fifo_pos >= self.served_fifo.len() {
            self.served_fifo.clear();
            self.served_fifo_pos = 0;
        } else if self.served_fifo_pos >= 64 && self.served_fifo_pos * 2 >= self.served_fifo.len() {
            self.served_fifo.drain(..self.served_fifo_pos);
            self.served_fifo_pos = 0;
        }
    }

    /// Whether any link claim is still unexpired (a wormhole body is
    /// streaming); quiescence must wait these out too.
    #[inline]
    // analyzer: alloc-free
    fn serves_pending(&self) -> bool {
        self.served_fifo_pos < self.served_fifo.len()
    }

    /// Moves packets whose injection cycle has arrived from the pending
    /// queue into the examination list (in age order); a packet whose
    /// source died before its injection cycle is dropped at injection, and
    /// a zero-hop packet injected on a living source is delivered on the
    /// spot (latency 0). Returns how many packets went live.
    // analyzer: alloc-free
    fn inject_due_packets(&mut self) -> u64 {
        let mut injected = 0;
        while self.inject_pos < self.pending_inject.len() {
            let id = self.pending_inject[self.inject_pos] as usize;
            if self.inject_at[id] > self.cycle {
                break;
            }
            self.inject_pos += 1;
            let source = pk_node(self.entry[id]);
            if !self.is_alive(source) {
                self.dropped_at[id] = self.cycle;
                self.dropped += 1;
            } else if pk_terminal(self.entry[id]) {
                // Already at the target: consumed at injection.
                self.delivered_at[id] = self.cycle;
                self.delivered += 1;
                self.latencies.push(0); // analyzer: allow(alloc) -- capacity reserved at load; the counting-allocator test proves the cycle loop never reallocates
            } else {
                self.queue_now(id);
                self.in_network[id] = true;
                self.in_flight += 1;
                injected += 1;
            }
        }
        injected
    }

    /// Checks the credit-conservation invariant: for every (directed link,
    /// virtual channel) gate, `free credits + in-flight timed returns +
    /// live occupants == buffer_depth`. Returns the first violation as a
    /// human-readable message. Always `Ok` under [`FlowControl::Infinite`].
    /// The invariant holds through node *and* directed-link kills: a killed
    /// packet's slot drains back as a timed return, and a dead gate simply
    /// accumulates its full depth and never hands a credit out again.
    /// Allocation-free (the per-gate occupancy and pending counts reuse
    /// scratch arrays sized at construction, hence `&mut self`), so tests
    /// may call it every cycle.
    pub fn check_credit_conservation(&mut self) -> Result<(), String> {
        if self.flow_depth == 0 {
            return Ok(());
        }
        for c in &mut self.occupancy_scratch {
            *c = 0;
        }
        for c in &mut self.pending_scratch {
            *c = 0;
        }
        for id in 0..self.in_network.len() {
            if !self.in_network[id] {
                continue;
            }
            let gidx = self.occupied_slot[id];
            if gidx != NO_SLOT {
                self.occupancy_scratch[gidx as usize] += 1;
            }
        }
        for i in self.credit_fifo_pos..self.credit_fifo.len() {
            let (_, gidx, count) = self.credit_fifo[i];
            self.pending_scratch[gidx as usize] += count;
        }
        for gidx in 0..self.occupancy_scratch.len() {
            let total = self.links[gidx].credits
                + self.pending_scratch[gidx]
                + self.occupancy_scratch[gidx];
            if total != self.flow_depth {
                return Err(format!(
                    "slot {gidx}: credits {} + pending {} + occupants {} != depth {}",
                    self.links[gidx].credits,
                    self.pending_scratch[gidx],
                    self.occupancy_scratch[gidx],
                    self.flow_depth
                ));
            }
        }
        Ok(())
    }

    /// Applies schedule entries due at (or before) the current cycle, before
    /// any flit moves. Packets sitting on a dying node die with it — and,
    /// under credit flow control, give their buffer slots back (a dead
    /// processor must not hold credits hostage). Every parked packet is
    /// woken, because its next hop may now lead into a dead node. Directed
    /// links killed by the link schedule fire here too: a dead slot never
    /// admits another flit, and only the packets parked on its gates are
    /// woken (a per-link wake event — every other packet's movability is
    /// untouched, so the whole-network wake stays reserved for node kills).
    /// Returns how many nodes and links were killed; idempotent within a
    /// cycle, so a recovery driver may call it ahead of
    /// [`CongestionSim::step`] to reconfigure and re-target *before* the
    /// fault-cycle movement.
    pub fn fire_due_faults(&mut self) -> usize {
        let mut killed = 0;
        while self.schedule_pos < self.schedule.len()
            && self.schedule[self.schedule_pos].0 <= self.cycle
        {
            let (_, node) = self.schedule[self.schedule_pos];
            self.schedule_pos += 1;
            if !self.dead[node as usize] {
                self.dead[node as usize] = true;
                self.dead_list.push(node);
                killed += 1;
            }
        }
        if killed > 0 {
            // Packets currently hosted on a dead processor are lost; their
            // buffer slots are reclaimed (returned to the upstream credit
            // counters) so the kill does not leak credits. This is a rare
            // whole-table scan — resolved ids stay in whatever queue they
            // occupy and are skipped lazily at examination time.
            let cycle = self.cycle;
            for id in 0..self.in_network.len() {
                if self.in_network[id] && self.dead[pk_node(self.entry[id])] {
                    self.resolve_dropped(id, cycle);
                }
            }
            self.wake_all_parked();
            #[cfg(debug_assertions)]
            if let Err(msg) = self.check_credit_conservation() {
                // analyzer: allow(panic) -- debug_assertions-only invariant escalation; release builds never compile this arm
                panic!("fault kill broke credit conservation: {msg}");
            }
        }
        let mut links_killed = 0;
        let first_new_link = self.dead_link_list.len();
        while self.link_schedule_pos < self.link_schedule.len()
            && self.link_schedule[self.link_schedule_pos].0 <= self.cycle
        {
            let (_, slot) = self.link_schedule[self.link_schedule_pos];
            self.link_schedule_pos += 1;
            if !self.dead_link[slot as usize] {
                self.dead_link[slot as usize] = true;
                self.dead_link_list.push(slot);
                links_killed += 1;
            }
        }
        if links_killed > 0 {
            // Per-link wake: a packet can only be affected by this kill if
            // its next hop crosses the dying slot, and such a packet is
            // either in the examination queue already (it requeues every
            // cycle while blocked on a port or claim) or parked on one of
            // exactly this slot's gates. Flushing those queues hands every
            // affected packet to this cycle's examination pass, where the
            // extended hazard check applies the configured [`FaultResponse`].
            // Packets buffered *downstream* of the dead link keep flying —
            // their buffer is hardware at the receiving node; the link, not
            // the memory, died — so credits drain back through the ordinary
            // timed returns and conservation holds per gate, dead or alive.
            let vcs = self.vcs as usize;
            for i in first_new_link..self.dead_link_list.len() {
                let slot = self.dead_link_list[i] as usize;
                for gidx in slot * vcs..(slot + 1) * vcs {
                    if self.blocked_head[gidx] != NONE_ID {
                        self.wake_slot(gidx);
                    }
                }
            }
            #[cfg(debug_assertions)]
            if let Err(msg) = self.check_credit_conservation() {
                // analyzer: allow(panic) -- debug_assertions-only invariant escalation; release builds never compile this arm
                panic!("link kill broke credit conservation: {msg}");
            }
        }
        killed + links_killed
    }

    /// The physical node live packet `id`'s route ends on — where a
    /// re-route must aim. For an implicit packet that is the placement
    /// image of its logical target (exactly the materialized path's last
    /// node, by construction); for a materialized packet, the segment's
    /// final entry.
    // analyzer: alloc-free
    fn route_target(&self, id: usize) -> NodeId {
        if self.cursor[id] == IMPLICIT_ACTIVE {
            implicit_route::apply_place(&self.imp_place, self.logical_target[id]) as usize
        } else {
            let seg = self.seg_of[id] as usize;
            pk_node(self.path[self.seg_end[seg] as usize - 1])
        }
    }

    /// Advances packet `id` past the hop it just won: `next_node` (the CSR
    /// target of the crossed slot) becomes its current node and the cached
    /// entry is recomputed — an O(1) shift-register step for implicit
    /// packets, a cursor bump for materialized ones. Never called on a
    /// delivering hop.
    #[inline]
    // analyzer: alloc-free
    fn advance_route(&mut self, id: usize, crossed_slot: usize) {
        let next_node = self.machine.graph().csr().1[crossed_slot];
        let at = self.cursor[id];
        if at == IMPLICIT_ACTIVE {
            let (pos, rem) = (self.imp_pos[id], self.imp_rem[id]);
            let (p2, pos2, rem2) =
                implicit_route::next_hop(&self.imp_place, self.imp_mask, next_node, pos, rem)
                    // analyzer: allow(expect) -- the crossed entry lacked DELIVERS, so the register provably holds another hop
                    .expect("a non-delivering hop always has a successor");
            let slot = self
                .edge_slot(next_node as usize, p2)
                // analyzer: allow(expect) -- the loader validated every shift edge of this route against this CSR
                .expect("implicit routes only traverse physical links");
            let delivers =
                implicit_route::route_ends_at(&self.imp_place, self.imp_mask, p2, pos2, rem2);
            self.entry[id] = pk(next_node, slot as u32) | if delivers { DELIVERS } else { 0 };
            self.imp_pos[id] = pos2;
            self.imp_rem[id] = rem2;
        } else {
            let next = at + 1;
            self.cursor[id] = next;
            self.entry[id] = self.path[next as usize];
        }
    }

    /// Replaces the remaining path of live packet `id` with a BFS route
    /// from its current node to `target`, re-deriving the packed hop slots
    /// for the new suffix. Returns false (and leaves the packet untouched)
    /// when no healthy path exists.
    fn reroute_packet(&mut self, id: usize, target: NodeId) -> bool {
        let here = pk_node(self.entry[id]);
        // Split the borrows: BFS needs &self.machine + &mut scratch.
        let machine = &self.machine;
        let dead = &self.dead;
        let dead_link = &self.dead_link;
        let found = self.searcher.shortest_path_avoiding_into(
            machine.graph(),
            here,
            target,
            |v| machine.is_healthy(v) && !dead[v],
            |slot| !dead_link[slot],
            &mut self.reroute_path,
        );
        if !found {
            return false;
        }
        // Spill the new path segment into the side table; pre-fault spans
        // stay in place (only `reset` reclaims the spill, by truncating to
        // the load watermarks). An implicit packet materializes here — the
        // adaptive route is not digit-shift-recomputable — by taking a
        // fresh segment whose home spans are NEVER (reset re-derives its
        // original route from `origin` instead).
        let start = self.path.len() as u32;
        self.path
            .extend(self.reroute_path.iter().map(|&v| v as u64));
        let end = self.path.len();
        self.pack_hop_slots(start as usize, end);
        let seg = self.seg_of[id];
        if seg == SEG_NONE {
            self.seg_of[id] = self.seg_start.len() as u32;
            self.seg_start.push(start);
            self.seg_end.push(end as u32);
            self.seg_home_start.push(NEVER);
            self.seg_home_end.push(NEVER);
        } else {
            self.seg_start[seg as usize] = start;
            self.seg_end[seg as usize] = end as u32;
        }
        self.cursor[id] = start;
        self.entry[id] = self.path[start as usize];
        true
    }

    /// Re-targets every in-flight packet that carries a logical target at
    /// `placement`'s image of that target and re-routes it adaptively —
    /// the drain step of online reconfiguration. Packets without a healthy
    /// path (and packets already at the new image) resolve immediately;
    /// every parked packet is woken, since its route just changed under it.
    /// Returns `(rerouted, delivered_in_place, dropped)`.
    pub fn retarget_and_reroute(&mut self, placement: &Embedding) -> (u64, u64, u64) {
        let (mut rerouted, mut delivered_in_place, mut dropped) = (0, 0, 0);
        let cycle = self.cycle;
        for id in 0..self.in_network.len() {
            if !self.in_network[id] {
                continue;
            }
            let logical = self.logical_target[id];
            if logical == NO_LOGICAL {
                continue;
            }
            let target = placement.apply(logical as usize);
            let here = pk_node(self.entry[id]);
            if here == target {
                self.resolve_delivered(id, cycle);
                delivered_in_place += 1;
            } else if self.reroute_packet(id, target) {
                // The packet stays in the same physical buffer: a re-route
                // replaces its remaining path, not its position.
                rerouted += 1;
            } else {
                self.resolve_dropped(id, cycle);
                dropped += 1;
            }
        }
        self.wake_all_parked();
        (rerouted, delivered_in_place, dropped)
    }

    /// Simulates one cycle: applies the credits returned last cycle (waking
    /// packets parked on the replenished slots), injects due open-loop
    /// packets, applies due faults, then examines — in age order — every
    /// packet whose gating resources could have changed, moving those that
    /// win their output port, link and (under credit flow control) a free
    /// downstream buffer slot. A packet that fails on a full buffer parks
    /// on that slot's blocked queue; a packet that fails on a per-cycle
    /// claim is re-examined next cycle. Returns a summary of what happened;
    /// `CycleEvents::is_idle()` is true only when the run has drained.
    // analyzer: alloc-free
    pub fn step(&mut self) -> CycleEvents {
        let credits_applied = self.apply_pending_credits();
        // Link claims taken `packet_flits` cycles ago expire now: wake each
        // due served slot's VC queue heads (under credit flow only where the
        // gate can actually admit a flit — otherwise the credit return will
        // wake it).
        self.apply_due_serves();
        let injected = self.inject_due_packets();
        let faults_fired = self.fire_due_faults(); // analyzer: trusted-call -- grows dead_list only when a scheduled fault fires; cold by design
        let stamp = self.cycle;
        let single_port = self.machine.port_model() == PortModel::SinglePort;
        let credit_based = self.flow_depth > 0;
        let park = self.config.engine == EngineKind::WakeList;
        let vcs = self.vcs as usize;
        let pf = self.packet_flits;
        let track_vc = self.track_vc;
        // Loaded paths never cross statically-faulty processors, so the
        // dead-next-hop check only matters once a dynamic fault has fired.
        let hazard = !self.dead_list.is_empty() || !self.dead_link_list.is_empty();
        let mut moved = 0;
        // Examine the queued packets in ascending id order (= age order),
        // clearing each bitmap word as it is consumed; survivors set their
        // bit in the next-cycle bitmap, which is all-zero on entry.
        for wi in 0..self.queued_now.len() {
            let mut word = self.queued_now[wi];
            if word == 0 {
                continue;
            }
            self.queued_now[wi] = 0;
            let base = wi << 6;
            while word != 0 {
                let id = base + word.trailing_zeros() as usize;
                word &= word - 1;
                if self.cursor[id] == NEVER {
                    // Resolved while queued (fault kill, re-target): skip.
                    continue;
                }
                let entry = self.entry[id];
                let slot = pk_slot(entry) as usize;
                if hazard {
                    // The next node on the route is the CSR target of the
                    // cached hop slot (for materialized packets this equals
                    // the next path entry's node by construction).
                    let next = self.machine.graph().csr().1[slot] as usize;
                    if self.dead[next] || self.dead_link[slot] {
                        // The precomputed route runs into a node (or crosses
                        // a directed link) that died after the route was
                        // computed.
                        match self.config.fault_response {
                            FaultResponse::Drop => {
                                self.resolve_dropped(id, stamp);
                                continue;
                            }
                            FaultResponse::RerouteAdaptive => {
                                let target = self.route_target(id);
                                // analyzer: trusted-call -- BFS re-route runs only after a dynamic fault; cold by design
                                if !self.is_alive(target) || !self.reroute_packet(id, target) {
                                    self.resolve_dropped(id, stamp);
                                    continue;
                                }
                                if self.cursor[id] + 1 == self.seg_end[self.seg_of[id] as usize] {
                                    // The oblivious route revisited the target
                                    // and the packet was sitting on it: the
                                    // re-route is the empty path, so it is
                                    // already delivered.
                                    self.resolve_delivered(id, stamp);
                                    continue;
                                }
                                // Rerouted this cycle; it may move next cycle.
                                self.queued_next[wi] |= 1u64 << (id & 63);
                                continue;
                            }
                        }
                    }
                }
                let here = pk_node(entry);
                let vc = self.vc[id] as usize;
                let gidx = slot * vcs + vc;
                // The physical link (and, under `SinglePort`, the output
                // port) is free when its last claim has fully streamed —
                // `packet_flits` cycles. Claims never exceed the current
                // stamp, so for single-flit packets this is exactly the
                // historical `claim != stamp`.
                let link_claim = self.links[slot * vcs].claim;
                let link_free = link_claim == NEVER || stamp - link_claim >= pf;
                let port_claim = self.node_claim[here];
                let port_free = !single_port || port_claim == NEVER || stamp - port_claim >= pf;
                let credit_free = !credit_based || self.links[gidx].credits > 0;
                if port_free && credit_free && link_free {
                    // Claim and move (the head flit; under wormhole the body
                    // streams behind it, keeping the link busy for
                    // `packet_flits` cycles).
                    self.links[slot * vcs].claim = stamp;
                    if single_port {
                        self.node_claim[here] = stamp;
                    }
                    if credit_based {
                        // Take a slot downstream on this packet's VC; the
                        // slot vacated upstream returns to its gate once the
                        // tail flit clears it.
                        self.links[gidx].credits -= 1;
                        let prev = self.occupied_slot[id];
                        if prev != NO_SLOT {
                            self.return_credit(prev);
                        }
                        self.occupied_slot[id] = gidx as u32;
                    }
                    if park || pf > 1 {
                        // Whoever queues behind this move wakes when the
                        // claim expires. Under wormhole the pending entry is
                        // also the quiescence witness for the streaming body,
                        // which the naive rescan's deadlock proof needs too.
                        self.served_fifo.push((stamp + pf, slot as u32)); // analyzer: allow(alloc) -- capacity reserved at load; the counting-allocator test proves the cycle loop never reallocates
                    }
                    self.link_flits[slot] += pf as u64;
                    self.total_flits += pf as u64;
                    moved += 1;
                    if track_vc {
                        self.vc_flits[vc] += pf as u64;
                        self.note_unblocked(id, stamp);
                    }
                    if entry & DELIVERS != 0 {
                        // Consumed at the target: the just-taken slot drains
                        // too (its credit also returns after the tail).
                        self.resolve_delivered(id, stamp);
                    } else {
                        if track_vc {
                            // Dateline rule: a hop that descends the physical
                            // label closes a de Bruijn shift cycle, so the
                            // packet moves up one VC (capped at the top).
                            let next = self.machine.graph().csr().1[slot] as usize;
                            if vc + 1 < vcs
                                && implicit_route::dateline_crossing(here as u32, next as u32)
                            {
                                self.vc[id] = (vc + 1) as u8;
                            }
                        }
                        self.advance_route(id, slot);
                        self.queued_next[wi] |= 1u64 << (id & 63);
                    }
                } else if park
                    && (!credit_free || (link_claim == stamp && self.blocked_head[gidx] != NONE_ID))
                {
                    // Blocked on the gate itself: zero credits on this VC's
                    // buffer (which only return at a cycle boundary), or a
                    // link claim lost while the gate already has a queue.
                    // Everyone queued on a gate sits in the same upstream
                    // node and shares the same port, link claim and credit
                    // counter, so parking is exact: the sorted queue's head
                    // is woken by the credit return or the served-slot claim
                    // expiry, and nothing behind the head could have moved
                    // anyway. A claim loser finding an empty queue just
                    // retries — a one-cycle wait is cheaper as a rescan than
                    // as a park/wake round trip, and long waits seed queues
                    // through the credit counter first.
                    self.note_blocked(id, stamp);
                    self.park_on_slot(id, gidx);
                } else {
                    // Blocked on the node's output port alone (`SinglePort`,
                    // port taken by a packet leaving over a different link),
                    // on a still-streaming wormhole body, or running the
                    // naive rescan: re-examine next cycle, when per-cycle
                    // claims expire (a streaming link re-fails cheaply until
                    // its serve event lands).
                    self.note_blocked(id, stamp);
                    self.queued_next[wi] |= 1u64 << (id & 63);
                }
            }
        }
        std::mem::swap(&mut self.queued_now, &mut self.queued_next);
        self.cycle += 1;
        CycleEvents {
            cycle: stamp,
            moved,
            injected,
            credits_applied,
            faults_fired,
            live: self.in_flight,
            pending_injections: (self.pending_inject.len() - self.inject_pos) as u64,
        }
    }

    /// Steps until cycle `horizon` (capped by `max_cycles`), the workload
    /// drains, or the network hard-deadlocks. A hard deadlock — only
    /// possible under bounded-buffer flow control — is proven, not guessed:
    /// a cycle in which nothing moved, no timed credit return or claim
    /// expiry is in flight, and no injection or fault remains scheduled can
    /// never be followed by a different one. The per-cycle loop performs no
    /// allocation.
    // analyzer: alloc-free
    pub fn run_until(&mut self, horizon: u32) {
        let horizon = horizon.min(self.config.max_cycles);
        while (self.in_flight > 0 || self.inject_pos < self.pending_inject.len())
            && self.cycle < horizon
        {
            let events = self.step();
            if events.moved == 0
                && events.injected == 0
                && events.faults_fired == 0
                && self.in_flight > 0
                && !self.credits_pending()
                && !self.serves_pending()
                && self.inject_pos >= self.pending_inject.len()
                && self.schedule_pos >= self.schedule.len()
                && self.link_schedule_pos >= self.link_schedule.len()
            {
                self.deadlocked = true;
                break;
            }
        }
    }

    /// Steps until the workload drains, `max_cycles` is hit, or the network
    /// hard-deadlocks. The per-cycle loop performs no allocation (the final
    /// report does on first use; see [`CongestionSim::run`]).
    pub fn run_to_quiescence(&mut self) {
        self.run_until(self.config.max_cycles);
    }

    /// Runs until the workload drains, `max_cycles` is hit, or the network
    /// hard-deadlocks. Returns the final report.
    pub fn run(&mut self) -> CongestionReport {
        self.run_to_quiescence();
        self.report()
    }

    /// Sorts the latencies recorded since the last call and merges them
    /// into the sorted prefix through a reused scratch buffer: repeated
    /// (windowed) report calls pay O(new log new + n) instead of
    /// re-collecting and sorting everything.
    fn ensure_latencies_sorted(&mut self) {
        let n = self.latencies.len();
        if self.lat_sorted == n {
            return;
        }
        self.latencies[self.lat_sorted..].sort_unstable();
        if self.lat_sorted > 0 {
            self.lat_scratch.clear();
            self.lat_scratch.reserve(n);
            {
                let (head, tail) = self.latencies.split_at(self.lat_sorted);
                let (mut i, mut j) = (0, 0);
                while i < head.len() && j < tail.len() {
                    if head[i] <= tail[j] {
                        self.lat_scratch.push(head[i]);
                        i += 1;
                    } else {
                        self.lat_scratch.push(tail[j]);
                        j += 1;
                    }
                }
                self.lat_scratch.extend_from_slice(&head[i..]);
                self.lat_scratch.extend_from_slice(&tail[j..]);
            }
            std::mem::swap(&mut self.latencies, &mut self.lat_scratch);
        }
        self.lat_sorted = self.latencies.len();
    }

    /// The report for the run so far. Latencies are measured from each
    /// packet's injection cycle (which is 0 for the batch `load_*` APIs)
    /// and maintained incrementally at delivery time; `&mut self` lets the
    /// summary reuse the engine's sorted-merge scratch instead of
    /// rebuilding and re-sorting the full vector per call.
    pub fn report(&mut self) -> CongestionReport {
        self.ensure_latencies_sorted();
        // Fold still-blocked spans (up to the report cycle) into a copy of
        // the per-VC head-of-line counters without disturbing the live
        // accumulators — a deadlocked report shows where the wait sits, and
        // a later report stays consistent with continued stepping.
        let mut vc_hol = self.vc_hol_blocked_cycles.clone();
        if self.track_vc {
            for id in 0..self.in_network.len() {
                if self.in_network[id] && self.blocked_since[id] != NEVER {
                    vc_hol[self.vc[id] as usize] += (self.cycle - self.blocked_since[id]) as u64;
                }
            }
        }
        CongestionReport {
            cycles: self.cycle,
            injected: self.inject_at.len() as u64,
            delivered: self.delivered,
            dropped: self.dropped,
            total_flits: self.total_flits,
            completed: self.in_flight == 0 && self.inject_pos >= self.pending_inject.len(),
            deadlocked: self.deadlocked,
            vc_flits: self.vc_flits.clone(),
            vc_hol_blocked_cycles: vc_hol,
            latency: LatencySummary::from_sorted(&self.latencies),
        }
    }

    /// Per-packet outcome: `(inject_cycle, delivered_cycle, dropped_cycle)`
    /// with `None` for "not (yet)". Drives the open-loop measurement-window
    /// accounting; `id` indexes packets in load order.
    pub fn packet_outcome(&self, id: usize) -> (u32, Option<u32>, Option<u32>) {
        let lift = |c: u32| if c == NEVER { None } else { Some(c) };
        (
            self.inject_at[id],
            lift(self.delivered_at[id]),
            lift(self.dropped_at[id]),
        )
    }

    /// Flit counts per directed link, heaviest first: the link-utilisation
    /// map (allocates; call after the run).
    pub fn link_loads(&self) -> Vec<(NodeId, NodeId, u64)> {
        let (offsets, neighbors) = self.machine.graph().csr();
        let mut loads = Vec::new();
        for u in 0..self.machine.node_count() {
            let row = offsets[u] as usize..offsets[u + 1] as usize;
            for (slot, &v) in neighbors[row.clone()]
                .iter()
                .enumerate()
                .map(|(i, v)| (row.start + i, v))
            {
                if self.link_flits[slot] > 0 {
                    loads.push((u, v as NodeId, self.link_flits[slot]));
                }
            }
        }
        loads.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        loads
    }

    /// The heaviest per-link flit count (0 before any movement).
    pub fn max_link_load(&self) -> u64 {
        self.link_flits.iter().copied().max().unwrap_or(0)
    }

    /// Rewinds all cycle-clock state (claims, credits, queues, metrics,
    /// dynamic deaths) to the pre-run zero without touching the packet
    /// table. Shared by [`CongestionSim::reset`] and
    /// [`CongestionSim::clear_workload`].
    fn rewind_cycle_state(&mut self) {
        for w in &mut self.queued_now {
            *w = 0;
        }
        for w in &mut self.queued_next {
            *w = 0;
        }
        self.latencies.clear();
        self.lat_sorted = 0;
        self.delivered = 0;
        self.dropped = 0;
        self.in_flight = 0;
        self.inject_pos = 0;
        self.deadlocked = false;
        let depth = self.flow_depth;
        for gate in &mut self.links {
            gate.claim = NEVER;
            gate.credits = depth;
        }
        self.credit_fifo.clear();
        self.credit_fifo_pos = 0;
        for m in &mut self.credit_mark {
            *m = 0;
        }
        for h in &mut self.blocked_head {
            *h = NONE_ID;
        }
        for t in &mut self.blocked_tail {
            *t = NONE_ID;
        }
        self.served_fifo.clear();
        self.served_fifo_pos = 0;
        for v in &mut self.vc {
            *v = 0;
        }
        for b in &mut self.blocked_since {
            *b = NEVER;
        }
        for f in &mut self.vc_flits {
            *f = 0;
        }
        for c in &mut self.vc_hol_blocked_cycles {
            *c = 0;
        }
        for &d in &self.dead_list {
            self.dead[d as usize] = false;
        }
        self.dead_list.clear();
        self.schedule_pos = 0;
        for &s in &self.dead_link_list {
            self.dead_link[s as usize] = false;
        }
        self.dead_link_list.clear();
        self.link_schedule_pos = 0;
        self.cycle = 0;
        self.total_flits = 0;
        for f in &mut self.link_flits {
            *f = 0;
        }
        for c in &mut self.node_claim {
            *c = NEVER;
        }
    }

    /// Rewinds the engine to the post-load state — same packets, same fault
    /// schedule, cycle 0 — without touching the allocator, so a warmed
    /// engine can be re-run for benchmarking (`perf_report`) and for the
    /// counting-allocator harness.
    pub fn reset(&mut self) {
        self.path.truncate(self.loaded_path_len as usize);
        let segs = self.loaded_seg_len as usize;
        self.seg_start.truncate(segs);
        self.seg_end.truncate(segs);
        self.seg_home_start.truncate(segs);
        self.seg_home_end.truncate(segs);
        self.rewind_cycle_state();
        // Restore the load-time bounds of every surviving segment: a
        // mid-run re-route repointed it at a spill region that the
        // truncations above just reclaimed.
        for s in 0..segs {
            self.seg_start[s] = self.seg_home_start[s];
            self.seg_end[s] = self.seg_home_end[s];
        }
        for id in 0..self.inject_at.len() {
            // An implicit packet that materialized mid-run took a spill
            // segment past the load watermark; it goes back to riding the
            // generator.
            if self.seg_of[id] != SEG_NONE && self.seg_of[id] >= self.loaded_seg_len {
                self.seg_of[id] = SEG_NONE;
            }
            if self.resolved_at_load[id] == NEVER {
                if self.origin[id] != NO_LOGICAL {
                    let (entry, pos, rem) =
                        self.implicit_entry(self.origin[id], self.logical_target[id]);
                    self.entry[id] = entry;
                    self.imp_pos[id] = pos;
                    self.imp_rem[id] = rem;
                    self.cursor[id] = IMPLICIT_ACTIVE;
                } else {
                    let start = self.seg_start[self.seg_of[id] as usize];
                    self.cursor[id] = start;
                    self.entry[id] = self.path[start as usize];
                }
            }
            self.occupied_slot[id] = NO_SLOT;
            self.in_network[id] = false;
            if self.resolved_at_load[id] == NEVER {
                self.delivered_at[id] = NEVER;
                self.dropped_at[id] = NEVER;
                if self.inject_at[id] == 0 {
                    self.queue_now(id);
                    self.in_network[id] = true;
                    self.in_flight += 1;
                }
                // Timed packets re-enter through `pending_inject`.
            } else if self.delivered_at[id] != NEVER {
                // Load-time outcomes (zero-hop delivery, infeasible-route
                // drop) were never overwritten by the run; re-count them.
                self.delivered_at[id] = self.resolved_at_load[id];
                self.delivered += 1;
                self.latencies.push(0);
            } else {
                self.dropped_at[id] = self.resolved_at_load[id];
                self.dropped += 1;
            }
        }
    }

    /// Discards the loaded workload and fault schedule entirely — keeping
    /// the machine, the flow-control state and every buffer's capacity —
    /// so one warmed engine can `load_*` and run many different workloads
    /// (the parallel sweep harness keeps one engine per worker).
    pub fn clear_workload(&mut self) {
        self.rewind_cycle_state();
        self.path.clear();
        self.entry.clear();
        for v in [
            &mut self.seg_start,
            &mut self.seg_end,
            &mut self.seg_home_start,
            &mut self.seg_home_end,
            &mut self.seg_of,
            &mut self.cursor,
            &mut self.imp_pos,
            &mut self.imp_rem,
            &mut self.origin,
            &mut self.logical_target,
            &mut self.inject_at,
            &mut self.occupied_slot,
            &mut self.blocked_next,
            &mut self.blocked_since,
            &mut self.delivered_at,
            &mut self.dropped_at,
            &mut self.resolved_at_load,
            &mut self.pending_inject,
        ] {
            v.clear();
        }
        self.in_network.clear();
        self.vc.clear();
        self.queued_now.clear();
        self.queued_next.clear();
        self.schedule.clear();
        self.link_schedule.clear();
        self.open_loop_sources = 0;
        self.loaded_path_len = 0;
        self.loaded_seg_len = 0;
        // The implicit context dies with the workload: the next load may
        // come through a different placement or radix.
        self.imp_ctx = false;
        self.imp_mask = 0;
        self.imp_place.clear();
    }

    /// Bytes of heap capacity currently devoted to per-packet route state —
    /// the path arena, segment table, cached entries, shift registers and
    /// cursors. Implicit workloads keep this O(packets) regardless of `h`;
    /// materialized ones pay O(packets × h) for the arena. Reported into
    /// `BENCH_perf.json` by the perf harness so the implicit-routing win is
    /// a tracked number.
    pub fn route_state_bytes(&self) -> usize {
        use std::mem::size_of;
        self.path.capacity() * size_of::<u64>()
            + self.entry.capacity() * size_of::<u64>()
            + (self.seg_start.capacity()
                + self.seg_end.capacity()
                + self.seg_home_start.capacity()
                + self.seg_home_end.capacity()
                + self.seg_of.capacity()
                + self.cursor.capacity()
                + self.imp_pos.capacity()
                + self.imp_rem.capacity()
                + self.origin.capacity()
                + self.imp_place.capacity())
                * size_of::<u32>()
    }
}

/// What one [`CongestionSim::step`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleEvents {
    /// The cycle that was simulated.
    pub cycle: u32,
    /// Flits that moved.
    pub moved: u64,
    /// Open-loop packets that entered the network this cycle.
    pub injected: u64,
    /// Credits returned last cycle that became usable this cycle.
    pub credits_applied: u64,
    /// Processors plus directed links killed by the fault schedules this
    /// cycle.
    pub faults_fired: usize,
    /// Packets still in flight afterwards.
    pub live: u64,
    /// Loaded packets whose injection cycle has not arrived yet.
    pub pending_injections: u64,
}

impl CycleEvents {
    /// True when the network is drained (nothing in flight and nothing
    /// still waiting to inject).
    pub fn is_idle(&self) -> bool {
        self.live == 0 && self.pending_injections == 0
    }
}

/// Outcome of a [`run_recovery`] scenario.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct RecoveryOutcome {
    /// The full congestion report of the run (pre- and post-fault cycles).
    pub report: CongestionReport,
    /// The cycle the (first) fault fired.
    pub fault_cycle: u32,
    /// Cycles from the fault until the network drained — the recovery
    /// latency the static analysis could never measure.
    pub drain_cycles: u32,
    /// Packets lost *with* the dying processors (they cannot be saved).
    pub lost_on_dead_nodes: u64,
    /// In-flight packets re-routed by the online reconfiguration.
    pub rerouted: u64,
}

/// Runs the paper's full online-recovery story on the fault-tolerant
/// machine `B^k(2,h)`, cycle-accurately:
///
/// 1. Route `pairs` (logical, on the target `B(2,h)`) obliviously through
///    the initial zero-fault placement and start the clock.
/// 2. At each scheduled fault, processors die mid-run; packets hosted on
///    them are lost.
/// 3. The same cycle, the runtime diagnoses the accumulated fault set,
///    performs `reconfigure_verified`, re-targets every surviving in-flight
///    packet at its logical target's *new* physical image and re-routes it
///    through the surviving machine.
/// 4. The run drains; `drain_cycles` is the measured recovery latency.
///
/// Returns an error if the fault schedule exceeds the construction's
/// budget `k` (reconfiguration is only guaranteed below it).
pub fn run_recovery(
    ft: &FtDeBruijn2,
    pairs: &[(NodeId, NodeId)],
    fault_schedule: &[(u32, NodeId)],
    port_model: PortModel,
    config: CongestionConfig,
) -> Result<RecoveryOutcome, SimError> {
    // Budget-check the *distinct* processors the schedule kills (a node
    // named at several cycles dies once), surfacing over-budget schedules
    // as a simulation error instead of panicking inside reconfigure().
    let mut nodes: Vec<NodeId> = fault_schedule.iter().map(|&(_, node)| node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    if nodes.len() > ft.k() {
        return Err(SimError::FaultBudgetExceeded {
            faults: nodes.len(),
            budget: ft.k(),
        });
    }
    let machine = PhysicalMachine::new(ft.graph().clone(), port_model);
    let initial = ft.reconfigure(&FaultSet::empty(ft.node_count()));
    let mut sim = CongestionSim::new(machine, config);
    sim.load_oblivious(ft.target(), &initial, pairs);
    for &(cycle, node) in fault_schedule {
        sim.schedule_fault(cycle, node);
    }
    let mut fault_cycle = NEVER;
    let mut lost_on_dead_nodes = 0;
    let mut rerouted = 0;
    while sim.counts().3 > 0 && sim.cycle() < config.max_cycles {
        // Fire due faults *before* this cycle's movement so the online
        // reconfiguration can re-target in-flight packets the same cycle the
        // processors die — packets lost are exactly those hosted on them.
        let before_drop = sim.counts().2;
        if sim.fire_due_faults() > 0 {
            if fault_cycle == NEVER {
                fault_cycle = sim.cycle();
            }
            lost_on_dead_nodes += sim.counts().2 - before_drop;
            // Online reconfiguration: diagnose, re-embed, drain.
            let faults = sim.current_fault_set();
            let placement =
                ft.reconfigure_verified(&faults)
                    .map_err(|_| SimError::ReconfigurationFailed {
                        faults: faults.len(),
                    })?;
            let (r, _, _) = sim.retarget_and_reroute(&placement);
            rerouted += r;
        }
        sim.step();
    }
    let report = sim.report();
    let drain_cycles = if fault_cycle == NEVER {
        0
    } else {
        report.cycles - fault_cycle
    };
    Ok(RecoveryOutcome {
        report,
        fault_cycle: if fault_cycle == NEVER { 0 } else { fault_cycle },
        drain_cycles,
        lost_on_dead_nodes,
        rerouted,
    })
}

/// One point on a latency–throughput curve: the measured outcome of an
/// open-loop run at a fixed offered load.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct OpenLoopReport {
    /// The requested injection probability (packets/node/cycle).
    pub offered_load: f64,
    /// The realized injection rate over the measurement window.
    pub offered_realized: f64,
    /// Delivered throughput: packets *delivered during* the measurement
    /// window, per node per cycle. This is the curve that plateaus at
    /// saturation under [`FlowControl::Infinite`] and rolls over (tree
    /// saturation, deadlock) under [`FlowControl::CreditBased`].
    pub throughput: f64,
    /// Fraction of window-injected packets delivered by the end of the run
    /// (drain included).
    pub accepted: f64,
    /// Latency distribution over window-injected, delivered packets,
    /// measured from injection to delivery.
    pub latency: LatencySummary,
    /// Fixed-bin histogram over the same latencies.
    pub histogram: crate::metrics::LatencyHistogram,
    /// Packets injected during the measurement window.
    pub window_injected: u64,
    /// Of those, packets delivered by the end of the run.
    pub window_delivered: u64,
    /// All injections with `inject_cycle <` window end (warm-up included).
    pub cum_injected_by_window_end: u64,
    /// All deliveries with `delivered_cycle <` window end. Causality bounds
    /// this by `cum_injected_by_window_end` — the conservation side of
    /// "delivered throughput never exceeds offered load".
    pub cum_delivered_by_window_end: u64,
    /// Whether the run ended in a hard buffer deadlock.
    pub deadlocked: bool,
    /// Cycles actually simulated.
    pub cycles: u32,
}

/// The driver-facing surface of a congestion engine: everything the
/// open-loop measurement and sweep drivers need, implemented by both the
/// single-table [`CongestionSim`] and the sharded
/// [`super::shard::ShardedSim`] (which must produce byte-identical results
/// for any shard count).
pub trait CongestionEngine {
    /// Steps until cycle `horizon`, the workload drains, or a hard deadlock
    /// is proven.
    fn run_until(&mut self, horizon: u32);
    /// `(injected, delivered, dropped, in_flight)` so far.
    fn counts(&self) -> (u64, u64, u64, u64);
    /// Per-packet `(inject_cycle, delivered_cycle, dropped_cycle)` with
    /// `None` for "not (yet)"; `id` indexes packets in load order.
    fn packet_outcome(&self, id: usize) -> (u32, Option<u32>, Option<u32>);
    /// The current cycle.
    fn cycle(&self) -> u32;
    /// Whether the run ended in a proven hard buffer deadlock.
    fn deadlocked(&self) -> bool;
    /// Logical sources behind the last timed load (0 = none loaded).
    fn open_loop_sources(&self) -> u32;
    /// Physical node count of the machine.
    fn node_count(&self) -> usize;
    /// The final report (sorts latencies on first call).
    fn report(&mut self) -> CongestionReport;
}

impl CongestionEngine for CongestionSim {
    fn run_until(&mut self, horizon: u32) {
        CongestionSim::run_until(self, horizon);
    }
    fn counts(&self) -> (u64, u64, u64, u64) {
        CongestionSim::counts(self)
    }
    fn packet_outcome(&self, id: usize) -> (u32, Option<u32>, Option<u32>) {
        CongestionSim::packet_outcome(self, id)
    }
    fn cycle(&self) -> u32 {
        CongestionSim::cycle(self)
    }
    fn deadlocked(&self) -> bool {
        self.deadlocked
    }
    fn open_loop_sources(&self) -> u32 {
        self.open_loop_sources
    }
    fn node_count(&self) -> usize {
        self.machine.node_count()
    }
    fn report(&mut self) -> CongestionReport {
        CongestionSim::report(self)
    }
}

/// Drives an engine already loaded with an open-loop schedule (see
/// [`CongestionSim::load_oblivious_timed`]) to the spec's horizon and
/// computes the measurement-window statistics. The cycle loop is
/// allocation-free; the statistics pass at the end allocates (latency sort,
/// histogram). Reusable after [`CongestionSim::reset`].
pub fn measure_open_loop(
    sim: &mut impl CongestionEngine,
    spec: &crate::workload::OpenLoopSpec,
) -> OpenLoopReport {
    // Rates are per logical source: on a B^k(2,h) host the machine has
    // 2^h + k processors but only the 2^h logical nodes inject.
    let n = if sim.open_loop_sources() > 0 {
        sim.open_loop_sources() as u64
    } else {
        sim.node_count() as u64
    };
    let (w0, w1) = spec.window();
    sim.run_until(spec.horizon());

    let packets = sim.counts().0 as usize;
    let mut window_injected = 0u64;
    let mut window_delivered = 0u64;
    let mut window_deliveries_in_window = 0u64;
    let mut cum_injected_by_window_end = 0u64;
    let mut cum_delivered_by_window_end = 0u64;
    let mut latencies: Vec<u32> = Vec::new();
    // Bins of 2 cycles spanning 4x the window — past that, overflow.
    let mut histogram =
        crate::metrics::LatencyHistogram::new(2, (2 * spec.measure_cycles).max(8) as usize);
    for id in 0..packets {
        let (inject, delivered, _) = sim.packet_outcome(id);
        if inject < w1 {
            cum_injected_by_window_end += 1;
        }
        if let Some(d) = delivered {
            if d < w1 {
                cum_delivered_by_window_end += 1;
            }
            if d >= w0 && d < w1 {
                window_deliveries_in_window += 1;
            }
        }
        if inject >= w0 && inject < w1 {
            window_injected += 1;
            if let Some(d) = delivered {
                window_delivered += 1;
                let lat = d - inject;
                latencies.push(lat);
                histogram.record(lat);
            }
        }
    }
    let window_capacity = (n * spec.measure_cycles as u64) as f64;
    OpenLoopReport {
        offered_load: spec.offered_load,
        offered_realized: window_injected as f64 / window_capacity,
        throughput: window_deliveries_in_window as f64 / window_capacity,
        accepted: if window_injected == 0 {
            1.0
        } else {
            window_delivered as f64 / window_injected as f64
        },
        latency: LatencySummary::from_latencies(&mut latencies),
        histogram,
        window_injected,
        window_delivered,
        cum_injected_by_window_end,
        cum_delivered_by_window_end,
        deadlocked: sim.deadlocked(),
        cycles: sim.cycle(),
    }
}

/// Builds a [`CongestionSim`] for `machine`, loads the open-loop schedule
/// the spec describes (oblivious de Bruijn routes through `placement`), and
/// measures one latency–throughput point. The offered-load sweep drivers in
/// `ftdb-analysis` call this once per load.
pub fn run_open_loop(
    db: &DeBruijn2,
    placement: &Embedding,
    machine: PhysicalMachine,
    config: CongestionConfig,
    spec: &crate::workload::OpenLoopSpec,
) -> OpenLoopReport {
    let injections = crate::workload::open_loop_injections(db.node_count(), spec);
    let mut sim = CongestionSim::new(machine, config);
    sim.load_oblivious_timed(db, placement, &injections);
    measure_open_loop(&mut sim, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::run_logical_workload;
    use crate::workload;
    use rand::SeedableRng;

    fn healthy_sim(h: usize, port: PortModel) -> (DeBruijn2, CongestionSim) {
        let db = DeBruijn2::new(h);
        let machine = PhysicalMachine::new(db.graph().clone(), port);
        let sim = CongestionSim::new(machine, CongestionConfig::default());
        (db, sim)
    }

    #[test]
    fn healthy_permutation_delivers_everything_with_static_hop_counts() {
        let (db, mut sim) = healthy_sim(5, PortModel::MultiPort);
        let n = db.node_count();
        let placement = Embedding::identity(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let pairs = workload::permutation_pairs(n, &mut rng);
        sim.load_oblivious(&db, &placement, &pairs);
        let report = sim.run();
        assert!(report.completed);
        assert_eq!(report.delivered, n as u64);
        assert_eq!(report.dropped, 0);
        // Congestion changes *when* flits move, never *how many*: total
        // flits equals the static kernels' total hop count.
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let stats = run_logical_workload(&db, &placement, &machine, &pairs);
        assert_eq!(report.total_flits, stats.total_hops);
        // Latency is at least the hop count and at most the full run.
        assert!(report.latency.max as usize >= stats.max_hops.saturating_sub(1));
        assert!(report.cycles as u64 >= stats.max_hops as u64);
    }

    #[test]
    fn conservation_holds_every_cycle() {
        let (db, mut sim) = healthy_sim(4, PortModel::SinglePort);
        let n = db.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let pairs = workload::uniform_pairs(n, 3 * n, &mut rng);
        sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
        sim.schedule_fault(2, 3);
        sim.schedule_fault(4, 9);
        loop {
            let (injected, delivered, dropped, in_flight) = sim.counts();
            assert_eq!(delivered + dropped + in_flight, injected);
            if in_flight == 0 {
                break;
            }
            sim.step();
        }
    }

    #[test]
    fn at_least_one_flit_moves_per_cycle_until_drained() {
        let (db, mut sim) = healthy_sim(4, PortModel::SinglePort);
        let n = db.node_count();
        sim.load_oblivious(&db, &Embedding::identity(n), &workload::all_to_one(n, 0));
        loop {
            let events = sim.step();
            if events.is_idle() {
                break;
            }
            assert!(events.moved >= 1, "live cycle with no movement (deadlock)");
        }
    }

    #[test]
    fn zero_hop_packets_are_delivered_at_injection() {
        let (db, mut sim) = healthy_sim(3, PortModel::MultiPort);
        // 0 and 7 are the all-zeros/all-ones labels: the only self-routes
        // whose digit-shifting path is empty (every shift is a self-loop).
        sim.load_oblivious(
            &db,
            &Embedding::identity(db.node_count()),
            &[(7, 7), (0, 0)],
        );
        let report = sim.run();
        assert_eq!(report.delivered, 2);
        assert_eq!(report.cycles, 0);
        assert_eq!(report.latency.max, 0);
    }

    #[test]
    fn load_time_infeasible_packets_count_as_dropped() {
        let db = DeBruijn2::new(4);
        let n = db.node_count();
        let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(1);
        let mut sim = CongestionSim::new(machine, CongestionConfig::default());
        // (5, 1) ends at the fault; (n, 0) is out of range; (10, 5) routes
        // clear of node 1 (10 → 4 → 9 → 2 → 5).
        sim.load_oblivious(&db, &Embedding::identity(n), &[(5, 1), (n, 0), (10, 5)]);
        let report = sim.run();
        assert_eq!(report.injected, 3);
        assert_eq!(report.dropped, 2);
        assert_eq!(report.delivered, 1);
    }

    #[test]
    fn single_port_is_slower_than_multi_port_on_contended_workloads() {
        let h = 5;
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let pairs = workload::uniform_pairs(n, 4 * n, &mut rng);
        let mut cycles = Vec::new();
        for port in [PortModel::MultiPort, PortModel::SinglePort] {
            let machine = PhysicalMachine::new(db.graph().clone(), port);
            let mut sim = CongestionSim::new(machine, CongestionConfig::default());
            sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
            let report = sim.run();
            assert!(report.completed);
            assert_eq!(report.delivered, pairs.len() as u64);
            cycles.push(report.cycles);
        }
        assert!(
            cycles[1] > cycles[0],
            "SinglePort ({}) must be slower than MultiPort ({})",
            cycles[1],
            cycles[0]
        );
    }

    #[test]
    fn hot_spot_saturates_at_the_roots_port_limit() {
        let h = 5;
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let root = 5;
        let in_degree = db.graph().degree(root) as u64;
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(machine, CongestionConfig::default());
        sim.load_oblivious(&db, &Embedding::identity(n), &workload::all_to_one(n, root));
        let report = sim.run();
        assert!(report.completed);
        assert_eq!(report.delivered, n as u64);
        // All but the root's own packet must cross one of the root's
        // incident links on the final hop: the drain rate is capped by the
        // root's degree, which lower-bounds the makespan.
        let others = (n - 1) as u64;
        assert!(
            report.cycles as u64 >= others.div_ceil(in_degree),
            "cycles {} below the port-limit bound {}",
            report.cycles,
            others.div_ceil(in_degree)
        );
        // And the heaviest link (into the root) carries a commensurate
        // share of the traffic.
        assert!(sim.max_link_load() >= others / in_degree);
    }

    #[test]
    fn mid_run_fault_drops_or_reroutes_by_policy() {
        let h = 4;
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let mut dropped_by_policy = Vec::new();
        for response in [FaultResponse::Drop, FaultResponse::RerouteAdaptive] {
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            let mut sim = CongestionSim::new(
                machine,
                CongestionConfig {
                    fault_response: response,
                    ..CongestionConfig::default()
                },
            );
            // Everyone routes to node 2; node 1 (a predecessor of 2, so on
            // many routes) dies at cycle 1 while packets are in flight.
            sim.load_oblivious(&db, &Embedding::identity(n), &workload::all_to_one(n, 2));
            sim.schedule_fault(1, 1);
            let report = sim.run();
            assert!(report.completed);
            assert_eq!(report.delivered + report.dropped, n as u64);
            // Packets hosted on node 1 when it dies are lost either way.
            assert!(report.dropped >= 1, "the fault must cost something");
            dropped_by_policy.push(report.dropped);
        }
        // Reroute saves the through-traffic that the drop policy loses: only
        // packets *on* the dead node at the fault cycle stay lost.
        assert!(
            dropped_by_policy[1] < dropped_by_policy[0],
            "reroute ({}) must lose fewer packets than drop ({})",
            dropped_by_policy[1],
            dropped_by_policy[0]
        );
    }

    #[test]
    fn reroute_while_sitting_on_a_revisited_target_delivers() {
        // Oblivious routes may pass *through* the target: 6 -> 5 on B(2,3)
        // walks [6, 5, 2, 5]. Kill node 2 while the packet rests on 5: the
        // adaptive re-route to target 5 is the empty path, so the packet is
        // delivered on the spot — not left live with an exhausted route.
        let db = DeBruijn2::new(3);
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(
            machine,
            CongestionConfig {
                fault_response: FaultResponse::RerouteAdaptive,
                ..CongestionConfig::default()
            },
        );
        sim.load_oblivious(&db, &Embedding::identity(db.node_count()), &[(6, 5)]);
        sim.schedule_fault(1, 2);
        let report = sim.run();
        assert!(report.completed);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn reset_restores_routes_overwritten_by_mid_run_reroutes() {
        // A re-route points a packet at a spill segment past the load
        // watermark; reset() must restore the original route so a second
        // run is identical (and does not index into truncated storage).
        let db = DeBruijn2::new(5);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(
            machine,
            CongestionConfig {
                fault_response: FaultResponse::RerouteAdaptive,
                ..CongestionConfig::default()
            },
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        sim.load_oblivious(
            &db,
            &Embedding::identity(n),
            &workload::permutation_pairs(n, &mut rng),
        );
        sim.schedule_fault(1, 9);
        let first = sim.run();
        assert!(first.delivered > 0);
        sim.reset();
        let second = sim.run();
        assert_eq!(first, second);
    }

    #[test]
    fn recovery_budget_counts_distinct_processors() {
        // The same node scheduled at two cycles dies once: a k = 1
        // construction must accept it.
        let ft = FtDeBruijn2::new(4, 1);
        let n = ft.target().node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pairs = workload::permutation_pairs(n, &mut rng);
        let outcome = run_recovery(
            &ft,
            &pairs,
            &[(1, 2), (3, 2)],
            PortModel::MultiPort,
            CongestionConfig {
                fault_response: FaultResponse::RerouteAdaptive,
                ..CongestionConfig::default()
            },
        )
        .expect("one distinct fault is within a k = 1 budget");
        assert!(outcome.report.completed);
        assert_eq!(
            outcome.report.delivered + outcome.lost_on_dead_nodes,
            n as u64
        );
    }

    #[test]
    fn reset_reproduces_identical_runs() {
        let (db, mut sim) = healthy_sim(5, PortModel::SinglePort);
        let n = db.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let pairs = workload::uniform_pairs(n, 2 * n, &mut rng);
        sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
        sim.schedule_fault(3, 7);
        let first = sim.run();
        sim.reset();
        let counts = sim.counts();
        assert_eq!(counts.0, pairs.len() as u64);
        let second = sim.run();
        assert_eq!(first, second);
    }

    #[test]
    fn recovery_delivers_all_surviving_packets() {
        let (h, k) = (4, 2);
        let ft = FtDeBruijn2::new(h, k);
        let n = ft.target().node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let pairs = workload::permutation_pairs(n, &mut rng);
        let outcome = run_recovery(
            &ft,
            &pairs,
            &[(2, 3), (2, 11)],
            PortModel::MultiPort,
            CongestionConfig {
                fault_response: FaultResponse::RerouteAdaptive,
                ..Default::default()
            },
        )
        .expect("within fault budget");
        assert!(outcome.report.completed);
        assert_eq!(outcome.fault_cycle, 2);
        assert!(outcome.drain_cycles > 0);
        // Everything not sitting on a dying processor must be delivered.
        assert_eq!(
            outcome.report.delivered + outcome.lost_on_dead_nodes,
            n as u64
        );
        assert_eq!(outcome.report.dropped, outcome.lost_on_dead_nodes);
    }

    #[test]
    fn recovery_rejects_over_budget_schedules() {
        let ft = FtDeBruijn2::new(3, 1);
        let err = run_recovery(
            &ft,
            &[(0, 5)],
            &[(1, 2), (2, 3)],
            PortModel::MultiPort,
            CongestionConfig::default(),
        );
        assert!(err.is_err());
    }

    fn credit_config(buffer_depth: u32) -> CongestionConfig {
        CongestionConfig {
            flow_control: FlowControl::CreditBased { buffer_depth },
            ..CongestionConfig::default()
        }
    }

    fn open_spec(offered_load: f64, seed: u64) -> workload::OpenLoopSpec {
        workload::OpenLoopSpec {
            offered_load,
            process: workload::InjectionProcess::Bernoulli,
            warmup_cycles: 40,
            measure_cycles: 80,
            drain_cycles: 200,
            seed,
        }
    }

    #[test]
    fn credit_flow_preserves_delivery_and_flit_totals() {
        // Bounded buffers change *when* flits move, never *how many*: a
        // drained credit-based run delivers the same packets over the same
        // links as the unbounded engine, just later.
        let db = DeBruijn2::new(5);
        let n = db.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let pairs = workload::uniform_pairs(n, 3 * n, &mut rng);
        let mut reports = Vec::new();
        for config in [CongestionConfig::default(), credit_config(2)] {
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            let mut sim = CongestionSim::new(machine, config);
            sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
            let report = sim.run();
            assert!(report.completed, "run must drain (got {report:?})");
            reports.push(report);
        }
        assert_eq!(reports[0].delivered, reports[1].delivered);
        assert_eq!(reports[0].total_flits, reports[1].total_flits);
        assert!(
            reports[1].cycles >= reports[0].cycles,
            "bounded buffers cannot be faster than infinite ones"
        );
    }

    #[test]
    fn shallower_buffers_are_slower_on_contended_traffic() {
        let db = DeBruijn2::new(5);
        let n = db.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let pairs = workload::uniform_pairs(n, 4 * n, &mut rng);
        let mut cycles = Vec::new();
        for depth in [2u32, 8] {
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            let mut sim = CongestionSim::new(machine, credit_config(depth));
            sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
            let report = sim.run();
            assert!(report.completed);
            assert_eq!(report.delivered, pairs.len() as u64);
            cycles.push(report.cycles);
        }
        assert!(
            cycles[0] > cycles[1],
            "depth 2 ({}) must be slower than depth 8 ({})",
            cycles[0],
            cycles[1]
        );
    }

    #[test]
    fn depth_one_hot_spot_deadlocks_and_is_detected() {
        // Oblivious routes are fixed-length: a route may revisit its target
        // and continue, so all-to-one traffic wraps around de Bruijn shift
        // cycles (1 -> 2 -> 4 -> ... -> 1). With one buffer slot per link
        // those cycles fill and form a genuine cyclic wait — the engine
        // must *prove* the deadlock (report it, not spin to max_cycles),
        // and credit conservation must hold in the dead state. One more
        // slot per buffer breaks this particular cycle.
        let db = DeBruijn2::new(5);
        let n = db.node_count();
        let pairs = workload::all_to_one(n, 2);
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(machine, credit_config(1));
        sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
        let report = sim.run();
        assert!(report.deadlocked);
        assert!(!report.completed);
        assert!(
            report.cycles < 100,
            "deadlock must be detected promptly, not at max_cycles"
        );
        sim.check_credit_conservation()
            .expect("conservation in the dead state");

        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(machine, credit_config(2));
        sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
        let report = sim.run();
        assert!(report.completed, "depth 2 drains the same workload");
        assert!(!report.deadlocked);
        assert_eq!(report.delivered, n as u64);
    }

    fn vc_config(vcs: u32, buffer_depth: u32, switching: Switching) -> CongestionConfig {
        CongestionConfig {
            flow_control: FlowControl::VirtualChannel {
                vcs,
                buffer_depth,
                switching,
            },
            ..CongestionConfig::default()
        }
    }

    #[test]
    fn dateline_virtual_channels_drain_the_depth_one_hotspot() {
        // The ROADMAP acceptance test: the workload above wedges depth-1
        // single-channel buffers; two dateline-ordered VCs per link break
        // every shift-cycle credit loop it wraps, so the same buffers (one
        // slot per (link, vc)) drain it completely. One VC is just credit
        // flow with extra bookkeeping and must still deadlock — keeping the
        // detector honest.
        let db = DeBruijn2::new(5);
        let n = db.node_count();
        let pairs = workload::all_to_one(n, 2);
        for (vcs, wants_deadlock) in [(1u32, true), (2, false), (4, false)] {
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            let mut sim =
                CongestionSim::new(machine, vc_config(vcs, 1, Switching::StoreAndForward));
            sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
            let report = sim.run();
            assert_eq!(report.deadlocked, wants_deadlock, "vcs={vcs}");
            sim.check_credit_conservation()
                .expect("conservation with VC gates");
            assert_eq!(report.vc_flits.len(), vcs as usize);
            assert_eq!(report.vc_hol_blocked_cycles.len(), vcs as usize);
            assert_eq!(
                report.vc_flits.iter().sum::<u64>(),
                report.total_flits,
                "every flit crossed on exactly one VC"
            );
            if wants_deadlock {
                assert!(!report.completed);
                assert!(report.cycles < 100, "deadlock detected promptly");
            } else {
                assert!(report.completed, "vcs={vcs} must drain");
                assert_eq!(report.delivered, n as u64);
                assert!(
                    report.vc_flits.iter().all(|&f| f > 0),
                    "hot-spot traffic wraps the dateline, so every VC carries \
                     flits (got {:?})",
                    report.vc_flits
                );
            }
        }
    }

    #[test]
    fn single_vc_store_and_forward_is_credit_flow() {
        // `VirtualChannel {{ vcs: 1, .. }}` must reproduce `CreditBased`
        // cycle-for-cycle — the VC machinery degenerates to the historical
        // one-gate-per-slot layout (only the per-VC report vectors differ:
        // length 1 instead of empty).
        let db = DeBruijn2::new(4);
        let n = db.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let pairs = workload::uniform_pairs(n, 3 * n, &mut rng);
        for depth in [1u32, 2, 4] {
            let mut reports = Vec::new();
            for config in [
                credit_config(depth),
                vc_config(1, depth, Switching::StoreAndForward),
            ] {
                let machine = PhysicalMachine::new(db.graph().clone(), PortModel::SinglePort);
                let mut sim = CongestionSim::new(machine, config);
                sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
                reports.push(sim.run());
            }
            let (legacy, vc) = (&reports[0], &reports[1]);
            assert_eq!(legacy.cycles, vc.cycles, "depth={depth}");
            assert_eq!(legacy.delivered, vc.delivered);
            assert_eq!(legacy.total_flits, vc.total_flits);
            assert_eq!(legacy.deadlocked, vc.deadlocked);
            assert_eq!(legacy.latency, vc.latency);
            assert_eq!(legacy.vc_flits.len(), 0);
            assert_eq!(vc.vc_flits.len(), 1);
            assert_eq!(vc.vc_flits[0], vc.total_flits);
        }
    }

    #[test]
    fn wormhole_trains_multiply_flits_and_stretch_time() {
        // A `packet_flits`-flit train holds each link for `packet_flits`
        // cycles and moves `packet_flits` flits per hop: deliveries are
        // unchanged, the flit total scales exactly, and the run cannot be
        // faster than single-flit switching on the same buffers.
        let db = DeBruijn2::new(4);
        let n = db.node_count();
        let pairs = workload::bit_reversal_pairs(db.h());
        let pf = 4u32;
        let mut reports = Vec::new();
        for switching in [
            Switching::StoreAndForward,
            Switching::Wormhole { packet_flits: pf },
        ] {
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            let mut sim = CongestionSim::new(machine, vc_config(2, 2, switching));
            sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
            let report = sim.run();
            assert!(report.completed, "{switching:?} must drain");
            sim.check_credit_conservation()
                .expect("conservation under wormhole timing");
            reports.push(report);
        }
        let (saf, worm) = (&reports[0], &reports[1]);
        assert_eq!(saf.delivered, worm.delivered);
        assert_eq!(worm.total_flits, saf.total_flits * pf as u64);
        assert_eq!(
            worm.vc_flits.iter().sum::<u64>(),
            worm.total_flits,
            "per-VC flit split covers the trains"
        );
        assert!(
            worm.cycles > saf.cycles,
            "streaming bodies must hold links longer ({} vs {})",
            worm.cycles,
            saf.cycles
        );
    }

    #[test]
    fn credit_conservation_holds_every_cycle_with_faults_and_reroutes() {
        let db = DeBruijn2::new(5);
        let n = db.node_count();
        for response in [FaultResponse::Drop, FaultResponse::RerouteAdaptive] {
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            let mut sim = CongestionSim::new(
                machine,
                CongestionConfig {
                    fault_response: response,
                    flow_control: FlowControl::CreditBased { buffer_depth: 1 },
                    ..CongestionConfig::default()
                },
            );
            let mut rng = rand::rngs::StdRng::seed_from_u64(17);
            sim.load_oblivious(
                &db,
                &Embedding::identity(n),
                &workload::uniform_pairs(n, 4 * n, &mut rng),
            );
            // Kill two heavily-used processors while traffic is in flight:
            // without the kill-path slot release this leaks their input
            // buffers' credits and the invariant breaks.
            sim.schedule_fault(3, 1);
            sim.schedule_fault(5, 9);
            // Depth-1 buffers under this load may hard-deadlock (that is
            // the point of bounded buffers); conservation must hold right
            // through the deadlock, so step manually and stop once the
            // engine provably cannot change state again.
            let mut stuck = 0;
            loop {
                sim.check_credit_conservation()
                    .unwrap_or_else(|msg| panic!("{response:?}: {msg}"));
                let (injected, delivered, dropped, live) = sim.counts();
                assert_eq!(delivered + dropped + live, injected);
                if live == 0 {
                    break;
                }
                let events = sim.step();
                stuck = if events.moved == 0 && events.faults_fired == 0 {
                    stuck + 1
                } else {
                    0
                };
                if stuck > 2 {
                    break; // hard deadlock: state is now a fixed point
                }
            }
        }
    }

    #[test]
    fn open_loop_low_load_latency_matches_hop_count() {
        // At a trickle load on a healthy machine, contention is negligible:
        // every measured packet's latency is (close to) its hop count, and
        // throughput tracks the offered rate.
        let db = DeBruijn2::new(5);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let spec = open_spec(0.02, 42);
        let report = run_open_loop(
            &db,
            &Embedding::identity(n),
            machine,
            CongestionConfig::default(),
            &spec,
        );
        assert!(!report.deadlocked);
        assert!(report.window_injected > 0, "trickle load still injects");
        assert_eq!(
            report.accepted, 1.0,
            "an uncontended network delivers everything"
        );
        // Oblivious de Bruijn routes take at most h hops; with next to no
        // queueing the mean latency stays within a couple of cycles of it.
        assert!(
            report.latency.mean <= db.h() as f64 + 2.0,
            "trickle-load mean latency {} too high",
            report.latency.mean
        );
        assert_eq!(report.histogram.count(), report.window_delivered);
        assert!((report.throughput - report.offered_realized).abs() < 0.01);
    }

    #[test]
    fn open_loop_throughput_never_exceeds_cumulative_injections() {
        for depth in [0u32, 1, 2] {
            let config = if depth == 0 {
                CongestionConfig::default()
            } else {
                credit_config(depth)
            };
            let db = DeBruijn2::new(5);
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::SinglePort);
            let report = run_open_loop(
                &db,
                &Embedding::identity(db.node_count()),
                machine,
                config,
                &open_spec(0.8, 7),
            );
            assert!(
                report.cum_delivered_by_window_end <= report.cum_injected_by_window_end,
                "depth {depth}: delivered more than was injected"
            );
            assert!(report.window_delivered <= report.window_injected);
        }
    }

    #[test]
    fn open_loop_reset_reproduces_identical_runs() {
        let db = DeBruijn2::new(4);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let spec = open_spec(0.4, 3);
        let injections = workload::open_loop_injections(n, &spec);
        let mut sim = CongestionSim::new(machine, credit_config(1));
        sim.load_oblivious_timed(&db, &Embedding::identity(n), &injections);
        let first = measure_open_loop(&mut sim, &spec);
        sim.reset();
        let second = measure_open_loop(&mut sim, &spec);
        assert_eq!(first, second);
    }

    #[test]
    fn staggered_and_bernoulli_processes_both_drive_the_engine() {
        let db = DeBruijn2::new(4);
        let n = db.node_count();
        for process in [
            workload::InjectionProcess::Bernoulli,
            workload::InjectionProcess::Staggered,
        ] {
            let spec = workload::OpenLoopSpec {
                process,
                ..open_spec(0.25, 11)
            };
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            let report = run_open_loop(
                &db,
                &Embedding::identity(n),
                machine,
                credit_config(2),
                &spec,
            );
            assert!(report.window_injected > 0, "{process:?} injected nothing");
            assert!(report.window_delivered > 0);
            // Staggered injects on an exact period: realized load is within
            // one rounding step of the request; Bernoulli within noise.
            assert!(
                (report.offered_realized - spec.offered_load).abs() < 0.1,
                "{process:?}: realized {} vs offered {}",
                report.offered_realized,
                spec.offered_load
            );
        }
    }

    #[test]
    #[should_panic(expected = "before the already-queued cycle")]
    fn appending_an_earlier_injection_schedule_is_rejected() {
        // Two per-call-sorted loads that interleave badly would silently
        // inject the second batch late; the API must reject the append.
        let db = DeBruijn2::new(3);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(machine, CongestionConfig::default());
        sim.load_oblivious_timed(&db, &Embedding::identity(n), &[(10, 1, 2)]);
        sim.load_oblivious_timed(&db, &Embedding::identity(n), &[(2, 3, 4)]);
    }

    #[test]
    fn timed_zero_hop_packets_respect_faults_at_their_injection_cycle() {
        // A self-send whose digit-shift route collapses to a single node
        // (the all-zeros label) resolves at its *injection* cycle, not at
        // load: if the source dies first, the packet is dropped, exactly
        // like its non-zero-hop siblings from the same source.
        let db = DeBruijn2::new(3);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(machine, CongestionConfig::default());
        // Node 0 self-send at cycle 2 (before the kill) and cycle 10
        // (after); node 0 dies at cycle 5.
        sim.load_oblivious_timed(&db, &Embedding::identity(n), &[(2, 0, 0), (10, 0, 0)]);
        sim.schedule_fault(5, 0);
        let report = sim.run();
        assert_eq!(report.delivered, 1, "pre-fault self-send is consumed");
        assert_eq!(
            report.dropped, 1,
            "post-fault self-send dies with its source"
        );
        assert_eq!(report.latency.max, 0, "zero-hop delivery has latency 0");
        // And identically after a reset.
        sim.reset();
        assert_eq!(sim.run(), report);
    }

    #[test]
    fn mid_run_fault_with_credits_drops_and_returns_buffer_slots() {
        // The hot-spot pattern parks packets in node 2's input buffers; the
        // upstream node 1 dies while its own buffers hold through-traffic.
        // The run must still drain (no leaked credits) and conservation
        // must hold at every later cycle.
        let db = DeBruijn2::new(4);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(machine, credit_config(2));
        sim.load_oblivious(&db, &Embedding::identity(n), &workload::all_to_one(n, 2));
        sim.schedule_fault(2, 1);
        let report = sim.run();
        assert!(
            report.completed,
            "leaked credits would starve the drain: {report:?}"
        );
        assert!(report.dropped >= 1, "packets on the dead node are lost");
        assert_eq!(report.delivered + report.dropped, n as u64);
        sim.check_credit_conservation()
            .expect("post-run conservation");
    }

    #[test]
    fn naive_scan_and_wake_list_agree_on_canned_scenarios() {
        // The heavyweight randomized differential suite lives in
        // tests/tests/wakelist_differential.rs; this smoke pins the three
        // behaviours most likely to diverge: deadlock detection, mid-run
        // fault reroutes under credits, and open-loop timed injection.
        let db = DeBruijn2::new(5);
        let n = db.node_count();
        type Scenario = (CongestionConfig, Vec<(usize, usize)>, Vec<(u32, usize)>);
        let scenarios: Vec<Scenario> = vec![
            (credit_config(1), workload::all_to_one(n, 2), vec![]),
            (
                CongestionConfig {
                    fault_response: FaultResponse::RerouteAdaptive,
                    flow_control: FlowControl::CreditBased { buffer_depth: 2 },
                    ..CongestionConfig::default()
                },
                workload::uniform_pairs(n, 4 * n, &mut rand::rngs::StdRng::seed_from_u64(17)),
                vec![(3, 1), (5, 9)],
            ),
            (
                CongestionConfig::default(),
                workload::bit_reversal_pairs(5),
                vec![(2, 7)],
            ),
        ];
        for (config, pairs, faults) in scenarios {
            let mut outcomes = Vec::new();
            for engine in [EngineKind::WakeList, EngineKind::NaiveScan] {
                let machine = PhysicalMachine::new(db.graph().clone(), PortModel::SinglePort);
                let mut sim = CongestionSim::new(machine, CongestionConfig { engine, ..config });
                sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
                for &(cycle, node) in &faults {
                    sim.schedule_fault(cycle, node);
                }
                let report = sim.run();
                outcomes.push((report, sim.link_loads(), sim.counts()));
            }
            assert_eq!(outcomes[0], outcomes[1], "config {config:?}");
        }
    }

    #[test]
    fn clear_workload_reuses_the_engine_for_fresh_loads() {
        // One warmed engine cycling through different workloads (the
        // parallel sweep harness' per-worker reuse) must reproduce what a
        // freshly constructed engine reports for each of them.
        let db = DeBruijn2::new(4);
        let n = db.node_count();
        let spec_a = open_spec(0.3, 5);
        let spec_b = open_spec(0.6, 9);
        let fresh = |spec: &workload::OpenLoopSpec| {
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            run_open_loop(
                &db,
                &Embedding::identity(n),
                machine,
                credit_config(2),
                spec,
            )
        };
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(machine, credit_config(2));
        for spec in [&spec_a, &spec_b, &spec_a] {
            sim.clear_workload();
            let injections = workload::open_loop_injections(n, spec);
            sim.load_oblivious_timed(&db, &Embedding::identity(n), &injections);
            assert_eq!(measure_open_loop(&mut sim, spec), fresh(spec));
        }
        // A batch load with a fault schedule after an open-loop load: the
        // schedule and dynamic deaths must have been fully cleared too.
        sim.clear_workload();
        sim.load_oblivious(&db, &Embedding::identity(n), &workload::all_to_one(n, 2));
        sim.schedule_fault(2, 1);
        let reused = sim.run();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut reference = CongestionSim::new(machine, credit_config(2));
        reference.load_oblivious(&db, &Embedding::identity(n), &workload::all_to_one(n, 2));
        reference.schedule_fault(2, 1);
        assert_eq!(reused, reference.run());
    }

    #[test]
    fn repeated_reports_stay_consistent_while_stepping() {
        // report() merges incrementally-recorded latencies; interleaving it
        // with stepping must never disturb the final summary.
        let (db, mut sim) = healthy_sim(4, PortModel::MultiPort);
        let n = db.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let pairs = workload::uniform_pairs(n, 3 * n, &mut rng);
        sim.load_oblivious(&db, &Embedding::identity(n), &pairs);
        let mut windowed = Vec::new();
        loop {
            let events = sim.step();
            windowed.push(sim.report());
            if events.is_idle() {
                break;
            }
        }
        let final_windowed = windowed.last().expect("at least one cycle").clone();
        assert_eq!(final_windowed, sim.report());
        // And the windowed reports agree with a single-report reference run.
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut reference = CongestionSim::new(machine, CongestionConfig::default());
        reference.load_oblivious(&db, &Embedding::identity(n), &pairs);
        assert_eq!(reference.run(), final_windowed);
        // Delivered counts in the windows are non-decreasing.
        assert!(windowed
            .windows(2)
            .all(|w| w[0].delivered <= w[1].delivered));
    }

    #[test]
    fn link_loads_are_sorted_and_conserve_flits() {
        let (db, mut sim) = healthy_sim(4, PortModel::MultiPort);
        let n = db.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        sim.load_oblivious(
            &db,
            &Embedding::identity(n),
            &workload::permutation_pairs(n, &mut rng),
        );
        let report = sim.run();
        let loads = sim.link_loads();
        let total: u64 = loads.iter().map(|&(_, _, f)| f).sum();
        assert_eq!(total, report.total_flits);
        assert!(loads.windows(2).all(|w| w[0].2 >= w[1].2));
        assert_eq!(loads.first().map(|&(_, _, f)| f), Some(sim.max_link_load()));
    }
}
