//! Boundary-exchange messages for the sharded congestion engine.
//!
//! [`super::shard::ShardedSim`] partitions nodes (and therefore CSR link
//! slots) into contiguous ranges, one per shard. Within a cycle every
//! arbitration resource a packet contends for — its node's output port, its
//! outgoing link's claim stamp, that link's downstream buffer credits — is
//! owned by the shard hosting the packet's *current* node, so shards run
//! their cycle phases without synchronisation. The only cross-shard effects
//! are deferred to the cycle barrier, carried by the two message kinds
//! here:
//!
//! * a [`Flit`]: a packet crossed a shard boundary and its O(1) route state
//!   (plus, for the rare materialized packet, its remaining path) must move
//!   to the destination shard before the next cycle's examination pass;
//! * a credit return: a packet vacated (or drained) an input buffer whose
//!   link slot belongs to another shard. The single-table engine already
//!   defers every credit return by `packet_flits` cycles (its timed credit
//!   FIFO — at least one full cycle), so shipping a return at the barrier
//!   and re-enqueuing it at the owner with the same due cycle changes
//!   nothing observable.
//!
//! Batches travel over a vendored-`crossbeam` channel from the scoped
//! worker threads to the driver, which sorts them by `(dst, src)` before
//! applying — the deterministic merge that makes the report byte-identical
//! for any shard count and any thread interleaving. Flits within a batch
//! are already in examination order (ascending packet id = age), so the
//! sorted batches give a total (shard-id, packet-age) order.

/// A packet mid-migration: everything the destination shard needs to host
/// it. `entry` is already advanced to the node it just arrived on (the
/// source shard computes the O(1) shift-register step before sending, since
/// the graph is global).
#[derive(Clone, Debug)]
pub struct Flit {
    /// Global packet id (ids are global across shards; age order = id
    /// order everywhere).
    pub id: u32,
    /// Packed route entry at the arrival node (node, next-hop CSR slot,
    /// DELIVERS flag).
    pub entry: u64,
    /// Shift-register position after the pending hop (implicit packets).
    pub pos: u32,
    /// Sentinel-encoded remaining target bits (implicit packets).
    pub rem: u32,
    /// Global gate id (`slot * vcs + vc`) of the input buffer the packet
    /// occupies (owned by the *source* shard; it drains back there when the
    /// packet next moves), or `u32::MAX` when flow control is infinite.
    pub occupied_slot: u32,
    /// The packet's current virtual channel (0 outside VC flow control).
    pub vc: u8,
    /// Remaining packed path for a materialized (re-routed) packet,
    /// starting at the arrival node — empty for implicit packets, which
    /// need no path at all.
    pub path: Vec<u64>,
}

/// One shard's cycle output destined for one other shard, shipped at the
/// cycle barrier.
#[derive(Clone, Debug)]
pub struct BoundaryBatch {
    /// Sending shard.
    pub src: u32,
    /// Receiving shard.
    pub dst: u32,
    /// Packets that crossed into `dst` this cycle, in age order.
    pub flits: Vec<Flit>,
    /// Global gate ids (`slot * vcs + vc`) owned by `dst` whose buffers
    /// drained this cycle (one entry per returned credit; a gate may
    /// repeat).
    pub credits: Vec<u32>,
}

impl BoundaryBatch {
    /// An empty batch between `src` and `dst`.
    pub fn new(src: u32, dst: u32) -> Self {
        BoundaryBatch {
            src,
            dst,
            flits: Vec::new(),
            credits: Vec::new(),
        }
    }

    /// True when there is nothing to ship.
    pub fn is_empty(&self) -> bool {
        self.flits.is_empty() && self.credits.is_empty()
    }
}

/// The contiguous node partition: `node`'s shard among `shards` shards of
/// an `n`-node machine. Contiguous label ranges are exactly the de Bruijn
/// label-prefix (necklace) cut: every shard owns the necklaces rooted in
/// its prefix window, and a shift step changes the prefix by one digit, so
/// most hops stay inside a shard.
#[inline]
pub fn shard_of(node: usize, n: usize, shards: usize) -> usize {
    debug_assert!(node < n);
    node * shards / n
}

/// First node of `shard` under the same partition (the range is
/// `[shard_floor(s), shard_floor(s + 1))`).
#[inline]
pub fn shard_floor(shard: usize, n: usize, shards: usize) -> usize {
    // Smallest `node` with `node * shards >= shard * n`.
    (shard * n).div_ceil(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_exhaustive() {
        for n in [1usize, 2, 7, 64, 1 << 10] {
            for shards in [1usize, 2, 3, 4, 7] {
                let mut seen = 0;
                for s in 0..shards {
                    let lo = shard_floor(s, n, shards);
                    let hi = shard_floor(s + 1, n, shards);
                    assert!(lo <= hi);
                    for node in lo..hi {
                        assert_eq!(shard_of(node, n, shards), s, "n={n} shards={shards}");
                        seen += 1;
                    }
                }
                assert_eq!(seen, n, "every node in exactly one shard");
                assert_eq!(shard_floor(shards, n, shards), n);
            }
        }
    }
}
