//! Cycle-level congestion engine with dynamic fault injection.
//!
//! The static routing kernels in [`crate::routing`] answer *feasibility*
//! questions — can this packet reach its target, and over how many hops? The
//! paper's slowdown claims (SIM1/SIM2, the Section V "factor of 2" port
//! argument) are about *time under contention*, which feasibility cannot
//! see. This module adds the missing time dimension:
//!
//! * Packets advance **one hop per cycle** along a precomputed physical
//!   route (oblivious de Bruijn or adaptive BFS).
//! * Each **directed link carries at most one flit per cycle**.
//! * Per-node output arbitration follows the machine's [`PortModel`]:
//!   `SinglePort` processors send at most one flit per cycle in total
//!   (injection or forwarding), `MultiPort` processors send one per incident
//!   link — exactly the distinction Section V prices at "a factor of 2".
//! * Blocked packets wait in store-and-forward buffers. Under the default
//!   [`FlowControl::Infinite`] those buffers are unbounded FIFO queues;
//!   under [`FlowControl::CreditBased`] every directed link owns a bounded
//!   downstream input buffer guarded by a credit counter — a flit advances
//!   only when the downstream buffer has a free slot, and the credit
//!   returns one cycle after the slot drains. Bounded buffers are what let
//!   the engine reproduce saturation *collapse* (tree saturation,
//!   head-of-line blocking, and — on a single channel — genuine buffer
//!   deadlock, reported via [`CongestionReport::deadlocked`]), not just
//!   saturation throughput.
//! * [`FlowControl::VirtualChannel`] multiplexes `vcs` independent
//!   dateline-ordered virtual channels over each directed link (each with
//!   its own credit-guarded buffer), which breaks the de Bruijn shift-cycle
//!   credit loops that deadlock single-channel bounded buffers, and
//!   [`Switching::Wormhole`] streams multi-flit packets cut-through with
//!   the link held for the whole flit train. The full design — dateline
//!   deadlock-freedom argument included — is written up in
//!   `docs/CONGESTION.md`.
//!
//! Arbitration is deterministic oldest-first: packets are visited in age
//! order every cycle, and a packet claims its output port and link for the
//! cycle when it moves. Since the first examined packet always finds all
//! resources free, at least one flit moves per cycle and every run
//! terminates within `total-remaining-hops` cycles (or proves a deadlock).
//!
//! **Event-driven wake-list core.** Near saturation — where the offered-load
//! sweeps spend almost all their cycles — most live packets are blocked on a
//! full downstream buffer, and rescanning them every cycle is wasted work.
//! The engine therefore only examines packets whose gating resources could
//! have changed since their last examination:
//!
//! * A packet that fails on a **multi-cycle resource** (zero credits on its
//!   next link's buffer) parks on that link slot's blocked queue (an
//!   intrusive list over `blocked_head`/`blocked_next`) and is woken only
//!   when a credit returns to the slot — on ordinary credit return, on a
//!   fault kill releasing a dead processor's buffers, or on a drop/delivery
//!   draining the slot.
//! * A packet that fails on a **per-cycle resource** (output port taken
//!   under `SinglePort`, link claimed by an older packet) is re-examined
//!   the next cycle, when that claim expires — the cycle boundary *is* the
//!   release event for per-cycle resources, so their "blocked queue" is the
//!   next cycle's examination list.
//! * Rare whole-network events (a fault firing, a recovery driver
//!   re-targeting in-flight packets) wake every parked packet, because they
//!   can invalidate any packet's next hop.
//!
//! Because parked packets provably cannot move (credits only decrease within
//! a cycle), skipping them leaves every claim decision — and therefore every
//! report — byte-identical to the naive full rescan. The rescan is retained
//! as [`EngineKind::NaiveScan`] and the equivalence is enforced by a
//! differential property test (`tests/tests/wakelist_differential.rs`).
//! Wake-list bookkeeping aside, the hot path also precomputes each hop's CSR
//! link slot next to the node (one packed `u64` per path entry), so the
//! per-move neighbour search of earlier revisions is gone.
//!
//! **Dynamic faults.** A fault schedule (`Vec<(cycle, node)>`) kills
//! processors *mid-run*. A packet sitting on a dying node is lost with it.
//! A packet that later tries to enter a dead node reacts according to the
//! configured [`FaultResponse`]: dropped, or re-routed in place by a BFS
//! through the surviving machine. On a fault-tolerant machine the driver
//! [`run_recovery`] goes further: it performs the paper's online
//! reconfiguration (`reconfigure_verified`) the cycle the fault fires,
//! re-targets every in-flight packet at the logical target's new physical
//! image, and drains — measuring *recovery latency*, not just post-hoc
//! embeddability.
//!
//! A second schedule kills individual **directed links** (CSR edge slots)
//! mid-run — [`CongestionSim::schedule_link_fault`], the bulk
//! [`CongestionSim::schedule_link_faults`] over an
//! [`ftdb_core::LinkFaultSet`], and the sharded mirrors on
//! [`ShardedSim`]. A link kill is a *local* wake event: only the packets
//! parked on the dead slot's gates are flushed to re-examination (every
//! other packet's movability is untouched), the hazard check extends to
//! `dead_link[slot]`, and re-route BFS avoids dead slots via an edge
//! filter. Packets buffered downstream of a dead link keep flying — the
//! link died, not the receiving buffer — so credit conservation holds per
//! gate with no eviction scan. For traffic injected before the kill,
//! killing every slot incident to a node is report-identical to killing
//! the node itself (a differential test pins this; the models differ only
//! for *later* injections at that node, whose processor stays alive under
//! link faults), and node-fault-only schedules take exactly the
//! pre-link-fault code path. The reliability story — correlated bursts, Monte-Carlo
//! delivery/slowdown curves — is written up in `docs/RELIABILITY.md`.
//!
//! The steady-state cycle loop is allocation-free after loading, in the
//! spirit of PR 2: claims are epoch-stamped arrays indexed by CSR edge
//! slot, the examination lists and blocked queues are sized at load, and
//! [`CongestionSim::reset`] rewinds a loaded workload for reuse without
//! touching the allocator ([`CongestionSim::clear_workload`] additionally
//! lets one warmed engine serve a whole sweep of different workloads).
//!
//! **Implicit O(1) routing.** Oblivious de Bruijn routes are shift-register
//! walks: hop `i` of the route from `s` to `t` is computable in O(1) from
//! the current label and the remaining target bits, so the engine does not
//! need to materialize paths at all. [`implicit_route`] holds the digit-shift
//! next-hop generators (de Bruijn and shuffle-exchange); under the default
//! [`RouteSource::Implicit`] a packet carries O(1) route state (a packed
//! current entry plus a two-word shift register) instead of O(h) path
//! entries, which is what makes million-node runs fit in memory. Adaptive
//! loads and mid-run re-routes fall back to materialized segments spliced
//! into a shared side arena ([`RouteSource::Materialized`] forces the old
//! representation everywhere; the differential suite proves the two
//! byte-identical).
//!
//! **Sharded engine.** [`ShardedSim`] partitions the CSR graph along the
//! de Bruijn label-prefix (necklace) cut, gives each shard its own wake-list
//! core, and exchanges boundary flits/credits at cycle barriers over
//! channels with a deterministic (shard-id, packet-age) merge — the
//! [`CongestionReport`] is byte-identical to [`CongestionSim`] for any shard
//! count. See [`shard`] and [`boundary`].

pub mod boundary;
mod engine;
pub mod implicit_route;
pub mod shard;

pub use engine::{
    measure_open_loop, run_open_loop, run_recovery, CongestionConfig, CongestionEngine,
    CongestionReport, CongestionSim, CycleEvents, EngineKind, FaultResponse, FlowControl,
    OpenLoopReport, RecoveryOutcome, RouteSource, Switching,
};
pub use shard::ShardedSim;
