//! Traffic and value workload generators for the simulator.

use ftdb_graph::NodeId;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Uniform random `(source, target)` pairs over `n` logical nodes
/// (self-pairs allowed: they simply cost zero hops).
pub fn uniform_pairs<R: RngExt>(n: usize, count: usize, rng: &mut R) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
        .collect()
}

/// A random permutation workload: every node sends exactly one packet, and
/// every node receives exactly one packet.
pub fn permutation_pairs<R: RngExt>(n: usize, rng: &mut R) -> Vec<(NodeId, NodeId)> {
    let mut targets: Vec<NodeId> = (0..n).collect();
    targets.shuffle(rng);
    (0..n).zip(targets).collect()
}

/// The bit-reversal permutation workload, a classic adversarial pattern for
/// shuffle-based networks: node `x` sends to the bit-reversal of `x`
/// (over `h` bits).
pub fn bit_reversal_pairs(h: usize) -> Vec<(NodeId, NodeId)> {
    let n = 1usize << h;
    (0..n)
        .map(|x| {
            let mut rev = 0usize;
            for bit in 0..h {
                if x & (1 << bit) != 0 {
                    rev |= 1 << (h - 1 - bit);
                }
            }
            (x, rev)
        })
        .collect()
}

/// All-to-one (hot-spot) workload: every node sends one packet to `root`.
pub fn all_to_one(n: usize, root: NodeId) -> Vec<(NodeId, NodeId)> {
    (0..n).map(|s| (s, root)).collect()
}

/// How an open-loop source decides *when* to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectionProcess {
    /// Each node flips an independent coin every cycle: inject with
    /// probability `offered_load`. The classic open-loop arrival process;
    /// bursty at the cycle scale.
    Bernoulli,
    /// Each node injects on a fixed period of `round(1/offered_load)`
    /// cycles, with its phase staggered by its node index so the fabric
    /// never sees a synchronized all-nodes burst.
    Staggered,
}

/// An open-loop offered-load experiment: inject for `warmup_cycles +
/// measure_cycles`, measure only the middle window, then allow
/// `drain_cycles` for in-flight packets to complete.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpenLoopSpec {
    /// Injection probability per node per cycle (packets/node/cycle), > 0.
    pub offered_load: f64,
    /// The arrival process.
    pub process: InjectionProcess,
    /// Cycles to reach steady state before measuring.
    pub warmup_cycles: u32,
    /// The measurement window.
    pub measure_cycles: u32,
    /// Cycles after injection stops for the network to drain.
    pub drain_cycles: u32,
    /// RNG seed for arrival coins and destinations.
    pub seed: u64,
}

impl OpenLoopSpec {
    /// Cycles during which sources inject: warm-up plus measurement.
    pub fn injection_cycles(&self) -> u32 {
        self.warmup_cycles + self.measure_cycles
    }

    /// The full simulated horizon including the drain phase.
    pub fn horizon(&self) -> u32 {
        self.warmup_cycles + self.measure_cycles + self.drain_cycles
    }

    /// The measurement window `[start, end)`.
    pub fn window(&self) -> (u32, u32) {
        (self.warmup_cycles, self.warmup_cycles + self.measure_cycles)
    }
}

/// Generates the open-loop injection schedule for `n` logical sources:
/// `(cycle, source, target)` triples sorted by cycle, with uniform random
/// targets. Under [`InjectionProcess::Bernoulli`] the RNG consumes one
/// arrival coin *and* one destination draw per (cycle, node) whether or not
/// the coin fires, so schedules at different offered loads from the same
/// seed are coupled: the higher-load schedule is a superset of the
/// lower-load one with identical destinations — which is what makes
/// latency-vs-load comparisons (and the monotonicity property test)
/// well-posed.
pub fn open_loop_injections(n: usize, spec: &OpenLoopSpec) -> Vec<(u32, NodeId, NodeId)> {
    let mut schedule = Vec::new();
    open_loop_injections_into(n, spec, &mut schedule);
    schedule
}

/// Buffer-reusing form of [`open_loop_injections`]: writes the schedule
/// into `out` (cleared first), so sweep drivers generating one schedule per
/// sweep point amortise the allocation across the whole sweep.
pub fn open_loop_injections_into(
    n: usize,
    spec: &OpenLoopSpec,
    out: &mut Vec<(u32, NodeId, NodeId)>,
) {
    assert!(spec.offered_load > 0.0, "offered load must be positive");
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let schedule = out;
    schedule.clear();
    match spec.process {
        InjectionProcess::Bernoulli => {
            for cycle in 0..spec.injection_cycles() {
                for node in 0..n {
                    let coin: f64 = rng.random();
                    let target = rng.random_range(0..n);
                    if coin < spec.offered_load {
                        schedule.push((cycle, node, target));
                    }
                }
            }
        }
        InjectionProcess::Staggered => {
            let period = (1.0 / spec.offered_load).round().max(1.0) as u32;
            for cycle in 0..spec.injection_cycles() {
                for node in 0..n {
                    if (cycle + node as u32) % period == 0 {
                        let target = rng.random_range(0..n);
                        schedule.push((cycle, node, target));
                    }
                }
            }
        }
    }
}

/// Per-node initial values for the Ascend/Descend computations: the node
/// index itself (so the expected all-reduce total is `n(n-1)/2`).
pub fn index_values(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

/// Per-node random values plus their expected wrapped sum, for checking
/// all-reduce results against an independently computed total.
pub fn random_values<R: RngExt>(n: usize, rng: &mut R) -> (Vec<u64>, u64) {
    let values: Vec<u64> = (0..n).map(|_| rng.random_range(0..1_000_000)).collect();
    let total = values.iter().fold(0u64, |a, &b| a.wrapping_add(b));
    (values, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_pairs_are_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pairs = uniform_pairs(10, 50, &mut rng);
        assert_eq!(pairs.len(), 50);
        assert!(pairs.iter().all(|&(s, t)| s < 10 && t < 10));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pairs = permutation_pairs(16, &mut rng);
        assert_eq!(pairs.len(), 16);
        let mut targets: Vec<NodeId> = pairs.iter().map(|&(_, t)| t).collect();
        targets.sort_unstable();
        assert_eq!(targets, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn bit_reversal_examples() {
        let pairs = bit_reversal_pairs(3);
        assert_eq!(pairs.len(), 8);
        // 001 -> 100, 011 -> 110, palindromes map to themselves.
        assert_eq!(pairs[1], (1, 4));
        assert_eq!(pairs[3], (3, 6));
        assert_eq!(pairs[5], (5, 5));
        assert_eq!(pairs[7], (7, 7));
        // Bit reversal is an involution.
        for &(x, y) in &pairs {
            assert_eq!(pairs[y].1, x);
        }
    }

    #[test]
    fn hotspot_targets_root() {
        let pairs = all_to_one(5, 3);
        assert!(pairs.iter().all(|&(_, t)| t == 3));
        assert_eq!(pairs.len(), 5);
    }

    proptest::proptest! {
        /// Bit reversal over `h` bits is an involution and therefore a
        /// bijection: applying the map twice is the identity, and the
        /// target multiset equals the node set.
        #[test]
        fn bit_reversal_is_an_involution_and_bijection(h in 1usize..12) {
            let pairs = bit_reversal_pairs(h);
            let n = 1usize << h;
            proptest::prop_assert_eq!(pairs.len(), n);
            for &(x, y) in &pairs {
                proptest::prop_assert!(y < n);
                proptest::prop_assert_eq!(pairs[x].0, x);
                // Involution: reversing the reversal restores x.
                proptest::prop_assert_eq!(pairs[y].1, x);
            }
            let mut targets: Vec<NodeId> = pairs.iter().map(|&(_, t)| t).collect();
            targets.sort_unstable();
            proptest::prop_assert_eq!(targets, (0..n).collect::<Vec<_>>());
        }

        /// Every permutation workload is a bijection on sources and targets.
        #[test]
        fn permutation_pairs_are_bijections(n in 1usize..200, seed in 0u64..50) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let pairs = permutation_pairs(n, &mut rng);
            proptest::prop_assert_eq!(pairs.len(), n);
            let mut sources: Vec<NodeId> = pairs.iter().map(|&(s, _)| s).collect();
            let mut targets: Vec<NodeId> = pairs.iter().map(|&(_, t)| t).collect();
            sources.sort_unstable();
            targets.sort_unstable();
            proptest::prop_assert_eq!(sources, (0..n).collect::<Vec<_>>());
            proptest::prop_assert_eq!(targets, (0..n).collect::<Vec<_>>());
        }

        /// The hot-spot workload sends exactly one packet per source, all
        /// to the root.
        #[test]
        fn all_to_one_targets_the_root(n in 1usize..300, root in 0usize..300) {
            let root = root % n;
            let pairs = all_to_one(n, root);
            proptest::prop_assert_eq!(pairs.len(), n);
            for (i, &(s, t)) in pairs.iter().enumerate() {
                proptest::prop_assert_eq!(s, i);
                proptest::prop_assert_eq!(t, root);
            }
        }

        /// Uniform pairs stay in range for any count and seed.
        #[test]
        fn uniform_pairs_stay_in_range(n in 1usize..500, count in 0usize..300, seed in 0u64..50) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let pairs = uniform_pairs(n, count, &mut rng);
            proptest::prop_assert_eq!(pairs.len(), count);
            proptest::prop_assert!(pairs.iter().all(|&(s, t)| s < n && t < n));
        }
    }

    #[test]
    fn value_generators() {
        assert_eq!(index_values(4), vec![0, 1, 2, 3]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (values, total) = random_values(100, &mut rng);
        assert_eq!(values.len(), 100);
        assert_eq!(values.iter().fold(0u64, |a, &b| a.wrapping_add(b)), total);
    }
}
