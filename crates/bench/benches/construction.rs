//! Bench: constructing the fault-tolerant graphs (TAB1/TAB2 instances).
//!
//! Measures how long it takes to materialise `B^k_{2,h}` and `B^k_{m,h}`
//! for the parameter sweep used in the comparison tables, plus the plain
//! target graphs as a baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftdb_core::{BusArchitecture, FtDeBruijn2, FtDeBruijnM, NaturalFtShuffleExchange};
use ftdb_topology::{DeBruijn2, DeBruijnM, ShuffleExchange};
use std::hint::black_box;

fn bench_targets(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct_target");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &h in &[6usize, 8, 10] {
        group.bench_with_input(BenchmarkId::new("B(2,h)", h), &h, |b, &h| {
            b.iter(|| black_box(DeBruijn2::new(h).node_count()))
        });
        group.bench_with_input(BenchmarkId::new("SE(h)", h), &h, |b, &h| {
            b.iter(|| black_box(ShuffleExchange::new(h).node_count()))
        });
    }
    for &(m, h) in &[(3usize, 5usize), (4, 4), (8, 3)] {
        group.bench_with_input(
            BenchmarkId::new("B(m,h)", format!("m{m}_h{h}")),
            &(m, h),
            |b, &(m, h)| b.iter(|| black_box(DeBruijnM::new(m, h).node_count())),
        );
    }
    group.finish();
}

fn bench_ft_base2(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct_ft_base2");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &(h, k) in ftdb_bench::BASE2_PARAMS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("h{h}_k{k}")),
            &(h, k),
            |b, &(h, k)| b.iter(|| black_box(FtDeBruijn2::new(h, k).graph().edge_count())),
        );
    }
    group.finish();
}

fn bench_ft_base_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct_ft_base_m");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &(m, h, k) in ftdb_bench::BASE_M_PARAMS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_h{h}_k{k}")),
            &(m, h, k),
            |b, &(m, h, k)| b.iter(|| black_box(FtDeBruijnM::new(m, h, k).graph().edge_count())),
        );
    }
    group.finish();
}

fn bench_ft_shuffle_and_bus(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct_ft_shuffle_and_bus");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &(h, k) in &[(6usize, 2usize), (8, 2), (10, 4)] {
        group.bench_with_input(
            BenchmarkId::new("natural_SE^k", format!("h{h}_k{k}")),
            &(h, k),
            |b, &(h, k)| {
                b.iter(|| black_box(NaturalFtShuffleExchange::new(h, k).graph().edge_count()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bus_architecture", format!("h{h}_k{k}")),
            &(h, k),
            |b, &(h, k)| b.iter(|| black_box(BusArchitecture::new(h, k).max_bus_degree())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_targets,
    bench_ft_base2,
    bench_ft_base_m,
    bench_ft_shuffle_and_bus
);
criterion_main!(benches);
