//! Bench: the reconfiguration algorithm (FIG3 operation).
//!
//! The paper's reconfiguration is a rank computation — this bench measures
//! it (and its verification) for increasing machine sizes and fault counts,
//! on both the base-2 and the base-m constructions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftdb_core::{FaultSet, FtDeBruijn2, FtDeBruijnM};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_reconfigure_base2(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfigure_base2");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &(h, k) in ftdb_bench::BASE2_PARAMS {
        let ft = FtDeBruijn2::new(h, k);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
        group.bench_with_input(
            BenchmarkId::new("map_only", format!("h{h}_k{k}")),
            &(&ft, &faults),
            |b, (ft, faults)| b.iter(|| black_box(ft.reconfigure(faults).len())),
        );
        group.bench_with_input(
            BenchmarkId::new("map_and_verify", format!("h{h}_k{k}")),
            &(&ft, &faults),
            |b, (ft, faults)| {
                b.iter(|| black_box(ft.reconfigure_verified(faults).expect("tolerant").len()))
            },
        );
    }
    group.finish();
}

fn bench_reconfigure_base_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfigure_base_m");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &(m, h, k) in ftdb_bench::BASE_M_PARAMS {
        let ft = FtDeBruijnM::new(m, h, k);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_h{h}_k{k}")),
            &(&ft, &faults),
            |b, (ft, faults)| {
                b.iter(|| black_box(ft.reconfigure_verified(faults).expect("tolerant").len()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reconfigure_base2, bench_reconfigure_base_m);
criterion_main!(benches);
