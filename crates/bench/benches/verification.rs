//! Bench: exhaustive and sampled `(k, G)`-tolerance verification
//! (THM1-2 machinery), including the parallel speed-up of the exhaustive
//! sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftdb_core::verify::{verify_exhaustive, verify_sampled};
use ftdb_core::FtDeBruijn2;
use std::hint::black_box;

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_exhaustive");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for &(h, k) in ftdb_bench::VERIFY_PARAMS {
        let ft = FtDeBruijn2::new(h, k);
        for &threads in &[1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), format!("h{h}_k{k}")),
                &(&ft, threads),
                |b, (ft, threads)| {
                    b.iter(|| {
                        let report =
                            verify_exhaustive(ft.target().graph(), ft.graph(), ft.k(), *threads);
                        assert!(report.is_tolerant());
                        black_box(report.checked)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_sampled(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_sampled");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for &(h, k) in &[(8usize, 3usize), (10, 4)] {
        let ft = FtDeBruijn2::new(h, k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("h{h}_k{k}_200samples")),
            &ft,
            |b, ft| {
                b.iter(|| {
                    let report =
                        verify_sampled(ft.target().graph(), ft.graph(), ft.k(), 200, 0xF7DB);
                    assert!(report.is_tolerant());
                    black_box(report.checked)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exhaustive, bench_sampled);
criterion_main!(benches);
