//! Bench: routing and the Ascend emulation (SIM1 machinery).
//!
//! Measures oblivious de Bruijn routing of a permutation workload on
//! healthy and reconfigured machines, adaptive (BFS) routing under faults,
//! and the shuffle-exchange all-reduce emulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftdb_core::{FaultSet, FtDeBruijn2};
use ftdb_graph::Embedding;
use ftdb_sim::ascend_descend::allreduce_shuffle_exchange;
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::routing::{
    run_adaptive_workload, run_logical_workload, run_logical_workload_batched,
};
use ftdb_sim::workload;
use ftdb_topology::{DeBruijn2, ShuffleExchange};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_oblivious_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_oblivious");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &h in ftdb_bench::ROUTING_H {
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let placement = Embedding::identity(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pairs = workload::permutation_pairs(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("healthy_permutation", h), &h, |b, _| {
            b.iter(|| {
                let stats = run_logical_workload(&db, &placement, &machine, &pairs);
                assert_eq!(stats.dropped, 0);
                black_box(stats.total_hops)
            })
        });
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        group.bench_with_input(
            BenchmarkId::new("healthy_permutation_batched", h),
            &h,
            |b, _| {
                b.iter(|| {
                    let stats =
                        run_logical_workload_batched(&db, &placement, &machine, &pairs, threads);
                    assert_eq!(stats.dropped, 0);
                    black_box(stats.total_hops)
                })
            },
        );
    }
    group.finish();
}

fn bench_reconfigured_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_reconfigured");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &(h, k) in &[(8usize, 2usize), (10, 4)] {
        let ft = FtDeBruijn2::new(h, k);
        let db = ft.target().clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
        let placement = ft.reconfigure_verified(&faults).expect("tolerant");
        let machine =
            PhysicalMachine::with_faults(ft.graph().clone(), faults, PortModel::MultiPort);
        let pairs = workload::bit_reversal_pairs(h);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("h{h}_k{k}_bit_reversal")),
            &h,
            |b, _| {
                b.iter(|| {
                    let stats = run_logical_workload(&db, &placement, &machine, &pairs);
                    assert_eq!(stats.dropped, 0);
                    black_box(stats.total_hops)
                })
            },
        );
    }
    group.finish();
}

fn bench_adaptive_routing_under_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_adaptive_faulty");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &h in &[8usize, 10] {
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(1);
        machine.inject_fault(n / 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let pairs = workload::uniform_pairs(n, 256, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, _| {
            b.iter(|| black_box(run_adaptive_workload(&machine, &pairs).delivered))
        });
    }
    group.finish();
}

fn bench_ascend_emulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ascend_allreduce_se");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &h in &[6usize, 8, 10] {
        let se = ShuffleExchange::new(h);
        let n = se.node_count();
        let machine = PhysicalMachine::new(se.graph().clone(), PortModel::MultiPort);
        let placement = Embedding::identity(n);
        let values = workload::index_values(n);
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, _| {
            b.iter(|| {
                let out = allreduce_shuffle_exchange(&se, &placement, &machine, &values)
                    .expect("healthy machine completes");
                black_box(out.values[0])
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_oblivious_routing,
    bench_reconfigured_routing,
    bench_adaptive_routing_under_faults,
    bench_ascend_emulation
);
criterion_main!(benches);
