//! Bench: the comparison-table machinery (TAB1–TAB3), including the
//! SE ⊆ DB embedding search that the degree-(4k+4) shuffle-exchange
//! construction depends on, and the Samatham–Pradhan baseline construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftdb_analysis::comparison::{base2_table, shuffle_exchange_table};
use ftdb_core::baseline::{embed_smaller_base, SpBaseline};
use ftdb_topology::se_embedding::embed_se_into_debruijn;
use std::hint::black_box;

fn bench_se_embedding_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("se_to_debruijn_embedding");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for &h in &[3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| {
                let result = embed_se_into_debruijn(h);
                assert!(result.is_found());
                black_box(result.into_embedding().map(|e| e.len()))
            })
        });
    }
    group.finish();
}

fn bench_baseline_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("samatham_pradhan_baseline");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for &(m, h, k) in &[(2usize, 3usize, 1usize), (2, 4, 1), (3, 3, 1)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_h{h}_k{k}")),
            &(m, h, k),
            |b, &(m, h, k)| {
                b.iter(|| {
                    let sp = SpBaseline::new(m, h, k);
                    let host = sp.construct();
                    let sigma = embed_smaller_base(m, sp.host_base(), h);
                    black_box((host.node_count(), sigma.len()))
                })
            },
        );
    }
    group.finish();
}

fn bench_table_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_generation");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("TAB1_base2", |b| {
        b.iter(|| black_box(base2_table(&[3, 4, 5, 6], &[1, 2, 3], 1 << 12).len()))
    });
    group.bench_function("TAB3_shuffle_exchange", |b| {
        b.iter(|| black_box(shuffle_exchange_table(&[(4, 1), (4, 2), (5, 1)], 5).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_se_embedding_search,
    bench_baseline_construction,
    bench_table_generation
);
criterion_main!(benches);
