//! `perf_report` — the reproducible performance harness.
//!
//! Runs the routing, verification and reconfiguration suites with a plain
//! wall-clock measurement loop (median of repeated timed batches) and writes
//! the results to `BENCH_perf.json` so every PR records a perf datapoint.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ftdb-bench --bin perf_report [-- --quick] [-- --out PATH]
//! ```
//!
//! `--quick` shrinks the measurement windows so the harness finishes in a
//! couple of seconds (used by CI); the default mode takes tens of seconds
//! and produces more stable numbers.
//!
//! `--compare <baseline.json> [--threshold <ratio>]` additionally loads a
//! previously committed report and exits non-zero when any suite present in
//! both regressed by more than the threshold (default 1.3 = +30% on
//! `ns_per_item`), printing GitHub `::warning::` annotations for each
//! regression — the perf-regression CI gate.

// Wall-clock measurement is this binary's entire purpose; the workspace-wide
// `Instant::now` ban (clippy.toml) targets simulation code, not the harness.
#![allow(clippy::disallowed_methods)]

use ftdb_analysis::reliability::{reliability_sweep, FaultModel, ReliabilitySpec};
use ftdb_analysis::sim_experiments::{sim5_load_sweep_parallel, sweep_worker_count, SweepScenario};
use ftdb_core::fault::Combinations;
use ftdb_core::verify::verify_exhaustive;
use ftdb_core::{FaultSet, FtDeBruijn2};
use ftdb_graph::Embedding;
use ftdb_sim::congestion::{
    measure_open_loop, CongestionConfig, CongestionSim, EngineKind, FlowControl, RouteSource,
    Switching,
};
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::routing::{
    route_logical_debruijn_into, run_adaptive_workload, run_logical_workload,
    run_logical_workload_batched,
};
use ftdb_sim::workload;
use ftdb_topology::DeBruijn2;
use rand::SeedableRng;
use serde_json::{json, Value};
use std::hint::black_box;
use std::time::Instant;

/// One measured suite: how long one operation takes and its throughput.
struct Measurement {
    /// Median wall-clock nanoseconds for one run of the measured closure.
    ns_per_run: f64,
    /// Number of timed repetitions the median was taken over.
    repeats: usize,
}

/// Times `body` (one "run" per call): a warm-up call, then `repeats` timed
/// calls, returning the median. The median is robust against the occasional
/// scheduler hiccup, which matters in CI containers.
fn measure<F: FnMut()>(repeats: usize, mut body: F) -> Measurement {
    body(); // warm-up
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let start = Instant::now();
            body();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    Measurement {
        ns_per_run: samples[samples.len() / 2],
        repeats,
    }
}

/// Scales a per-run measurement down to a per-item rate.
fn per_item(m: &Measurement, items: u64) -> (f64, f64) {
    let ns_per_item = m.ns_per_run / items as f64;
    let items_per_s = if ns_per_item > 0.0 {
        1e9 / ns_per_item
    } else {
        f64::INFINITY
    };
    (ns_per_item, items_per_s)
}

fn suite_entry(name: &str, m: &Measurement, items: u64, item_label: &str) -> (String, Value) {
    let (ns, rate) = per_item(m, items);
    println!(
        "{name:<40} {ns:>12.1} ns/{item_label}  {rate:>14.0} {item_label}/s  ({items} {item_label}s/run, {} repeats)",
        m.repeats
    );
    (
        name.to_string(),
        json!({
            "ns_per_item": ns,
            "items_per_s": rate,
            "item": item_label,
            "items_per_run": items,
            "repeats": m.repeats,
        }),
    )
}

const USAGE: &str = "usage: perf_report [--quick] [--threads N] [--out PATH] [--compare BASELINE [--threshold RATIO]]";

/// Prints the offending argument and the usage line, then exits nonzero.
/// Unknown flags and a dangling `--out` are hard errors: a typo must not
/// silently produce a full-length run writing to the default path.
fn usage_error(message: &str) -> ! {
    eprintln!("perf_report: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = "BENCH_perf.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut threshold = 1.3f64;
    let mut threads_flag: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => match ftdb_bench::parse_threads_value(it.next()) {
                Ok(t) => threads_flag = Some(t),
                Err(msg) => usage_error(msg),
            },
            "--out" => match it.next() {
                Some(path) => out_path = path.clone(),
                None => usage_error("--out requires a PATH value"),
            },
            "--compare" => match it.next() {
                Some(path) => baseline_path = Some(path.clone()),
                None => usage_error("--compare requires a BASELINE path"),
            },
            "--threshold" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t.is_finite() && t > 0.0 => threshold = t,
                _ => usage_error("--threshold requires a positive ratio (e.g. 1.3)"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument: {other}")),
        }
    }
    let repeats = if quick { 5 } else { 15 };
    let threads =
        threads_flag.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
    println!(
        "perf_report: mode={} threads={threads} repeats={repeats}",
        if quick { "quick" } else { "full" }
    );

    let mut suites: Vec<(String, Value)> = Vec::new();

    // ---- Oblivious routing: healthy permutation workload ---------------
    for &h in if quick {
        &[6usize, 10] as &[usize]
    } else {
        &[6, 8, 10]
    } {
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let placement = Embedding::identity(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pairs = workload::permutation_pairs(n, &mut rng);
        let m = measure(repeats, || {
            let stats = run_logical_workload(&db, &placement, &machine, &pairs);
            assert_eq!(stats.dropped, 0);
            black_box(stats.total_hops);
        });
        suites.push(suite_entry(
            &format!("routing_oblivious_h{h}"),
            &m,
            pairs.len() as u64,
            "packet",
        ));
        if h == 10 {
            // The batched engine (threads = available parallelism) and the
            // path-materialising kernel, for the same permutation.
            let m = measure(repeats, || {
                let stats =
                    run_logical_workload_batched(&db, &placement, &machine, &pairs, threads);
                assert_eq!(stats.dropped, 0);
                black_box(stats.total_hops);
            });
            suites.push(suite_entry(
                &format!("routing_oblivious_batched_h{h}"),
                &m,
                pairs.len() as u64,
                "packet",
            ));
            let mut path = Vec::with_capacity(h + 1);
            let m = measure(repeats, || {
                let mut hops = 0u64;
                for &(s, t) in &pairs {
                    hops += route_logical_debruijn_into(&db, &placement, &machine, s, t, &mut path)
                        .expect("healthy delivery") as u64;
                }
                black_box(hops);
            });
            suites.push(suite_entry(
                &format!("routing_oblivious_kernel_h{h}"),
                &m,
                pairs.len() as u64,
                "packet",
            ));
        }
    }

    // ---- Adaptive (BFS) routing under faults ---------------------------
    for &h in if quick {
        &[8usize] as &[usize]
    } else {
        &[8, 10]
    } {
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let mut machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        machine.inject_fault(1);
        machine.inject_fault(n / 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let pairs = workload::uniform_pairs(n, 256, &mut rng);
        let m = measure(repeats, || {
            black_box(run_adaptive_workload(&machine, &pairs).delivered);
        });
        suites.push(suite_entry(
            &format!("routing_adaptive_h{h}"),
            &m,
            pairs.len() as u64,
            "packet",
        ));
    }

    // ---- Cycle-level congestion engine ---------------------------------
    // Measures the engine's wall-clock cost per simulated packet AND records
    // the model-level numbers (cycles/packet, flits/cycle) so every PR gets
    // a contention datapoint, not just a feasibility one.
    for &(h, port, label) in if quick {
        &[(8usize, PortModel::MultiPort, "multi")] as &[(usize, PortModel, &str)]
    } else {
        &[
            (8, PortModel::MultiPort, "multi"),
            (10, PortModel::MultiPort, "multi"),
            (10, PortModel::SinglePort, "single"),
        ]
    } {
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), port);
        let placement = Embedding::identity(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let pairs = workload::permutation_pairs(n, &mut rng);
        let mut sim = CongestionSim::new(machine, CongestionConfig::default());
        sim.load_oblivious(&db, &placement, &pairs);
        let mut last = sim.run(); // warm + model numbers (deterministic)
        let m = measure(repeats, || {
            sim.reset();
            last = sim.run();
            assert_eq!(last.dropped, 0);
            black_box(last.cycles);
        });
        let name = format!("congestion_permutation_{label}port_h{h}");
        let (ns, rate) = per_item(&m, pairs.len() as u64);
        println!(
            "{name:<40} {ns:>12.1} ns/packet  {rate:>14.0} packet/s  (cycles/packet {:.2}, flits/cycle {:.2})",
            last.cycles_per_packet(),
            last.flits_per_cycle(),
        );
        suites.push((
            name,
            json!({
                "ns_per_item": ns,
                "items_per_s": rate,
                "item": "packet",
                "items_per_run": pairs.len() as u64,
                "repeats": m.repeats,
                "cycles": last.cycles,
                "cycles_per_packet": last.cycles_per_packet(),
                "flits_per_cycle": last.flits_per_cycle(),
                "route_state_bytes": sim.route_state_bytes() as u64,
            }),
        ));
    }

    // ---- Route-state memory accounting ---------------------------------
    // The implicit-routing claim as a tracked number, not prose: bytes of
    // per-packet route storage for the same h=10 permutation under the
    // implicit (O(1)/packet) and materialized (O(h)/packet) representations.
    // Not a timed suite (no ns_per_item), so it lives beside `suites` and
    // the regression gate ignores it.
    let route_state = {
        let h = 10;
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let placement = Embedding::identity(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let pairs = workload::permutation_pairs(n, &mut rng);
        let bytes_for = |route_source: RouteSource| {
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            let mut sim = CongestionSim::new(
                machine,
                CongestionConfig {
                    route_source,
                    ..CongestionConfig::default()
                },
            );
            sim.load_oblivious(&db, &placement, &pairs);
            sim.route_state_bytes() as u64
        };
        let implicit = bytes_for(RouteSource::Implicit);
        let materialized = bytes_for(RouteSource::Materialized);
        println!(
            "route_state h{h} ({} packets): implicit {implicit} B, materialized {materialized} B ({:.2}x)",
            pairs.len(),
            materialized as f64 / implicit as f64,
        );
        json!({
            "h": h,
            "packets": pairs.len() as u64,
            "implicit_bytes": implicit,
            "materialized_bytes": materialized,
        })
    };

    // ---- Bounded buffers: credit flow control --------------------------
    // The same drained-permutation measurement as above, but through the
    // credit-gated movement path (depth 4 drains these workloads; depth 1
    // would deadlock — that behaviour has its own tests, not a bench).
    for &(h, depth) in if quick {
        &[(8usize, 4u32)] as &[(usize, u32)]
    } else {
        &[(8, 4), (10, 4)]
    } {
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let placement = Embedding::identity(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let pairs = workload::permutation_pairs(n, &mut rng);
        let mut sim = CongestionSim::new(
            machine,
            CongestionConfig {
                flow_control: FlowControl::CreditBased {
                    buffer_depth: depth,
                },
                ..CongestionConfig::default()
            },
        );
        sim.load_oblivious(&db, &placement, &pairs);
        let mut last = sim.run();
        assert!(
            last.completed && !last.deadlocked,
            "bench workload must drain"
        );
        let m = measure(repeats, || {
            sim.reset();
            last = sim.run();
            black_box(last.cycles);
        });
        suites.push(suite_entry(
            &format!("congestion_credit_d{depth}_h{h}"),
            &m,
            pairs.len() as u64,
            "packet",
        ));
    }

    // ---- Open-loop injection (offered-load machinery) ------------------
    // One full warm-up + measure + drain run at a pre-collapse load; the
    // measured loop covers injection scheduling, credit accounting and the
    // window statistics — the cost of one sweep point.
    for &h in if quick {
        &[7usize] as &[usize]
    } else {
        &[7, 8]
    } {
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let spec = ftdb_sim::workload::OpenLoopSpec {
            offered_load: 0.15,
            process: ftdb_sim::workload::InjectionProcess::Bernoulli,
            warmup_cycles: 100,
            measure_cycles: 200,
            drain_cycles: 300,
            seed: 5,
        };
        let injections = ftdb_sim::workload::open_loop_injections(n, &spec);
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(
            machine,
            CongestionConfig {
                flow_control: FlowControl::CreditBased { buffer_depth: 4 },
                ..CongestionConfig::default()
            },
        );
        sim.load_oblivious_timed(&db, &Embedding::identity(n), &injections);
        let mut last = measure_open_loop(&mut sim, &spec);
        assert!(!last.deadlocked, "pre-collapse load must flow");
        let m = measure(repeats, || {
            sim.reset();
            last = measure_open_loop(&mut sim, &spec);
            black_box(last.window_delivered);
        });
        let name = format!("openloop_credit_d4_h{h}");
        let (ns, rate) = per_item(&m, injections.len() as u64);
        println!(
            "{name:<40} {ns:>12.1} ns/packet  {rate:>14.0} packet/s  (throughput {:.3}, mean latency {:.1})",
            last.throughput, last.latency.mean,
        );
        suites.push((
            name,
            json!({
                "ns_per_item": ns,
                "items_per_s": rate,
                "item": "packet",
                "items_per_run": injections.len() as u64,
                "repeats": m.repeats,
                "throughput": last.throughput,
                "accepted": last.accepted,
                "mean_latency": last.latency.mean,
            }),
        ));
    }

    // ---- Wake-list core at near saturation ------------------------------
    // The wake-list engine's home turf: an open-loop run just past the
    // saturation knee, where most live packets are parked on full buffers.
    // The retained naive rescan runs the identical workload so every report
    // carries the before/after pair (the README "Engine internals" table).
    for &(engine, label) in &[
        (EngineKind::WakeList, "wakelist"),
        (EngineKind::NaiveScan, "naivescan"),
    ] {
        let h = 8;
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let spec = ftdb_sim::workload::OpenLoopSpec {
            offered_load: 0.30,
            process: ftdb_sim::workload::InjectionProcess::Bernoulli,
            warmup_cycles: 100,
            measure_cycles: 200,
            drain_cycles: 300,
            seed: 5,
        };
        let injections = ftdb_sim::workload::open_loop_injections(n, &spec);
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(
            machine,
            CongestionConfig {
                flow_control: FlowControl::CreditBased { buffer_depth: 4 },
                engine,
                ..CongestionConfig::default()
            },
        );
        sim.load_oblivious_timed(&db, &Embedding::identity(n), &injections);
        let mut last = measure_open_loop(&mut sim, &spec);
        let m = measure(repeats, || {
            sim.reset();
            last = measure_open_loop(&mut sim, &spec);
            black_box(last.window_delivered);
        });
        let name = format!("congestion_{label}_nearsat_h{h}");
        let (ns, rate) = per_item(&m, injections.len() as u64);
        // This run is deliberately past the saturation knee (full
        // congestion collapse), so window statistics are degenerate —
        // report the collapse-shaped facts instead: cumulative deliveries
        // by window end, and whether the run hard-deadlocked.
        println!(
            "{name:<40} {ns:>12.1} ns/packet  {rate:>14.0} packet/s  (collapse: {} of {} delivered by window end, deadlocked {})",
            last.cum_delivered_by_window_end,
            last.cum_injected_by_window_end,
            last.deadlocked,
        );
        suites.push((
            name,
            json!({
                "ns_per_item": ns,
                "items_per_s": rate,
                "item": "packet",
                "items_per_run": injections.len() as u64,
                "repeats": m.repeats,
                "cum_injected_by_window_end": last.cum_injected_by_window_end,
                "cum_delivered_by_window_end": last.cum_delivered_by_window_end,
                "deadlocked": last.deadlocked,
                "route_state_bytes": sim.route_state_bytes() as u64,
            }),
        ));
    }

    // ---- Virtual channels / wormhole at near saturation ------------------
    // The same past-the-knee workload as the nearsat pair, under
    // `FlowControl::VirtualChannel`: two dateline-ordered VCs per link
    // (store-and-forward, then 4-flit wormhole trains). This prices the
    // per-(link, vc) gate layout, the timed credit FIFO and — for the
    // wormhole row — the multi-cycle claim windows, on the wake-list
    // engine's home turf; per-VC flit splits ride into the JSON.
    for &(switching, label) in &[
        (Switching::StoreAndForward, "vc"),
        (Switching::Wormhole { packet_flits: 4 }, "wormhole"),
    ] {
        let h = 8;
        let db = DeBruijn2::new(h);
        let n = db.node_count();
        let spec = ftdb_sim::workload::OpenLoopSpec {
            offered_load: 0.30,
            process: ftdb_sim::workload::InjectionProcess::Bernoulli,
            warmup_cycles: 100,
            measure_cycles: 200,
            drain_cycles: 300,
            seed: 5,
        };
        let injections = ftdb_sim::workload::open_loop_injections(n, &spec);
        let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
        let mut sim = CongestionSim::new(
            machine,
            CongestionConfig {
                flow_control: FlowControl::VirtualChannel {
                    vcs: 2,
                    buffer_depth: 4,
                    switching,
                },
                ..CongestionConfig::default()
            },
        );
        sim.load_oblivious_timed(&db, &Embedding::identity(n), &injections);
        let mut last = measure_open_loop(&mut sim, &spec);
        let m = measure(repeats, || {
            sim.reset();
            last = measure_open_loop(&mut sim, &spec);
            black_box(last.window_delivered);
        });
        let name = format!("congestion_{label}_nearsat_h{h}");
        let (ns, rate) = per_item(&m, injections.len() as u64);
        println!(
            "{name:<40} {ns:>12.1} ns/packet  {rate:>14.0} packet/s  (collapse: {} of {} delivered by window end, deadlocked {})",
            last.cum_delivered_by_window_end,
            last.cum_injected_by_window_end,
            last.deadlocked,
        );
        suites.push((
            name,
            json!({
                "ns_per_item": ns,
                "items_per_s": rate,
                "item": "packet",
                "items_per_run": injections.len() as u64,
                "repeats": m.repeats,
                "cum_injected_by_window_end": last.cum_injected_by_window_end,
                "cum_delivered_by_window_end": last.cum_delivered_by_window_end,
                "deadlocked": last.deadlocked,
            }),
        ));
    }

    // ---- Parallel sweep harness ------------------------------------------
    // One SIM5-style latency-throughput curve fanned over `threads`
    // crossbeam workers with per-worker engine reuse — the cost of a sweep
    // campaign point, not of a single engine cycle. `threads` rides into
    // the BENCH JSON (top level and per suite) so datapoints from different
    // worker counts are never compared blind.
    {
        let loads: &[f64] = if quick {
            &[0.05, 0.15, 0.30]
        } else {
            &[0.05, 0.10, 0.20, 0.30, 0.50]
        };
        let scenario = SweepScenario {
            h: 7,
            k: 1,
            fault_count: 1,
            port: PortModel::MultiPort,
            flow: FlowControl::CreditBased { buffer_depth: 4 },
        };
        // This suite exists to measure the *parallel* harness: on a
        // single-CPU runner `--threads` defaults to 1 and the fan-out path
        // would never run, so the suite floors its worker count at 2 and
        // records the count that actually ran (the same clamp the sweep
        // itself applies — requesting more workers than sweep points spawns
        // only one per point).
        let sweep_workers = sweep_worker_count(threads.max(2), loads.len());
        let mut last = sim5_load_sweep_parallel(&scenario, loads, 7, sweep_workers);
        let m = measure(repeats, || {
            last = sim5_load_sweep_parallel(&scenario, loads, 7, sweep_workers);
            black_box(last.len());
        });
        let name = "sweep_parallel_h7".to_string();
        let (ns, rate) = per_item(&m, loads.len() as u64);
        println!(
            "{name:<40} {ns:>12.1} ns/point  {rate:>14.0} point/s  ({} loads, {sweep_workers} workers)",
            loads.len()
        );
        suites.push((
            name,
            json!({
                "ns_per_item": ns,
                "items_per_s": rate,
                "item": "point",
                "items_per_run": loads.len() as u64,
                "repeats": m.repeats,
                "threads": sweep_workers,
                "threads_requested": threads,
            }),
        ));
    }

    // ---- Monte-Carlo reliability sweep -----------------------------------
    // A small canonical reliability sweep (directed-link Bernoulli faults on
    // B(2,6)): the cost of one seeded trial — healthy baseline plus the
    // faulted grid runs — through the crossbeam fan-out with per-worker
    // engine reuse. Like `sweep_parallel_h7`, the worker count is floored at
    // 2 so the parallel path runs even on a single-CPU runner, and the count
    // that actually ran rides into the JSON.
    {
        let mut spec = ReliabilitySpec::canonical(6);
        spec.trials = if quick { 8 } else { 32 };
        spec.p_grid = vec![0.0, 0.01, 0.05];
        spec.threads = threads.max(2);
        let mc_workers = sweep_worker_count(spec.threads, spec.trials);
        let mut last = reliability_sweep(&spec, FaultModel::Link);
        let m = measure(repeats, || {
            last = reliability_sweep(&spec, FaultModel::Link);
            black_box(last.points.len());
        });
        let name = "reliability_mc_h6".to_string();
        let (ns, rate) = per_item(&m, spec.trials as u64);
        println!(
            "{name:<40} {ns:>12.1} ns/trial  {rate:>14.0} trial/s  ({} trials x {} grid points, {mc_workers} workers)",
            spec.trials,
            spec.p_grid.len()
        );
        suites.push((
            name,
            json!({
                "ns_per_item": ns,
                "items_per_s": rate,
                "item": "trial",
                "items_per_run": spec.trials as u64,
                "repeats": m.repeats,
                "grid_points": spec.p_grid.len(),
                "threads": mc_workers,
                "threads_requested": threads,
            }),
        ));
    }

    // ---- Reconfiguration -----------------------------------------------
    for &(h, k) in if quick {
        &[(10usize, 4usize)] as &[(usize, usize)]
    } else {
        &[(8, 2), (10, 4)]
    } {
        let ft = FtDeBruijn2::new(h, k);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
        let reps = 64u64;
        let m = measure(repeats, || {
            for _ in 0..reps {
                black_box(ft.reconfigure_verified(&faults).expect("tolerant").len());
            }
        });
        suites.push(suite_entry(
            &format!("reconfigure_verified_h{h}_k{k}"),
            &m,
            reps,
            "op",
        ));
    }

    // ---- Exhaustive (k, G)-tolerance verification ----------------------
    let verify_params: &[(usize, usize)] = if quick {
        &[(5, 2), (6, 2)]
    } else {
        &[(5, 2), (6, 2), (7, 2)]
    };
    for &(h, k) in verify_params {
        let ft = FtDeBruijn2::new(h, k);
        let sets = Combinations::total(ft.node_count(), k) as u64;
        let m = measure(repeats, || {
            let report = verify_exhaustive(ft.target().graph(), ft.graph(), k, threads);
            assert!(report.is_tolerant());
            black_box(report.checked);
        });
        suites.push(suite_entry(
            &format!("verify_exhaustive_h{h}_k{k}"),
            &m,
            sets,
            "fault-set",
        ));
    }

    let report = json!({
        "schema": "ftdb-perf/1",
        "mode": if quick { "quick" } else { "full" },
        "threads": threads,
        "route_state": route_state,
        "suites": Value::Object(suites.into_iter().collect()),
    });
    std::fs::write(&out_path, format!("{report}\n")).expect("write BENCH_perf.json");
    println!("wrote {out_path}");

    // ---- Perf-regression gate ------------------------------------------
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| usage_error(&format!("cannot read baseline {path}: {e}")));
        let baseline = serde_json::from_str(&text)
            .unwrap_or_else(|e| usage_error(&format!("baseline {path} is not valid JSON: {e}")));
        let cmp = ftdb_bench::compare::compare_reports(&baseline, &report, threshold)
            .unwrap_or_else(|e| usage_error(&e));
        println!(
            "\ncompare vs {path} (threshold {threshold:.2}x, {} suites in both):",
            cmp.deltas.len()
        );
        for d in &cmp.deltas {
            println!(
                "  {:<40} {:>10.1} -> {:>10.1} ns/item  ({:.2}x)",
                d.suite, d.baseline_ns, d.current_ns, d.ratio
            );
        }
        for name in &cmp.missing_in_baseline {
            println!("  {name:<40} new suite (not in baseline)");
        }
        for name in &cmp.missing_in_current {
            println!("  {name:<40} retired suite (baseline only)");
        }
        if cmp.regressions.is_empty() {
            println!("perf gate: OK, no suite regressed beyond {threshold:.2}x");
        } else {
            for d in &cmp.regressions {
                // GitHub Actions annotation: visible on the workflow run.
                println!(
                    "::warning title=perf regression::{} regressed {:.2}x \
                     ({:.1} -> {:.1} ns/item, threshold {:.2}x)",
                    d.suite, d.ratio, d.baseline_ns, d.current_ns, threshold
                );
            }
            eprintln!(
                "perf gate: {} suite(s) regressed beyond {threshold:.2}x",
                cmp.regressions.len()
            );
            std::process::exit(1);
        }
    }
}
