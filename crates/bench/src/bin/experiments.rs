//! The experiment driver: regenerates every figure and table of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ftdb-bench --bin experiments -- [--threads N] [--shards N] [--vcs N] [experiment...]
//! ```
//!
//! where each `experiment` is one of `fig1 fig2 fig3 fig4 fig5 table1 table2
//! table3 corollaries tolerance sim sim-bus sim-congestion sim-loadsweep
//! sim-sharded sim-vc sim-reliability sim-million sim-million-smoke ablation
//! all` (default: `all`; the `sim-million*` scale runs and the
//! Monte-Carlo `sim-reliability` sweep are excluded from `all`).
//! Output is plain text on stdout; it is the source of the measured numbers
//! recorded in `EXPERIMENTS.md`.
//!
//! `--threads N` sizes the worker pool of the sweep-style experiments
//! (default: the machine's available parallelism). `--shards N` sizes the
//! graph partition of the sharded-engine experiments (`sim-sharded`,
//! `sim-vc`, `sim-million*`, `sim-reliability`; default 4), and `--vcs N`
//! the virtual-channel count of `sim-vc` (default 2). `sim-reliability`
//! additionally takes `--trials N` (seeded Monte-Carlo trials per grid
//! point, default 100), `--p-grid p1,p2,...` (fault probabilities, default
//! `0.001,0.005,0.01,0.02,0.05`) and `--fault-model node|link|burst|all`
//! (default `all`). Every experiment is seeded and the parallel drivers
//! merge in deterministic order, so the output is byte-identical for any
//! `N` — CI diffs `--threads 4` against `--threads 1`, `--shards 1/2/4`
//! against each other, the `sim-vc` grid at each `--vcs 1/2/4` across
//! `--shards 1/2/4`, and the `sim-reliability` curves across both knobs,
//! to enforce exactly that.

use ftdb_analysis::ablation::{
    offset_ablation, reconfig_ablation, render_offset_ablation, render_reconfig_ablation,
};
use ftdb_analysis::comparison::{
    base2_table, base_m_table, render_comparison, render_shuffle_exchange, shuffle_exchange_table,
};
use ftdb_analysis::corollaries::{
    render_corollaries, render_tolerance, sweep_base2, sweep_base_m, sweep_bus, tolerance_sweep,
};
use ftdb_analysis::figures;
use ftdb_analysis::reliability::{
    reliability_sweep, render_reliability, FaultModel, ReliabilitySpec,
};
use ftdb_analysis::sim_experiments::{
    render_sim1, render_sim5, sim1_ascend_slowdown, sim1_routing_table, sim2_bus_table,
    sim3_congestion_table, sim4_recovery_table, sim5_tables, sim6_sharded_sweep, sim6_tables,
    sim7_vc_tables, ShardedSweepSpec,
};

fn print_figure(fig: &figures::Figure) {
    println!("===== {} : {} =====", fig.id, fig.caption);
    println!("{}", fig.text);
    if let Some(dot) = &fig.dot {
        println!("--- DOT ---");
        println!("{dot}");
    }
}

/// `sim-reliability` knobs gathered from the command line.
struct ReliabilityArgs {
    trials: usize,
    p_grid: Vec<f64>,
    models: Vec<FaultModel>,
}

impl Default for ReliabilityArgs {
    fn default() -> Self {
        ReliabilityArgs {
            trials: 100,
            p_grid: vec![0.001, 0.005, 0.01, 0.02, 0.05],
            models: FaultModel::ALL.to_vec(),
        }
    }
}

fn run(name: &str, threads: usize, shards: usize, vcs: u32, rel: &ReliabilityArgs) -> bool {
    match name {
        "fig1" => print_figure(&figures::figure1()),
        "fig2" => print_figure(&figures::figure2()),
        "fig3" => {
            // The paper draws one specific single-fault example; print the
            // canonical one (fault at node 5) plus a second for contrast.
            print_figure(&figures::figure3(5));
            print_figure(&figures::figure3(0));
        }
        "fig4" => print_figure(&figures::figure4()),
        "fig5" => print_figure(&figures::figure5(4)),
        "table1" => {
            let rows = base2_table(&[3, 4, 5, 6, 8, 10], &[1, 2, 3, 4, 8], 1 << 14);
            println!(
                "{}",
                render_comparison("TAB1: base-2 de Bruijn, ours vs Samatham-Pradhan", &rows)
                    .render()
            );
        }
        "table2" => {
            let rows = base_m_table(&[(3, 3), (4, 3), (8, 2), (16, 2)], &[1, 2, 4], 1 << 14);
            println!(
                "{}",
                render_comparison("TAB2: base-m de Bruijn, ours vs Samatham-Pradhan", &rows)
                    .render()
            );
        }
        "table3" => {
            let rows = shuffle_exchange_table(
                &[
                    (3, 1),
                    (4, 1),
                    (4, 2),
                    (5, 1),
                    (5, 2),
                    (5, 3),
                    (6, 1),
                    (7, 2),
                ],
                6,
            );
            println!("{}", render_shuffle_exchange(&rows).render());
        }
        "corollaries" => {
            let c12 = sweep_base2(&[3, 4, 5, 6, 7], &[0, 1, 2, 3, 4, 6]);
            println!(
                "{}",
                render_corollaries("COR1-2: base-2 degree bounds (4k+4; k=1: 8)", &c12).render()
            );
            let c34 = sweep_base_m(
                &[(3, 3), (3, 4), (4, 3), (5, 2), (6, 2), (8, 2)],
                &[1, 2, 3],
            );
            println!(
                "{}",
                render_corollaries("COR3-4: base-m degree bounds (4(m-1)k+2m; k=1: 6m-4)", &c34)
                    .render()
            );
            let bus = sweep_bus(&[3, 4, 5, 6], &[0, 1, 2, 3]);
            println!(
                "{}",
                render_corollaries("Section V: bus-degree bound (2k+3)", &bus).render()
            );
        }
        "tolerance" => {
            let rows = tolerance_sweep(
                &[
                    (2, 3, 1),
                    (2, 3, 2),
                    (2, 3, 3),
                    (2, 4, 1),
                    (2, 4, 2),
                    (2, 5, 1),
                    (2, 5, 2),
                    (3, 3, 1),
                    (3, 3, 2),
                    (4, 2, 2),
                    (2, 8, 2),
                    (3, 4, 2),
                ],
                200_000,
                500,
                std::thread::available_parallelism().map_or(4, |p| p.get()),
            );
            println!("{}", render_tolerance(&rows).render());
        }
        "sim" => {
            for (h, k) in [(4, 1), (5, 2), (6, 3)] {
                let rows = sim1_ascend_slowdown(h, k, 5);
                println!("{}", render_sim1(h, k, &rows).render());
            }
            println!("{}", sim1_routing_table(6, 2, 0xF7DB).render());
        }
        "sim-bus" => {
            println!("{}", sim2_bus_table().render());
        }
        "sim-congestion" => {
            for h in [5usize, 7] {
                println!("{}", sim3_congestion_table(h, 0xF7DB).render());
            }
            println!("{}", sim4_recovery_table(6, 3, 2, 0xF7DB).render());
        }
        "sim-loadsweep" => {
            let loads = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
            for table in sim5_tables(7, &loads, 0xF7DB, threads) {
                println!("{}", table.render());
            }
        }
        "sim-sharded" => {
            // The CI shard-determinism job diffs this output across
            // `--shards 1,2,4`: it must be byte-identical for any partition.
            for table in sim6_tables(7, 0xF7DB, shards, threads) {
                println!("{}", table.render());
            }
        }
        "sim-vc" => {
            // The CI VC-determinism step runs this for `--vcs 1/2/4`,
            // diffing each VC count across `--shards 1/2/4`: byte-identical
            // for any partition, like every other sharded output.
            for table in sim7_vc_tables(6, 0xF7DB, vcs, shards, threads) {
                println!("{}", table.render());
            }
        }
        "sim-reliability" => {
            // The Monte-Carlo reliability sweep: delivery-probability and
            // expected-slowdown curves with Wilson 95% CIs for node, link
            // and burst faults on B(2,8)..B(2,10). The CI
            // reliability-determinism job diffs this output across
            // `--threads 1/4` and `--shards 1/2/4`: byte-identical always.
            for h in [8usize, 9, 10] {
                let mut spec = ReliabilitySpec::canonical(h);
                spec.trials = rel.trials;
                spec.p_grid = rel.p_grid.clone();
                spec.threads = threads;
                spec.shards = shards;
                for &model in &rel.models {
                    let curve = reliability_sweep(&spec, model);
                    println!("{}", render_reliability(&curve).render());
                }
            }
        }
        "sim-million" => {
            // The headline scale runs: an open-loop sweep on B(2,20)
            // (1,048,576 nodes) and a single-point B(2,24) (16.7M nodes)
            // smoke. Loads sit below the ~2/(h-1) de Bruijn saturation
            // ceiling so the runs drain rather than collapse. Not part of
            // `all` — minutes of wall clock, gigabytes of packet state.
            let windows = ShardedSweepSpec {
                warmup_cycles: 8,
                measure_cycles: 16,
                drain_cycles: 600,
                seed: 0xF7DB,
            };
            let points = sim6_sharded_sweep(20, &[0.01, 0.03, 0.05], &windows, shards, threads);
            println!(
                "{}",
                render_sim5(
                    "SIM6-million: healthy B(2,20), sharded engine, credit depth 4".to_string(),
                    &points,
                )
                .render()
            );
        }
        "sim-million-smoke" => {
            let windows = ShardedSweepSpec {
                warmup_cycles: 4,
                measure_cycles: 8,
                drain_cycles: 400,
                seed: 0xF7DB,
            };
            let points = sim6_sharded_sweep(24, &[0.01], &windows, shards, threads);
            println!(
                "{}",
                render_sim5(
                    "SIM6-smoke: healthy B(2,24), sharded engine, credit depth 4".to_string(),
                    &points,
                )
                .render()
            );
        }
        "ablation" => {
            let abl1 = offset_ablation(&[(3, 1), (3, 2), (4, 1), (4, 2)], 50_000_000);
            println!("{}", render_offset_ablation(&abl1).render());
            let abl2 = reconfig_ablation(&[(3, 1), (3, 2), (3, 3), (4, 1), (4, 2)], 50_000_000);
            println!("{}", render_reconfig_ablation(&abl2).render());
        }
        "all" => {
            for e in [
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "table1",
                "table2",
                "table3",
                "corollaries",
                "tolerance",
                "sim",
                "sim-bus",
                "sim-congestion",
                "sim-loadsweep",
                "sim-sharded",
                "sim-vc",
                "ablation",
            ] {
                run(e, threads, shards, vcs, rel);
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            return false;
        }
    }
    true
}

const USAGE: &str = "usage: experiments [--threads N] [--shards N] [--vcs N] [--trials N] [--p-grid p1,p2,...] [--fault-model node|link|burst|all] [fig1|fig2|fig3|fig4|fig5|table1|table2|table3|corollaries|tolerance|sim|sim-bus|sim-congestion|sim-loadsweep|sim-sharded|sim-vc|sim-reliability|sim-million|sim-million-smoke|ablation|all]...";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut shards = 4usize;
    let mut vcs = 2u32;
    let mut rel = ReliabilityArgs::default();
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => match ftdb_bench::parse_threads_value(it.next()) {
                Ok(t) => threads = t,
                Err(msg) => {
                    eprintln!("experiments: {msg}");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--shards" => match ftdb_bench::parse_threads_value(it.next()) {
                Ok(s) => shards = s,
                Err(_) => {
                    eprintln!("experiments: --shards requires a positive integer");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--vcs" => match ftdb_bench::parse_threads_value(it.next()) {
                Ok(v) => vcs = v as u32,
                Err(_) => {
                    eprintln!("experiments: --vcs requires a positive integer");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--trials" => match ftdb_bench::parse_threads_value(it.next()) {
                Ok(t) => rel.trials = t,
                Err(_) => {
                    eprintln!("experiments: --trials requires a positive integer");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--p-grid" => match it.next().map(|v| {
                v.split(',')
                    .map(|p| p.trim().parse::<f64>())
                    .collect::<Result<Vec<f64>, _>>()
            }) {
                Some(Ok(grid))
                    if !grid.is_empty() && grid.iter().all(|p| (0.0..=1.0).contains(p)) =>
                {
                    rel.p_grid = grid;
                }
                _ => {
                    eprintln!(
                        "experiments: --p-grid requires comma-separated probabilities in [0, 1]"
                    );
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--fault-model" => match it.next().map(String::as_str) {
                Some("all") => rel.models = FaultModel::ALL.to_vec(),
                Some(m) => match FaultModel::parse(m) {
                    Some(model) => rel.models = vec![model],
                    None => {
                        eprintln!("experiments: --fault-model must be node, link, burst or all");
                        eprintln!("{USAGE}");
                        std::process::exit(2);
                    }
                },
                None => {
                    eprintln!("experiments: --fault-model must be node, link, burst or all");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            _ => names.push(arg.clone()),
        }
    }
    let mut ok = true;
    if names.is_empty() {
        ok &= run("all", threads, shards, vcs, &rel);
    } else {
        for a in &names {
            ok &= run(a, threads, shards, vcs, &rel);
        }
    }
    if !ok {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
}
