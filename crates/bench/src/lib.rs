//! # ftdb-bench
//!
//! The benchmark harness and experiment driver for the fault-tolerant
//! de Bruijn workspace.
//!
//! * The `experiments` binary (`cargo run -p ftdb-bench --bin experiments`)
//!   regenerates every figure and table reported in `EXPERIMENTS.md`
//!   (FIG1–FIG5, TAB1–TAB3, COR1-4, THM1-2, SIM1, SIM2).
//! * The Criterion benches (`cargo bench --workspace`) measure the costs of
//!   the operations a real machine would perform: constructing the
//!   fault-tolerant graphs, reconfiguring after faults, verifying tolerance,
//!   routing, and running the Ascend emulation.
//!
//! This library crate only holds the shared parameter sets so that the
//! binary and the benches stay in sync.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// `(h, k)` pairs used for the base-2 construction/reconfiguration benches
/// and the corollary sweeps.
pub const BASE2_PARAMS: &[(usize, usize)] =
    &[(3, 1), (4, 1), (4, 2), (5, 2), (6, 2), (8, 4), (10, 4)];

/// `(m, h, k)` triples used for the base-m benches and sweeps.
pub const BASE_M_PARAMS: &[(usize, usize, usize)] = &[
    (3, 3, 1),
    (3, 3, 2),
    (4, 3, 1),
    (4, 3, 2),
    (5, 2, 3),
    (8, 2, 1),
];

/// `h` values for the de Bruijn routing benches.
pub const ROUTING_H: &[usize] = &[6, 8, 10];

/// `(h, k)` pairs small enough for exhaustive `(k, G)`-tolerance
/// verification in a bench iteration.
pub const VERIFY_PARAMS: &[(usize, usize)] = &[(3, 1), (3, 2), (4, 1), (4, 2)];

/// Parses the value of a `--threads` flag: both binaries (`experiments`,
/// `perf_report`) accept the same worker-count knob and must validate it
/// identically. Returns the parsed count or a message for the caller's
/// usage-error path.
pub fn parse_threads_value(value: Option<&String>) -> Result<usize, &'static str> {
    match value.and_then(|t| t.parse::<usize>().ok()) {
        Some(t) if t >= 1 => Ok(t),
        _ => Err("--threads requires a positive integer"),
    }
}

/// Comparing two `BENCH_perf.json` reports — the logic behind
/// `perf_report --compare <baseline> --threshold <ratio>`, kept in the
/// library so the regression gate is unit-tested rather than only exercised
/// in CI.
pub mod compare {
    use serde_json::Value;

    /// One suite present in both reports.
    #[derive(Clone, Debug, PartialEq)]
    pub struct SuiteDelta {
        /// Suite name (the key in the report's `suites` object).
        pub suite: String,
        /// Baseline nanoseconds per item.
        pub baseline_ns: f64,
        /// Current nanoseconds per item.
        pub current_ns: f64,
        /// `current_ns / baseline_ns` (> 1 means the suite got slower).
        pub ratio: f64,
    }

    /// The outcome of comparing a current report against a baseline.
    #[derive(Clone, Debug, Default, PartialEq)]
    pub struct Comparison {
        /// Suites whose ratio exceeds the threshold, worst first.
        pub regressions: Vec<SuiteDelta>,
        /// All suites present in both reports, worst ratio first.
        pub deltas: Vec<SuiteDelta>,
        /// Suites only in the current report (new benches; never a failure).
        pub missing_in_baseline: Vec<String>,
        /// Suites only in the baseline (removed benches; never a failure).
        pub missing_in_current: Vec<String>,
    }

    /// Extracts `suites.<name>.ns_per_item` pairs from a perf report.
    fn suite_rates(report: &Value) -> Result<Vec<(String, f64)>, String> {
        let suites = report["suites"]
            .as_object()
            .ok_or_else(|| "report has no `suites` object".to_string())?;
        let mut rates = Vec::with_capacity(suites.len());
        for (name, entry) in suites {
            let ns = entry["ns_per_item"]
                .as_f64()
                .ok_or_else(|| format!("suite `{name}` has no numeric ns_per_item"))?;
            if !(ns.is_finite() && ns > 0.0) {
                return Err(format!(
                    "suite `{name}` has a degenerate ns_per_item ({ns})"
                ));
            }
            rates.push((name.clone(), ns));
        }
        Ok(rates)
    }

    /// Compares `current` against `baseline`: a suite regresses when its
    /// `ns_per_item` grew by more than `threshold` (e.g. 1.3 = +30%).
    /// Suites present in only one report are listed, not failed, so adding
    /// or retiring a bench does not break the gate.
    pub fn compare_reports(
        baseline: &Value,
        current: &Value,
        threshold: f64,
    ) -> Result<Comparison, String> {
        if !(threshold.is_finite() && threshold > 0.0) {
            return Err(format!(
                "threshold must be a positive ratio, got {threshold}"
            ));
        }
        let base = suite_rates(baseline)?;
        let cur = suite_rates(current)?;
        let mut result = Comparison::default();
        for (name, current_ns) in &cur {
            match base.iter().find(|(b, _)| b == name) {
                Some(&(_, baseline_ns)) => result.deltas.push(SuiteDelta {
                    suite: name.clone(),
                    baseline_ns,
                    current_ns: *current_ns,
                    ratio: current_ns / baseline_ns,
                }),
                None => result.missing_in_baseline.push(name.clone()),
            }
        }
        for (name, _) in &base {
            if !cur.iter().any(|(c, _)| c == name) {
                result.missing_in_current.push(name.clone());
            }
        }
        result
            .deltas
            .sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("finite ratios"));
        result.regressions = result
            .deltas
            .iter()
            .filter(|d| d.ratio > threshold)
            .cloned()
            .collect();
        Ok(result)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use serde_json::json;

        fn report(suites: &[(&str, f64)]) -> Value {
            let mut map = std::collections::BTreeMap::new();
            for &(name, ns) in suites {
                map.insert(name.to_string(), json!({ "ns_per_item": ns }));
            }
            json!({ "schema": "ftdb-perf/1", "suites": Value::Object(map) })
        }

        #[test]
        fn flags_only_regressions_beyond_the_threshold() {
            let baseline = report(&[("a", 100.0), ("b", 100.0), ("c", 100.0)]);
            let current = report(&[("a", 129.0), ("b", 131.0), ("c", 40.0)]);
            let cmp = compare_reports(&baseline, &current, 1.3).expect("well-formed");
            assert_eq!(cmp.deltas.len(), 3);
            assert_eq!(cmp.regressions.len(), 1);
            assert_eq!(cmp.regressions[0].suite, "b");
            assert!((cmp.regressions[0].ratio - 1.31).abs() < 1e-9);
            // Worst first.
            assert_eq!(cmp.deltas[0].suite, "b");
            assert_eq!(cmp.deltas[2].suite, "c");
        }

        #[test]
        fn suite_set_changes_are_reported_not_failed() {
            let baseline = report(&[("old", 10.0), ("kept", 10.0)]);
            let current = report(&[("kept", 10.0), ("new", 10.0)]);
            let cmp = compare_reports(&baseline, &current, 1.3).expect("well-formed");
            assert!(cmp.regressions.is_empty());
            assert_eq!(cmp.missing_in_baseline, vec!["new".to_string()]);
            assert_eq!(cmp.missing_in_current, vec!["old".to_string()]);
        }

        #[test]
        fn malformed_reports_and_thresholds_are_errors() {
            let good = report(&[("a", 10.0)]);
            assert!(compare_reports(&json!({"no": "suites"}), &good, 1.3).is_err());
            assert!(compare_reports(&report(&[("a", 0.0)]), &good, 1.3).is_err());
            assert!(compare_reports(&good, &good, 0.0).is_err());
            assert!(compare_reports(&good, &good, f64::NAN).is_err());
        }

        #[test]
        fn round_trips_through_the_json_parser() {
            // The gate reads the committed baseline from disk: parsing the
            // rendered report must reproduce the same comparison.
            let baseline = report(&[("a", 100.0), ("b", 50.0)]);
            let reparsed = serde_json::from_str(&baseline.to_string()).expect("parses");
            let current = report(&[("a", 150.0), ("b", 50.0)]);
            let cmp = compare_reports(&reparsed, &current, 1.3).expect("well-formed");
            assert_eq!(cmp.regressions.len(), 1);
            assert_eq!(cmp.regressions[0].suite, "a");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_sets_are_nonempty_and_sane() {
        assert!(!BASE2_PARAMS.is_empty());
        assert!(BASE2_PARAMS.iter().all(|&(h, k)| h >= 3 && k >= 1));
        assert!(BASE_M_PARAMS
            .iter()
            .all(|&(m, h, k)| m >= 2 && h >= 2 && k >= 1));
        assert!(VERIFY_PARAMS.iter().all(|&(h, k)| (1usize << h) + k <= 20));
        assert!(!ROUTING_H.is_empty());
    }
}
