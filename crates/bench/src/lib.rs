//! # ftdb-bench
//!
//! The benchmark harness and experiment driver for the fault-tolerant
//! de Bruijn workspace.
//!
//! * The `experiments` binary (`cargo run -p ftdb-bench --bin experiments`)
//!   regenerates every figure and table reported in `EXPERIMENTS.md`
//!   (FIG1–FIG5, TAB1–TAB3, COR1-4, THM1-2, SIM1, SIM2).
//! * The Criterion benches (`cargo bench --workspace`) measure the costs of
//!   the operations a real machine would perform: constructing the
//!   fault-tolerant graphs, reconfiguring after faults, verifying tolerance,
//!   routing, and running the Ascend emulation.
//!
//! This library crate only holds the shared parameter sets so that the
//! binary and the benches stay in sync.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// `(h, k)` pairs used for the base-2 construction/reconfiguration benches
/// and the corollary sweeps.
pub const BASE2_PARAMS: &[(usize, usize)] = &[(3, 1), (4, 1), (4, 2), (5, 2), (6, 2), (8, 4), (10, 4)];

/// `(m, h, k)` triples used for the base-m benches and sweeps.
pub const BASE_M_PARAMS: &[(usize, usize, usize)] =
    &[(3, 3, 1), (3, 3, 2), (4, 3, 1), (4, 3, 2), (5, 2, 3), (8, 2, 1)];

/// `h` values for the de Bruijn routing benches.
pub const ROUTING_H: &[usize] = &[6, 8, 10];

/// `(h, k)` pairs small enough for exhaustive `(k, G)`-tolerance
/// verification in a bench iteration.
pub const VERIFY_PARAMS: &[(usize, usize)] = &[(3, 1), (3, 2), (4, 1), (4, 2)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_sets_are_nonempty_and_sane() {
        assert!(!BASE2_PARAMS.is_empty());
        assert!(BASE2_PARAMS.iter().all(|&(h, k)| h >= 3 && k >= 1));
        assert!(BASE_M_PARAMS.iter().all(|&(m, h, k)| m >= 2 && h >= 2 && k >= 1));
        assert!(VERIFY_PARAMS.iter().all(|&(h, k)| (1usize << h) + k <= 20));
        assert!(!ROUTING_H.is_empty());
    }
}
