//! Differential-coverage audit: every public field of a report struct must
//! be compared somewhere in the differential equivalence suite.
//!
//! The wake-list engine's headline guarantee — byte-identical
//! `CongestionReport`s against the naive rescan — is only as strong as the
//! test that states it. This audit closes the loophole where a *new* report
//! field compiles, ships, and silently never participates in the
//! equivalence check: it parses the struct's public fields from source and
//! requires each field name to appear as a code token (comments don't
//! count) in the differential suite.

use std::fs;
use std::io;
use std::path::Path;

use crate::analyze::Finding;
use crate::lexer::{is_ident_char, mask};
use crate::rules::RuleId;

/// One audit: `struct_name` in `struct_file` versus the comparisons in
/// each of `test_files` (all paths workspace-relative). *Every* listed
/// suite must compare every public field — the engine-vs-rescan suite and
/// the sharded determinism suite each make an independent byte-identical
/// claim, and a field absent from either one escapes that claim.
#[derive(Debug, Clone)]
pub struct AuditSpec {
    /// File declaring the report struct.
    pub struct_file: String,
    /// The struct whose public fields are load-bearing.
    pub struct_name: String,
    /// The differential suites that must each compare every field.
    pub test_files: Vec<String>,
}

/// Runs one audit, returning `diff-coverage` findings for uncovered fields
/// (or for a missing/renamed struct or suite, so the audit cannot be
/// disabled by accident).
pub fn differential_coverage(root: &Path, spec: &AuditSpec) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let struct_path = root.join(&spec.struct_file);
    let struct_src = match fs::read_to_string(&struct_path) {
        Ok(s) => s,
        Err(_) => {
            findings.push(audit_finding(
                &spec.struct_file,
                1,
                format!(
                    "audit target file is missing (wanted `{}`)",
                    spec.struct_file
                ),
            ));
            return Ok(findings);
        }
    };
    let fields = public_fields(&struct_src, &spec.struct_name);
    let Some(fields) = fields else {
        findings.push(audit_finding(
            &spec.struct_file,
            1,
            format!(
                "audit target `pub struct {}` not found — update the analyzer policy if it moved",
                spec.struct_name
            ),
        ));
        return Ok(findings);
    };
    for test_file in &spec.test_files {
        let test_path = root.join(test_file);
        let test_src = match fs::read_to_string(&test_path) {
            Ok(s) => s,
            Err(_) => {
                findings.push(audit_finding(
                    test_file,
                    1,
                    format!(
                        "differential suite `{test_file}` is missing — the equivalence claim \
                         is untested"
                    ),
                ));
                continue;
            }
        };
        let test_code: Vec<String> = mask(&test_src).into_iter().map(|l| l.code).collect();
        for (line, field) in &fields {
            let covered = test_code.iter().any(|code| contains_word(code, field));
            if !covered {
                findings.push(audit_finding(
                    &spec.struct_file,
                    *line,
                    format!(
                        "`{}::{}` is never compared in `{}`; a divergence in it would ship \
                         silently",
                        spec.struct_name, field, test_file
                    ),
                ));
            }
        }
    }
    Ok(findings)
}

fn audit_finding(file: &str, line: usize, message: String) -> Finding {
    Finding::new(file, line, RuleId::DiffCoverage, message)
}

/// Parses `pub struct <name> { ... }` from masked source, returning each
/// public field as `(1-based line, name)`. `None` when the struct is not
/// found.
fn public_fields(source: &str, name: &str) -> Option<Vec<(usize, String)>> {
    let lines = mask(source);
    let header = format!("pub struct {name}");
    let start = lines.iter().position(|l| {
        if let Some(at) = l.code.find(&header) {
            let after = l.code[at + header.len()..].chars().next().unwrap_or(' ');
            !is_ident_char(after)
        } else {
            false
        }
    })?;
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut opened = false;
    for (j, line) in lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return Some(fields);
                    }
                }
                _ => {}
            }
        }
        if opened && depth == 1 && j > start {
            let code = line.code.trim();
            if let Some(rest) = code.strip_prefix("pub ") {
                let ident: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                if !ident.is_empty() && rest[ident.len()..].trim_start().starts_with(':') {
                    fields.push((j + 1, ident));
                }
            }
        }
    }
    // Unterminated struct (truncated file): report what was parsed.
    opened.then_some(fields)
}

fn contains_word(code: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + word.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident_char(after) {
            return true;
        }
        from = at + word.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_are_parsed_with_lines() {
        let src = "/// Doc.\npub struct R {\n    /// A.\n    pub cycles: u32,\n    /// B.\n    pub delivered: u64,\n    private_scratch: u64,\n}\n";
        let fields = public_fields(src, "R").unwrap();
        assert_eq!(
            fields,
            vec![(4, "cycles".to_string()), (6, "delivered".to_string())]
        );
    }

    #[test]
    fn comments_do_not_count_as_coverage() {
        assert!(contains_word("assert_eq!(a.cycles, b.cycles);", "cycles"));
        assert!(!contains_word("let recycles = 1;", "cycles"));
        let masked = mask("// compares cycles\nlet x = 1;\n");
        assert!(!masked.iter().any(|l| contains_word(&l.code, "cycles")));
    }

    #[test]
    fn missing_struct_is_none() {
        assert!(public_fields("pub struct Other { pub x: u32 }", "R").is_none());
    }
}
