//! Rule identifiers and token-level pattern scanners.
//!
//! Every scanner operates on a *masked* code line ([`crate::lexer::mask`]):
//! comments and literal contents have already been blanked, so plain
//! substring/boundary matching is sound.

use crate::lexer::is_ident_char;

/// Identifies one analyzer rule. The `name()` string is what appears in
/// diagnostics and in `// analyzer: allow(<rule>)` directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `.unwrap()` in a panic-free module.
    Unwrap,
    /// `.expect(..)` in a panic-free module.
    Expect,
    /// `panic!` in a panic-free module.
    Panic,
    /// `unreachable!` in a panic-free module.
    Unreachable,
    /// `todo!` in a panic-free module.
    Todo,
    /// `unimplemented!` in a panic-free module.
    Unimplemented,
    /// Indexing with an integer literal (`xs[0]`) — the slice-index cousin
    /// of `.unwrap()` — in a panic-free module.
    IndexLiteral,
    /// An allocating call inside a function annotated
    /// `// analyzer: alloc-free`.
    Alloc,
    /// `HashMap`/`HashSet` in a determinism-critical module (iteration
    /// order feeds reports).
    HashCollections,
    /// `std::time::Instant`/`SystemTime` in a determinism-critical module.
    WallClock,
    /// Ambient entropy (`thread_rng`, `from_entropy`) in a
    /// determinism-critical module.
    AmbientRng,
    /// `==`/`!=` against a floating-point literal in a determinism-critical
    /// module.
    FloatEq,
    /// A public report field that the differential equivalence suite never
    /// compares.
    DiffCoverage,
    /// A panic-capable construct in a function *reachable* from a hot-path
    /// module through the call graph (diagnosed with the offending chain).
    TransitivePanic,
    /// An `alloc-free` function calling a workspace function that is not
    /// itself annotated `alloc-free` (or excused by `trusted-call`).
    AllocPropagation,
    /// Recursion inside the `alloc-free` subgraph — an unbounded stack is
    /// an unbounded allocation.
    AllocRecursion,
    /// A channel `send`/`recv` outside the sharded engine's protocol table
    /// (unmatched endpoint, or an endpoint ignoring the `_tx`/`_rx`
    /// naming discipline the table is keyed by).
    ChannelProtocol,
    /// Boundary batches iterated in merge position without the
    /// `(dst, src)` sort that makes the merge deterministic.
    UnsortedMerge,
    /// `Mutex`/`RwLock`/`Relaxed` atomics in the shard hot path — shard
    /// state must be owned, not shared.
    ShardLock,
    /// `std::thread::spawn` in the sharded engine; only the scoped-worker
    /// entry points may create threads.
    ThreadSpawn,
    /// A single `analyzer: allow` suppressing more than one finding
    /// (one-allow-per-violation granularity).
    OverloadedAllow,
    /// An `analyzer: allow(...)` that suppresses nothing.
    StaleAllow,
    /// A malformed or unknown `analyzer:` directive.
    BadDirective,
}

impl RuleId {
    /// The stable rule name used in diagnostics and allow directives.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::Unwrap => "unwrap",
            RuleId::Expect => "expect",
            RuleId::Panic => "panic",
            RuleId::Unreachable => "unreachable",
            RuleId::Todo => "todo",
            RuleId::Unimplemented => "unimplemented",
            RuleId::IndexLiteral => "index-literal",
            RuleId::Alloc => "alloc",
            RuleId::HashCollections => "hash-collections",
            RuleId::WallClock => "wall-clock",
            RuleId::AmbientRng => "ambient-rng",
            RuleId::FloatEq => "float-eq",
            RuleId::DiffCoverage => "diff-coverage",
            RuleId::TransitivePanic => "transitive-panic",
            RuleId::AllocPropagation => "alloc-propagation",
            RuleId::AllocRecursion => "alloc-recursion",
            RuleId::ChannelProtocol => "channel-protocol",
            RuleId::UnsortedMerge => "unsorted-merge",
            RuleId::ShardLock => "shard-lock",
            RuleId::ThreadSpawn => "thread-spawn",
            RuleId::OverloadedAllow => "overloaded-allow",
            RuleId::StaleAllow => "stale-allow",
            RuleId::BadDirective => "bad-directive",
        }
    }

    /// Parses a rule name as written inside `allow(...)`.
    pub fn from_name(name: &str) -> Option<RuleId> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// Every rule, in diagnostic order.
pub const ALL_RULES: [RuleId; 23] = [
    RuleId::Unwrap,
    RuleId::Expect,
    RuleId::Panic,
    RuleId::Unreachable,
    RuleId::Todo,
    RuleId::Unimplemented,
    RuleId::IndexLiteral,
    RuleId::Alloc,
    RuleId::HashCollections,
    RuleId::WallClock,
    RuleId::AmbientRng,
    RuleId::FloatEq,
    RuleId::DiffCoverage,
    RuleId::TransitivePanic,
    RuleId::AllocPropagation,
    RuleId::AllocRecursion,
    RuleId::ChannelProtocol,
    RuleId::UnsortedMerge,
    RuleId::ShardLock,
    RuleId::ThreadSpawn,
    RuleId::OverloadedAllow,
    RuleId::StaleAllow,
    RuleId::BadDirective,
];

/// Which rule families apply to a file (alloc discipline is annotation-
/// driven and directive validation is universal, so neither needs a flag).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleSet {
    /// Panic-freedom rules (`unwrap`/`expect`/macros/index-literal).
    pub panic_free: bool,
    /// Determinism rules (hash collections, wall clock, ambient RNG,
    /// float equality).
    pub determinism: bool,
}

/// One rule hit on one line, before allowlist filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// The rule that fired.
    pub rule: RuleId,
    /// Human-readable description of the offending token.
    pub message: String,
}

/// Returns the byte offsets at which `word` occurs in `code` with
/// identifier boundaries on both sides.
pub(crate) fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + word.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident_char(after) {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

fn next_nonspace(code: &str, from: usize) -> Option<char> {
    code[from..].chars().find(|c| !c.is_whitespace())
}

fn prev_nonspace(code: &str, to: usize) -> Option<char> {
    code[..to].chars().rev().find(|c| !c.is_whitespace())
}

/// True when `word` occurs as a method call: `.word(` (or `.word::<` when
/// `turbofish` is set, for `collect::<...>()`).
fn method_call(code: &str, word: &str, turbofish: bool) -> bool {
    word_positions(code, word).into_iter().any(|at| {
        let dotted = prev_nonspace(code, at) == Some('.');
        let nxt = next_nonspace(code, at + word.len());
        dotted && (nxt == Some('(') || (turbofish && nxt == Some(':')))
    })
}

/// True when `name!` occurs as a macro invocation.
fn macro_call(code: &str, name: &str) -> bool {
    word_positions(code, name)
        .into_iter()
        .any(|at| next_nonspace(code, at + name.len()) == Some('!'))
}

/// True when the literal path `path` (e.g. `Vec::new`) occurs with
/// identifier boundaries at both ends.
pub(crate) fn path_token(code: &str, path: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find(path) {
        let at = from + rel;
        let before = code[..at].chars().next_back().unwrap_or(' ');
        let after = code[at + path.len()..].chars().next().unwrap_or(' ');
        if !is_ident_char(before) && before != ':' && !is_ident_char(after) {
            return true;
        }
        from = at + path.len();
    }
    false
}

/// True when `code` contains `expr[<int literal>]` indexing.
fn has_literal_index(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (at, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        // Indexing, not an array/slice type, literal or attribute: the
        // previous non-space char ends an expression.
        match prev_nonspace(code, at) {
            Some(c) if is_ident_char(c) || c == ')' || c == ']' => {}
            _ => continue,
        }
        let rest = code[at + 1..].trim_start();
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            continue;
        }
        let tail = &rest[digits.len()..];
        let tail = tail.trim_start_matches(|c: char| is_ident_char(c));
        if tail.trim_start().starts_with(']') {
            return true;
        }
    }
    false
}

/// True when `tok` spells a floating-point literal (`0.5`, `1.`, `1e-9`,
/// `2f64`, ...), with an optional sign.
fn is_float_literal(tok: &str) -> bool {
    let tok = tok.trim_start_matches(['-', '+']);
    let t = tok.trim_end_matches("f64").trim_end_matches("f32");
    let mut chars = t.chars();
    match chars.next() {
        Some(c) if c.is_ascii_digit() => {}
        _ => return false,
    }
    let has_dot = t.contains('.');
    let has_exp = t.contains('e') || t.contains('E');
    let body_ok = t
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-' | '_'));
    (has_dot || has_exp || t.len() < tok.len()) && body_ok
}

fn is_operand_char(c: char) -> bool {
    is_ident_char(c) || matches!(c, '.' | ':' | '-' | '+')
}

/// Extracts the operand token immediately left of byte offset `at`.
fn left_token(code: &str, at: usize) -> String {
    let s = code[..at].trim_end();
    let start = s
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_operand_char(c))
        .last()
        .map(|(p, _)| p)
        .unwrap_or(s.len());
    s[start..].to_string()
}

/// Extracts the operand token immediately right of byte offset `from`.
fn right_token(code: &str, from: usize) -> String {
    let s = code[from..].trim_start();
    let end = s.find(|c: char| !is_operand_char(c)).unwrap_or(s.len());
    s[..end].to_string()
}

/// True when the line compares (`==`/`!=`) against a float literal.
fn has_float_eq(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &bytes[i..i + 2];
        let is_eq = two == b"==";
        let is_ne = two == b"!=";
        if !(is_eq || is_ne) {
            i += 1;
            continue;
        }
        // Skip `<=`, `>=`, `!==`-ish neighbourhoods and pattern arms.
        let prev = if i == 0 { b' ' } else { bytes[i - 1] };
        let next = bytes.get(i + 2).copied().unwrap_or(b' ');
        if is_eq && matches!(prev, b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/') {
            i += 2;
            continue;
        }
        if next == b'=' {
            i += 2;
            continue;
        }
        if is_float_literal(&left_token(code, i)) || is_float_literal(&right_token(code, i + 2)) {
            return true;
        }
        i += 2;
    }
    false
}

/// Panic-freedom scan of one masked line.
pub fn panic_hits(code: &str, out: &mut Vec<Hit>) {
    if method_call(code, "unwrap", false) {
        out.push(Hit {
            rule: RuleId::Unwrap,
            message: "`.unwrap()` can panic; return a typed error or use `unwrap_or*`".into(),
        });
    }
    if method_call(code, "expect", false) {
        out.push(Hit {
            rule: RuleId::Expect,
            message: "`.expect(..)` can panic; return a typed error".into(),
        });
    }
    for (mac, rule) in [
        ("panic", RuleId::Panic),
        ("unreachable", RuleId::Unreachable),
        ("todo", RuleId::Todo),
        ("unimplemented", RuleId::Unimplemented),
    ] {
        if macro_call(code, mac) {
            out.push(Hit {
                rule,
                message: format!("`{mac}!` aborts the hot path; return a typed error"),
            });
        }
    }
    if has_literal_index(code) {
        out.push(Hit {
            rule: RuleId::IndexLiteral,
            message: "integer-literal indexing can panic; use `.get(..)` or destructure".into(),
        });
    }
}

/// Method names that allocate (or may reallocate) when called in an
/// `alloc-free` function.
const ALLOC_METHODS: [&str; 9] = [
    "push",
    "to_vec",
    "clone",
    "to_string",
    "to_owned",
    "extend",
    "reserve",
    "insert",
    "with_capacity",
];

/// Paths and macros that allocate.
const ALLOC_PATHS: [&str; 4] = ["Vec::new", "Box::new", "String::new", "String::from"];
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Allocation-discipline scan of one masked line (inside an annotated
/// function).
pub fn alloc_hits(code: &str, out: &mut Vec<Hit>) {
    for m in ALLOC_METHODS {
        if method_call(code, m, false) {
            out.push(Hit {
                rule: RuleId::Alloc,
                message: format!("`.{m}(..)` allocates inside an `alloc-free` function"),
            });
        }
    }
    if method_call(code, "collect", true) {
        out.push(Hit {
            rule: RuleId::Alloc,
            message: "`.collect()` allocates inside an `alloc-free` function".into(),
        });
    }
    for p in ALLOC_PATHS {
        if path_token(code, p) {
            out.push(Hit {
                rule: RuleId::Alloc,
                message: format!("`{p}` allocates inside an `alloc-free` function"),
            });
        }
    }
    for m in ALLOC_MACROS {
        if macro_call(code, m) {
            out.push(Hit {
                rule: RuleId::Alloc,
                message: format!("`{m}!` allocates inside an `alloc-free` function"),
            });
        }
    }
}

/// Determinism scan of one masked line.
pub fn determinism_hits(code: &str, out: &mut Vec<Hit>) {
    for ty in ["HashMap", "HashSet"] {
        if !word_positions(code, ty).is_empty() {
            out.push(Hit {
                rule: RuleId::HashCollections,
                message: format!(
                    "`{ty}` has nondeterministic iteration order; use `BTreeMap`/sorted `Vec`"
                ),
            });
        }
    }
    for ty in ["Instant", "SystemTime"] {
        if !word_positions(code, ty).is_empty() {
            out.push(Hit {
                rule: RuleId::WallClock,
                message: format!("`{ty}` reads the wall clock; reports must be replayable"),
            });
        }
    }
    for f in ["thread_rng", "from_entropy"] {
        if !word_positions(code, f).is_empty() {
            out.push(Hit {
                rule: RuleId::AmbientRng,
                message: format!("`{f}` draws ambient entropy; thread a seeded RNG instead"),
            });
        }
    }
    if has_float_eq(code) {
        out.push(Hit {
            rule: RuleId::FloatEq,
            message: "float `==`/`!=` is representation-fragile; compare with a tolerance".into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panic_rules(code: &str) -> Vec<RuleId> {
        let mut v = Vec::new();
        panic_hits(code, &mut v);
        v.into_iter().map(|h| h.rule).collect()
    }

    fn det_rules(code: &str) -> Vec<RuleId> {
        let mut v = Vec::new();
        determinism_hits(code, &mut v);
        v.into_iter().map(|h| h.rule).collect()
    }

    fn alloc_count(code: &str) -> usize {
        let mut v = Vec::new();
        alloc_hits(code, &mut v);
        v.len()
    }

    #[test]
    fn unwrap_matches_the_call_not_relatives() {
        assert_eq!(panic_rules("x.unwrap();"), vec![RuleId::Unwrap]);
        assert!(panic_rules("x.unwrap_or(0);").is_empty());
        assert!(panic_rules("x.unwrap_or_else(f);").is_empty());
        assert!(panic_rules("let unwrap = 3;").is_empty());
    }

    #[test]
    fn macros_match_with_bang_only() {
        assert_eq!(panic_rules("panic!(\"x\")"), vec![RuleId::Panic]);
        assert!(panic_rules("self.panic_count += 1;").is_empty());
        assert_eq!(panic_rules("unreachable!()"), vec![RuleId::Unreachable]);
    }

    #[test]
    fn literal_indexing_flags_expressions_not_types() {
        assert_eq!(panic_rules("let a = xs[0];"), vec![RuleId::IndexLiteral]);
        assert_eq!(panic_rules("w[1].0"), vec![RuleId::IndexLiteral]);
        assert!(panic_rules("let a: [u32; 4] = make();").is_empty());
        assert!(panic_rules("let a = [0, 1];").is_empty());
        assert!(panic_rules("xs[i]").is_empty());
    }

    #[test]
    fn float_eq_catches_literal_comparisons() {
        assert_eq!(det_rules("if x == 0.0 {"), vec![RuleId::FloatEq]);
        assert_eq!(det_rules("if 1e-9 != y {"), vec![RuleId::FloatEq]);
        assert!(det_rules("if x == 0 {").is_empty());
        assert!(det_rules("if x <= 0.5 {").is_empty());
        assert!(det_rules("let z = x / 2.0;").is_empty());
    }

    #[test]
    fn determinism_types_match_as_words() {
        assert_eq!(
            det_rules("use std::collections::HashMap;"),
            vec![RuleId::HashCollections]
        );
        assert!(det_rules("let my_hash_map_like = 1;").is_empty());
        assert_eq!(
            det_rules("let t = Instant::now();"),
            vec![RuleId::WallClock]
        );
    }

    #[test]
    fn alloc_patterns_cover_the_policy_list() {
        assert_eq!(alloc_count("self.buf.push(x);"), 1);
        assert_eq!(alloc_count("let v: Vec<u32> = it.collect();"), 1);
        assert_eq!(alloc_count("let v = it.collect::<Vec<_>>();"), 1);
        assert_eq!(alloc_count("let s = format!(\"{x}\");"), 1);
        assert_eq!(alloc_count("let b = Box::new(x);"), 1);
        assert_eq!(alloc_count("let v = Vec::new();"), 1);
        assert_eq!(alloc_count("let c = x.clone();"), 1);
        assert_eq!(alloc_count("let n = x.count();"), 0);
    }
}
