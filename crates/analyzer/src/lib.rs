//! # ftdb-analyzer
//!
//! A self-contained, dependency-free static-analysis gate for this
//! workspace: it makes "no panics, no allocations, no nondeterminism in
//! the cycle loop" a *build-time* property instead of a test-time hope.
//!
//! The repo's headline claims — byte-identical `CongestionReport`s across
//! engines, shard counts, thread counts, and healthy-vs-reconfigured runs
//! — previously rested on dynamic checks only (the differential property
//! suite and the counting allocator). This crate adds the static mirror:
//!
//! | Rule family | Scope | Catches |
//! |---|---|---|
//! | panic-freedom | hot-path modules ([`Policy::panic_files`](policy::Policy)) | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`, integer-literal indexing |
//! | transitive panic-freedom | everything *reachable* from a hot-path module over the call graph ([`callgraph`], [`interproc`]) | the same panic family in helpers one or more calls away, with the offending call chain in the diagnostic |
//! | allocation discipline | functions annotated `// analyzer: alloc-free` | `Vec::new`/`vec!`/`push`/`collect`/`to_vec`/`clone`/`format!`/`Box::new`/..., calls into non-`alloc-free` functions, recursion inside the alloc-free subgraph |
//! | determinism | `crates/sim`, `crates/analysis` sources | `HashMap`/`HashSet`, `Instant`/`SystemTime`, `thread_rng`, float `==` |
//! | sharded concurrency | `congestion/shard.rs` + `boundary.rs` ([`concurrency`]) | unmatched channel send/recv stems, batch merges without the `(dst, src)` sort, `Mutex`/`RwLock`/`Relaxed`, `std::thread::spawn` |
//! | differential coverage | `CongestionReport` ↔ its equivalence suites | a report field some equivalence suite never compares |
//!
//! Violations carry `file:line` diagnostics (interprocedural ones also a
//! call chain). Proven-invariant sites are annotated inline —
//! `// analyzer: allow(<rule>) -- <justification>` — and the allowlist is
//! self-policing: an allow that suppresses nothing is an error
//! (`stale-allow`), and one that suppresses more than one finding is too
//! (`overloaded-allow`), so suppressions stay one-per-violation and
//! auditable (`ftdb-analyzer allows`). Call edges vetted by hand use
//! `// analyzer: trusted-call -- <why>`.
//!
//! The scanner is source-level: a small lexer ([`lexer`]) masks comments
//! and string/char literals before token matching, and the call graph
//! ([`callgraph`]) is name-resolved *over-approximately* — unresolvable
//! calls become explicit opaque edges rather than silent gaps — so the
//! rules are sound-for-a-gate on rustfmt-formatted code without needing
//! `syn` (no registry access in this environment). `#[cfg(test)]` items
//! are exempt — the gate protects shipped hot paths, not the assertions
//! about them.
//!
//! Run it locally with `cargo run -p ftdb-analyzer -- check`; CI runs the
//! same command (with `--format github`) as the blocking `lint-gate` job.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analyze;
pub mod audit;
pub mod callgraph;
pub mod concurrency;
pub mod interproc;
pub mod lexer;
pub mod policy;
pub mod rules;

pub use analyze::{analyze_source, Finding};
pub use policy::{check, run, Analysis, Policy};
pub use rules::{RuleId, RuleSet};

use std::io;
use std::path::Path;

/// Runs the committed workspace policy ([`Policy::workspace`]) over the
/// tree rooted at `root`, returning all findings sorted by path and line.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    check(root, &Policy::workspace())
}
