//! # ftdb-analyzer
//!
//! A self-contained, dependency-free static-analysis gate for this
//! workspace: it makes "no panics, no allocations, no nondeterminism in
//! the cycle loop" a *build-time* property instead of a test-time hope.
//!
//! The repo's headline claims — byte-identical `CongestionReport`s across
//! engines, thread counts, and healthy-vs-reconfigured runs — previously
//! rested on dynamic checks only (the differential property suite and the
//! counting allocator). This crate adds the static mirror:
//!
//! | Rule family | Scope | Catches |
//! |---|---|---|
//! | panic-freedom | hot-path modules ([`Policy::panic_files`](policy::Policy)) | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`, integer-literal indexing |
//! | allocation discipline | functions annotated `// analyzer: alloc-free` | `Vec::new`/`vec!`/`push`/`collect`/`to_vec`/`clone`/`format!`/`Box::new`/... |
//! | determinism | `crates/sim`, `crates/analysis` sources | `HashMap`/`HashSet`, `Instant`/`SystemTime`, `thread_rng`, float `==` |
//! | differential coverage | `CongestionReport` ↔ `wakelist_differential.rs` | a report field the equivalence suite never compares |
//!
//! Violations carry `file:line` diagnostics. Proven-invariant sites are
//! annotated inline — `// analyzer: allow(<rule>) -- <justification>` —
//! and an allow that suppresses nothing is itself an error
//! (`stale-allow`), so suppressions cannot outlive the code they excuse.
//!
//! The scanner is source-level: a small lexer ([`lexer`]) masks comments
//! and string/char literals before token matching, so the rules are sound
//! on rustfmt-formatted code without needing `syn` (no registry access in
//! this environment). `#[cfg(test)]` items are exempt — the gate protects
//! shipped hot paths, not the assertions about them.
//!
//! Run it locally with `cargo run -p ftdb-analyzer -- check`; CI runs the
//! same command as the blocking `lint-gate` job.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analyze;
pub mod audit;
pub mod lexer;
pub mod policy;
pub mod rules;

pub use analyze::{analyze_source, Finding};
pub use policy::{check, Policy};
pub use rules::{RuleId, RuleSet};

use std::io;
use std::path::Path;

/// Runs the committed workspace policy ([`Policy::workspace`]) over the
/// tree rooted at `root`, returning all findings sorted by path and line.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    check(root, &Policy::workspace())
}
