//! Per-file analysis: parses `// analyzer:` directives into a reusable
//! [`FileUnit`], runs the token-level rule scanners over masked source, and
//! reconciles findings against the allowlist.
//!
//! ## Directive syntax
//!
//! * `// analyzer: alloc-free` — on its own line immediately above a `fn`
//!   (attributes and doc comments may intervene): the function's body must
//!   not contain any allocating call ([`crate::rules::alloc_hits`]), and —
//!   since PR 8 — every workspace function it *calls* must itself be
//!   annotated `alloc-free` ([`crate::interproc`]).
//! * `// analyzer: allow(<rule>[, <rule>...]) -- <justification>` — trailing
//!   on the violating line, or on its own line immediately above it:
//!   suppresses findings of the named rule(s) on that line. The
//!   justification is mandatory; an allow that suppresses nothing is an
//!   error (`stale-allow`), and an allow that suppresses *more than one*
//!   finding is too (`overloaded-allow`) — one allow per violation, so the
//!   allowlist can be audited site by site (`ftdb-analyzer allows`).
//! * `// analyzer: trusted-call -- <justification>` — trailing on a call
//!   line, or on its own line immediately above it: the interprocedural
//!   passes treat call sites on that line as opaque-but-vetted edges (not
//!   followed for panic reachability, accepted inside `alloc-free`
//!   functions). The justification is mandatory.
//!
//! Code inside `#[cfg(test)]` items is exempt from all rules: tests may
//! unwrap, allocate, and compare floats — the gate protects shipped hot
//! paths, not assertions about them.

use crate::lexer::{is_ident_char, mask, MaskedLine};
use crate::rules::{self, RuleId, RuleSet};

/// One diagnostic: a rule violation (or a directive problem) at a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that produced the finding.
    pub rule: RuleId,
    /// Human-readable description (interprocedural findings embed their
    /// call chain here too, so the text diagnostic is self-contained).
    pub message: String,
    /// The call chain for interprocedural findings, entry point first,
    /// each element `file.rs::function`. Empty for single-file findings.
    pub chain: Vec<String>,
    /// For allowlist findings (`stale-allow`/`overloaded-allow`), the
    /// justification text of the offending directive.
    pub justification: Option<String>,
}

impl Finding {
    /// A single-file finding with no chain or justification payload.
    pub fn new(file: &str, line: usize, rule: RuleId, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message,
            chain: Vec::new(),
            justification: None,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// One parsed `allow` directive: where it is, what it excuses, why, and how
/// many findings it ended up suppressing.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// Line the directive itself sits on.
    pub directive_line: usize,
    /// Code line the directive applies to.
    pub target_line: usize,
    /// The rule it suppresses.
    pub rule: RuleId,
    /// Mandatory justification text.
    pub justification: String,
    /// Findings suppressed (filled by [`apply_allows`]); exactly one is
    /// healthy, zero is `stale-allow`, more is `overloaded-allow`.
    pub uses: usize,
}

/// One source file, parsed once: masked lines, test-exemption map, and
/// every directive — the shared substrate for the per-file scanners, the
/// call-graph builder, and the interprocedural passes.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative, `/`-separated path.
    pub rel: String,
    /// Masked source lines ([`crate::lexer::mask`]).
    pub lines: Vec<MaskedLine>,
    /// Per-line `#[cfg(test)]` exemption flags.
    pub exempt: Vec<bool>,
    /// Parsed `allow` directives.
    pub allows: Vec<AllowSite>,
    /// 1-based inclusive body spans of `alloc-free`-annotated functions
    /// (first element is the `fn` line).
    pub alloc_spans: Vec<(usize, usize)>,
    /// Target lines of `trusted-call` directives.
    pub trusted: Vec<usize>,
    /// Malformed-directive findings raised during parsing.
    pub problems: Vec<Finding>,
}

impl FileUnit {
    /// True when 1-based `line` is inside an `alloc-free` function body.
    pub fn in_alloc_span(&self, line: usize) -> bool {
        self.alloc_spans
            .iter()
            .any(|&(s, e)| line >= s && line <= e)
    }

    /// True when 1-based `line` carries a `trusted-call` directive.
    pub fn is_trusted_line(&self, line: usize) -> bool {
        self.trusted.contains(&line)
    }
}

/// Parses one file's directives into a [`FileUnit`].
pub fn parse_unit(rel: &str, source: &str) -> FileUnit {
    let lines = mask(source);
    let exempt = test_exempt_lines(&lines);
    let mut unit = FileUnit {
        rel: rel.to_string(),
        lines,
        exempt,
        allows: Vec::new(),
        alloc_spans: Vec::new(),
        trusted: Vec::new(),
        problems: Vec::new(),
    };
    for idx in 0..unit.lines.len() {
        if unit.exempt[idx] {
            continue;
        }
        let line = &unit.lines[idx];
        let comment = match &line.comment {
            Some(c) => c.trim(),
            None => continue,
        };
        let body = match comment.strip_prefix("analyzer:") {
            Some(b) => b.trim().to_string(),
            None => continue,
        };
        let lineno = idx + 1;
        let own_line = line.code.trim().is_empty();
        if body == "alloc-free" {
            if !own_line {
                unit.problems.push(bad_directive(
                    rel,
                    lineno,
                    "`alloc-free` must be on its own line above the function it annotates",
                ));
            } else {
                match alloc_span(&unit.lines, idx) {
                    Some(span) => unit.alloc_spans.push(span),
                    None => unit.problems.push(bad_directive(
                        rel,
                        lineno,
                        "`alloc-free` is not followed by a function",
                    )),
                }
            }
        } else if let Some(rest) = body.strip_prefix("allow(") {
            match parse_allow(rest) {
                Ok((rule_names, justification)) => {
                    let target = if own_line {
                        next_code_line(&unit.lines, idx)
                    } else {
                        Some(lineno)
                    };
                    let Some(target_line) = target else {
                        unit.problems.push(bad_directive(
                            rel,
                            lineno,
                            "`allow` has no following code line to apply to",
                        ));
                        continue;
                    };
                    for name in rule_names {
                        match RuleId::from_name(&name) {
                            Some(rule) => unit.allows.push(AllowSite {
                                directive_line: lineno,
                                target_line,
                                rule,
                                justification: justification.clone(),
                                uses: 0,
                            }),
                            None => unit.problems.push(bad_directive(
                                rel,
                                lineno,
                                &format!("unknown rule `{name}` in `allow(..)`"),
                            )),
                        }
                    }
                }
                Err(msg) => unit.problems.push(bad_directive(rel, lineno, msg)),
            }
        } else if let Some(rest) = body.strip_prefix("trusted-call") {
            let justification = rest.trim().strip_prefix("--").map(str::trim);
            match justification {
                Some(j) if !j.is_empty() => {
                    let target = if own_line {
                        next_code_line(&unit.lines, idx)
                    } else {
                        Some(lineno)
                    };
                    match target {
                        Some(t) => unit.trusted.push(t),
                        None => unit.problems.push(bad_directive(
                            rel,
                            lineno,
                            "`trusted-call` has no following code line to apply to",
                        )),
                    }
                }
                _ => unit.problems.push(bad_directive(
                    rel,
                    lineno,
                    "`trusted-call` needs a ` -- <justification>`",
                )),
            }
        } else {
            unit.problems.push(bad_directive(
                rel,
                lineno,
                &format!("unknown directive `analyzer: {body}`"),
            ));
        }
    }
    unit
}

/// Runs the per-file (intraprocedural) rule scanners over `unit` under
/// `set`, returning *raw* findings — allowlist reconciliation happens
/// later, in [`apply_allows`], so interprocedural findings share the same
/// allow bookkeeping.
pub fn scan_unit(unit: &FileUnit, set: RuleSet) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut hits = Vec::new();
    for (idx, line) in unit.lines.iter().enumerate() {
        if unit.exempt[idx] {
            continue;
        }
        let lineno = idx + 1;
        hits.clear();
        if set.panic_free {
            rules::panic_hits(&line.code, &mut hits);
        }
        if set.determinism {
            rules::determinism_hits(&line.code, &mut hits);
        }
        if unit.in_alloc_span(lineno) {
            rules::alloc_hits(&line.code, &mut hits);
        }
        for hit in hits.drain(..) {
            findings.push(Finding::new(&unit.rel, lineno, hit.rule, hit.message));
        }
    }
    findings
}

/// Reconciles raw findings against every unit's allowlist: suppressed
/// findings are dropped (counting each allow's uses), then stale and
/// overloaded allows become findings themselves. Directive problems are
/// appended too, so the result is the complete diagnosis for `units`.
pub fn apply_allows(units: &mut [FileUnit], raw: Vec<Finding>) -> Vec<Finding> {
    let mut findings = Vec::new();
    'finding: for f in raw {
        for unit in units.iter_mut() {
            if unit.rel != f.file {
                continue;
            }
            for allow in unit.allows.iter_mut() {
                if allow.target_line == f.line && allow.rule == f.rule {
                    allow.uses += 1;
                    continue 'finding;
                }
            }
        }
        findings.push(f);
    }
    for unit in units.iter() {
        for allow in &unit.allows {
            if allow.uses == 0 {
                findings.push(Finding {
                    file: unit.rel.clone(),
                    line: allow.directive_line,
                    rule: RuleId::StaleAllow,
                    message: format!(
                        "`allow({})` suppresses nothing on line {}; remove it",
                        allow.rule.name(),
                        allow.target_line
                    ),
                    chain: Vec::new(),
                    justification: Some(allow.justification.clone()),
                });
            } else if allow.uses > 1 {
                findings.push(Finding {
                    file: unit.rel.clone(),
                    line: allow.directive_line,
                    rule: RuleId::OverloadedAllow,
                    message: format!(
                        "`allow({})` suppresses {} findings on line {}; split the line so \
                         each violation carries its own allow",
                        allow.rule.name(),
                        allow.uses,
                        allow.target_line
                    ),
                    chain: Vec::new(),
                    justification: Some(allow.justification.clone()),
                });
            }
        }
        findings.extend(unit.problems.iter().cloned());
    }
    findings
}

/// Analyzes one file's source text under `set` — parse, scan, reconcile —
/// returning its findings sorted by line. The single-file convenience
/// wrapper over [`parse_unit`]/[`scan_unit`]/[`apply_allows`]; the
/// workspace gate ([`crate::policy::check`]) drives the same pieces plus
/// the interprocedural passes.
pub fn analyze_source(file: &str, source: &str, set: RuleSet) -> Vec<Finding> {
    let mut unit = parse_unit(file, source);
    let raw = scan_unit(&unit, set);
    let mut findings = apply_allows(std::slice::from_mut(&mut unit), raw);
    findings.sort_by_key(|a| (a.line, a.rule));
    findings
}

fn bad_directive(file: &str, line: usize, msg: &str) -> Finding {
    Finding::new(file, line, RuleId::BadDirective, msg.to_string())
}

/// Parses the tail of `allow(` — `rule[, rule]) -- justification` — into
/// rule names, requiring a non-empty justification.
fn parse_allow(rest: &str) -> Result<(Vec<String>, String), &'static str> {
    let close = rest
        .find(')')
        .ok_or("`allow(` is missing its closing `)`")?;
    let names: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if names.is_empty() {
        return Err("`allow()` names no rule");
    }
    let after = rest[close + 1..].trim();
    let justification = after
        .strip_prefix("--")
        .map(str::trim)
        .ok_or("`allow(..)` needs a ` -- <justification>`")?;
    if justification.is_empty() {
        return Err("`allow(..)` has an empty justification");
    }
    Ok((names, justification.to_string()))
}

/// The next 1-based line after `idx` whose masked code is non-empty.
fn next_code_line(lines: &[MaskedLine], idx: usize) -> Option<usize> {
    lines[idx + 1..]
        .iter()
        .position(|l| !l.code.trim().is_empty())
        .map(|rel| idx + 1 + rel + 1)
}

/// Resolves an `alloc-free` annotation at line index `idx` to the 1-based
/// inclusive body span of the next function.
fn alloc_span(lines: &[MaskedLine], idx: usize) -> Option<(usize, usize)> {
    // Find the `fn` line (skipping attributes/doc lines), within a small
    // window so a detached annotation is an error rather than silently
    // latching onto distant code.
    let mut fn_idx = None;
    for (j, line) in lines.iter().enumerate().skip(idx + 1).take(16) {
        let code = line.code.trim();
        if code.is_empty() || code.starts_with("#[") {
            continue;
        }
        if has_fn_keyword(&line.code) {
            fn_idx = Some(j);
            break;
        }
        return None;
    }
    let fn_idx = fn_idx?;
    // Brace-match from the `fn` keyword to the end of the body.
    let mut depth = 0usize;
    let mut opened = false;
    for (j, line) in lines.iter().enumerate().skip(fn_idx) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return Some((fn_idx + 1, j + 1));
                    }
                }
                // A trait-style signature (`fn f();`) before any `{` has no
                // body to check.
                ';' if !opened && depth == 0 => return Some((fn_idx + 1, j + 1)),
                _ => {}
            }
        }
    }
    opened.then_some((fn_idx + 1, lines.len()))
}

/// True when the masked line contains the `fn` keyword with identifier
/// boundaries (not `fn_ptr` or `a_fn`).
pub fn has_fn_keyword(code: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find("fn") {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + 2..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident_char(after) {
            return true;
        }
        from = at + 2;
    }
    false
}

/// Marks the lines covered by `#[cfg(test)]` items (normally the trailing
/// `mod tests { ... }`) as rule-exempt.
fn test_exempt_lines(lines: &[MaskedLine]) -> Vec<bool> {
    let mut exempt = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Walk to the end of the annotated item: either a braced body or a
        // `;`-terminated item, whichever closes first.
        let mut depth = 0usize;
        let mut opened = false;
        let mut end = lines.len() - 1;
        'outer: for (j, line) in lines.iter().enumerate().skip(i) {
            // Skip past the attribute itself so its own brackets don't
            // confuse the count.
            let code: &str = if j == i {
                let at = line.code.find("#[cfg(test)]").unwrap_or(0);
                &line.code[at + "#[cfg(test)]".len()..]
            } else {
                &line.code
            };
            for c in code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            end = j;
                            break 'outer;
                        }
                    }
                    ';' if !opened && depth == 0 => {
                        end = j;
                        break 'outer;
                    }
                    _ => {}
                }
            }
        }
        for flag in exempt.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    exempt
}

#[cfg(test)]
mod tests {
    use super::*;

    const PANIC_SET: RuleSet = RuleSet {
        panic_free: true,
        determinism: false,
    };

    fn rules_of(findings: &[Finding]) -> Vec<(usize, RuleId)> {
        findings.iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn findings_carry_file_line_and_rule() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let f = analyze_source("m.rs", src, PANIC_SET);
        assert_eq!(rules_of(&f), vec![(2, RuleId::Unwrap)]);
        assert_eq!(
            f[0].to_string(),
            format!("m.rs:2: [unwrap] {}", f[0].message)
        );
    }

    #[test]
    fn trailing_allow_suppresses_and_is_not_stale() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // analyzer: allow(unwrap) -- checked by caller\n}\n";
        assert!(analyze_source("m.rs", src, PANIC_SET).is_empty());
    }

    #[test]
    fn own_line_allow_applies_to_next_code_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // analyzer: allow(unwrap) -- checked by caller\n    x.unwrap()\n}\n";
        assert!(analyze_source("m.rs", src, PANIC_SET).is_empty());
    }

    #[test]
    fn stale_allow_is_a_finding() {
        let src = "fn f() {\n    // analyzer: allow(unwrap) -- nothing here\n    let y = 1;\n}\n";
        let f = analyze_source("m.rs", src, PANIC_SET);
        assert_eq!(rules_of(&f), vec![(2, RuleId::StaleAllow)]);
        assert_eq!(f[0].justification.as_deref(), Some("nothing here"));
    }

    #[test]
    fn overloaded_allow_is_a_finding() {
        let src = "// analyzer: alloc-free\nfn f(v: &mut Vec<u32>, w: &mut Vec<u32>) {\n    v.push(1); w.insert(0, 2) // analyzer: allow(alloc) -- two at once\n}\n";
        let f = analyze_source("m.rs", src, RuleSet::default());
        assert_eq!(rules_of(&f), vec![(3, RuleId::OverloadedAllow)]);
        assert!(f[0].message.contains("2 findings"), "{}", f[0].message);
    }

    #[test]
    fn allow_requires_known_rule_and_justification() {
        let src = "fn f() {\n    // analyzer: allow(frobnicate) -- x\n    let y = 1;\n    // analyzer: allow(unwrap)\n    let z = 2;\n}\n";
        let f = analyze_source("m.rs", src, PANIC_SET);
        assert_eq!(
            rules_of(&f),
            vec![(2, RuleId::BadDirective), (4, RuleId::BadDirective)]
        );
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn f() -> u32 {\n    1\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n        panic!(\"fine in tests\");\n    }\n}\n";
        assert!(analyze_source("m.rs", src, PANIC_SET).is_empty());
    }

    #[test]
    fn alloc_free_annotation_checks_the_next_fn_body() {
        let src = "// analyzer: alloc-free\n#[inline]\nfn hot(buf: &mut Vec<u32>) {\n    buf.push(1);\n}\n\nfn cold(buf: &mut Vec<u32>) {\n    buf.push(2);\n}\n";
        let f = analyze_source("m.rs", src, RuleSet::default());
        assert_eq!(rules_of(&f), vec![(4, RuleId::Alloc)]);
    }

    #[test]
    fn detached_alloc_free_is_a_bad_directive() {
        let src = "// analyzer: alloc-free\nconst X: u32 = 1;\n";
        let f = analyze_source("m.rs", src, RuleSet::default());
        assert_eq!(rules_of(&f), vec![(1, RuleId::BadDirective)]);
    }

    #[test]
    fn multi_rule_allow_tracks_staleness_per_rule() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // analyzer: allow(unwrap, expect) -- only unwrap fires\n}\n";
        let f = analyze_source("m.rs", src, PANIC_SET);
        assert_eq!(rules_of(&f), vec![(2, RuleId::StaleAllow)]);
    }

    #[test]
    fn trusted_call_parses_with_justification_only() {
        let unit = parse_unit(
            "m.rs",
            "fn f() {\n    helper(); // analyzer: trusted-call -- vetted by hand\n    // analyzer: trusted-call -- own line form\n    other();\n}\n",
        );
        assert_eq!(unit.trusted, vec![2, 4]);
        assert!(unit.problems.is_empty(), "{:?}", unit.problems);
        let unit = parse_unit(
            "m.rs",
            "fn f() {\n    helper(); // analyzer: trusted-call\n}\n",
        );
        assert_eq!(rules_of(&unit.problems), vec![(2, RuleId::BadDirective)]);
    }
}
