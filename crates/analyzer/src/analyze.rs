//! Per-file analysis: runs the rule scanners over masked source, applies
//! `// analyzer:` directives, and reports findings.
//!
//! ## Directive syntax
//!
//! * `// analyzer: alloc-free` — on its own line immediately above a `fn`
//!   (attributes and doc comments may intervene): the function's body must
//!   not contain any allocating call ([`crate::rules::alloc_hits`]).
//! * `// analyzer: allow(<rule>[, <rule>...]) -- <justification>` — trailing
//!   on the violating line, or on its own line immediately above it:
//!   suppresses findings of the named rule(s) on that line. The
//!   justification is mandatory, and an allow that suppresses nothing is
//!   itself an error (`stale-allow`), so the allowlist cannot rot.
//!
//! Code inside `#[cfg(test)]` items is exempt from all rules: tests may
//! unwrap, allocate, and compare floats — the gate protects shipped hot
//! paths, not assertions about them.

use crate::lexer::{is_ident_char, mask, MaskedLine};
use crate::rules::{self, RuleId, RuleSet};

/// One diagnostic: a rule violation (or a directive problem) at a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that produced the finding.
    pub rule: RuleId,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// A parsed `allow` directive and its suppression bookkeeping.
#[derive(Debug)]
struct Allow {
    directive_line: usize,
    target_line: usize,
    rule: RuleId,
    used: bool,
}

/// Analyzes one file's source text under `set`, returning its findings
/// sorted by line.
pub fn analyze_source(file: &str, source: &str, set: RuleSet) -> Vec<Finding> {
    let lines = mask(source);
    let exempt = test_exempt_lines(&lines);
    let mut findings = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    let mut alloc_spans: Vec<(usize, usize)> = Vec::new();

    // Pass 1: directives.
    for (idx, line) in lines.iter().enumerate() {
        if exempt[idx] {
            continue;
        }
        let comment = match &line.comment {
            Some(c) => c.trim(),
            None => continue,
        };
        let body = match comment.strip_prefix("analyzer:") {
            Some(b) => b.trim(),
            None => continue,
        };
        let lineno = idx + 1;
        if body == "alloc-free" {
            if !line.code.trim().is_empty() {
                findings.push(bad_directive(
                    file,
                    lineno,
                    "`alloc-free` must be on its own line above the function it annotates",
                ));
            } else {
                match alloc_span(&lines, idx) {
                    Some(span) => alloc_spans.push(span),
                    None => findings.push(bad_directive(
                        file,
                        lineno,
                        "`alloc-free` is not followed by a function",
                    )),
                }
            }
        } else if let Some(rest) = body.strip_prefix("allow(") {
            match parse_allow(rest) {
                Ok((rule_names, _justification)) => {
                    let target = if line.code.trim().is_empty() {
                        next_code_line(&lines, idx)
                    } else {
                        Some(lineno)
                    };
                    let Some(target_line) = target else {
                        findings.push(bad_directive(
                            file,
                            lineno,
                            "`allow` has no following code line to apply to",
                        ));
                        continue;
                    };
                    for name in rule_names {
                        match RuleId::from_name(&name) {
                            Some(rule) => allows.push(Allow {
                                directive_line: lineno,
                                target_line,
                                rule,
                                used: false,
                            }),
                            None => findings.push(bad_directive(
                                file,
                                lineno,
                                &format!("unknown rule `{name}` in `allow(..)`"),
                            )),
                        }
                    }
                }
                Err(msg) => findings.push(bad_directive(file, lineno, msg)),
            }
        } else {
            findings.push(bad_directive(
                file,
                lineno,
                &format!("unknown directive `analyzer: {body}`"),
            ));
        }
    }

    // Pass 2: rules.
    let mut hits = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if exempt[idx] {
            continue;
        }
        let lineno = idx + 1;
        hits.clear();
        if set.panic_free {
            rules::panic_hits(&line.code, &mut hits);
        }
        if set.determinism {
            rules::determinism_hits(&line.code, &mut hits);
        }
        if alloc_spans.iter().any(|&(s, e)| lineno >= s && lineno <= e) {
            rules::alloc_hits(&line.code, &mut hits);
        }
        'hit: for hit in hits.drain(..) {
            for allow in allows.iter_mut() {
                if allow.target_line == lineno && allow.rule == hit.rule {
                    allow.used = true;
                    continue 'hit;
                }
            }
            findings.push(Finding {
                file: file.to_string(),
                line: lineno,
                rule: hit.rule,
                message: hit.message,
            });
        }
    }

    // Pass 3: allowlist staleness.
    for allow in &allows {
        if !allow.used {
            findings.push(Finding {
                file: file.to_string(),
                line: allow.directive_line,
                rule: RuleId::StaleAllow,
                message: format!(
                    "`allow({})` suppresses nothing on line {}; remove it",
                    allow.rule.name(),
                    allow.target_line
                ),
            });
        }
    }

    findings.sort_by_key(|a| (a.line, a.rule));
    findings
}

fn bad_directive(file: &str, line: usize, msg: &str) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule: RuleId::BadDirective,
        message: msg.to_string(),
    }
}

/// Parses the tail of `allow(` — `rule[, rule]) -- justification` — into
/// rule names, requiring a non-empty justification.
fn parse_allow(rest: &str) -> Result<(Vec<String>, String), &'static str> {
    let close = rest
        .find(')')
        .ok_or("`allow(` is missing its closing `)`")?;
    let names: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if names.is_empty() {
        return Err("`allow()` names no rule");
    }
    let after = rest[close + 1..].trim();
    let justification = after
        .strip_prefix("--")
        .map(str::trim)
        .ok_or("`allow(..)` needs a ` -- <justification>`")?;
    if justification.is_empty() {
        return Err("`allow(..)` has an empty justification");
    }
    Ok((names, justification.to_string()))
}

/// The next 1-based line after `idx` whose masked code is non-empty.
fn next_code_line(lines: &[MaskedLine], idx: usize) -> Option<usize> {
    lines[idx + 1..]
        .iter()
        .position(|l| !l.code.trim().is_empty())
        .map(|rel| idx + 1 + rel + 1)
}

/// Resolves an `alloc-free` annotation at line index `idx` to the 1-based
/// inclusive body span of the next function.
fn alloc_span(lines: &[MaskedLine], idx: usize) -> Option<(usize, usize)> {
    // Find the `fn` line (skipping attributes/doc lines), within a small
    // window so a detached annotation is an error rather than silently
    // latching onto distant code.
    let mut fn_idx = None;
    for (j, line) in lines.iter().enumerate().skip(idx + 1).take(16) {
        let code = line.code.trim();
        if code.is_empty() || code.starts_with("#[") {
            continue;
        }
        if has_fn_keyword(&line.code) {
            fn_idx = Some(j);
            break;
        }
        return None;
    }
    let fn_idx = fn_idx?;
    // Brace-match from the `fn` keyword to the end of the body.
    let mut depth = 0usize;
    let mut opened = false;
    for (j, line) in lines.iter().enumerate().skip(fn_idx) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return Some((fn_idx + 1, j + 1));
                    }
                }
                // A trait-style signature (`fn f();`) before any `{` has no
                // body to check.
                ';' if !opened && depth == 0 => return Some((fn_idx + 1, j + 1)),
                _ => {}
            }
        }
    }
    opened.then_some((fn_idx + 1, lines.len()))
}

fn has_fn_keyword(code: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find("fn") {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
        let after = code[at + 2..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident_char(after) {
            return true;
        }
        from = at + 2;
    }
    false
}

/// Marks the lines covered by `#[cfg(test)]` items (normally the trailing
/// `mod tests { ... }`) as rule-exempt.
fn test_exempt_lines(lines: &[MaskedLine]) -> Vec<bool> {
    let mut exempt = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Walk to the end of the annotated item: either a braced body or a
        // `;`-terminated item, whichever closes first.
        let mut depth = 0usize;
        let mut opened = false;
        let mut end = lines.len() - 1;
        'outer: for (j, line) in lines.iter().enumerate().skip(i) {
            // Skip past the attribute itself so its own brackets don't
            // confuse the count.
            let code: &str = if j == i {
                let at = line.code.find("#[cfg(test)]").unwrap_or(0);
                &line.code[at + "#[cfg(test)]".len()..]
            } else {
                &line.code
            };
            for c in code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            end = j;
                            break 'outer;
                        }
                    }
                    ';' if !opened && depth == 0 => {
                        end = j;
                        break 'outer;
                    }
                    _ => {}
                }
            }
        }
        for flag in exempt.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    exempt
}

#[cfg(test)]
mod tests {
    use super::*;

    const PANIC_SET: RuleSet = RuleSet {
        panic_free: true,
        determinism: false,
    };

    fn rules_of(findings: &[Finding]) -> Vec<(usize, RuleId)> {
        findings.iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn findings_carry_file_line_and_rule() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let f = analyze_source("m.rs", src, PANIC_SET);
        assert_eq!(rules_of(&f), vec![(2, RuleId::Unwrap)]);
        assert_eq!(
            f[0].to_string(),
            format!("m.rs:2: [unwrap] {}", f[0].message)
        );
    }

    #[test]
    fn trailing_allow_suppresses_and_is_not_stale() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // analyzer: allow(unwrap) -- checked by caller\n}\n";
        assert!(analyze_source("m.rs", src, PANIC_SET).is_empty());
    }

    #[test]
    fn own_line_allow_applies_to_next_code_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // analyzer: allow(unwrap) -- checked by caller\n    x.unwrap()\n}\n";
        assert!(analyze_source("m.rs", src, PANIC_SET).is_empty());
    }

    #[test]
    fn stale_allow_is_a_finding() {
        let src = "fn f() {\n    // analyzer: allow(unwrap) -- nothing here\n    let y = 1;\n}\n";
        let f = analyze_source("m.rs", src, PANIC_SET);
        assert_eq!(rules_of(&f), vec![(2, RuleId::StaleAllow)]);
    }

    #[test]
    fn allow_requires_known_rule_and_justification() {
        let src = "fn f() {\n    // analyzer: allow(frobnicate) -- x\n    let y = 1;\n    // analyzer: allow(unwrap)\n    let z = 2;\n}\n";
        let f = analyze_source("m.rs", src, PANIC_SET);
        assert_eq!(
            rules_of(&f),
            vec![(2, RuleId::BadDirective), (4, RuleId::BadDirective)]
        );
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn f() -> u32 {\n    1\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n        panic!(\"fine in tests\");\n    }\n}\n";
        assert!(analyze_source("m.rs", src, PANIC_SET).is_empty());
    }

    #[test]
    fn alloc_free_annotation_checks_the_next_fn_body() {
        let src = "// analyzer: alloc-free\n#[inline]\nfn hot(buf: &mut Vec<u32>) {\n    buf.push(1);\n}\n\nfn cold(buf: &mut Vec<u32>) {\n    buf.push(2);\n}\n";
        let f = analyze_source("m.rs", src, RuleSet::default());
        assert_eq!(rules_of(&f), vec![(4, RuleId::Alloc)]);
    }

    #[test]
    fn detached_alloc_free_is_a_bad_directive() {
        let src = "// analyzer: alloc-free\nconst X: u32 = 1;\n";
        let f = analyze_source("m.rs", src, RuleSet::default());
        assert_eq!(rules_of(&f), vec![(1, RuleId::BadDirective)]);
    }

    #[test]
    fn multi_rule_allow_tracks_staleness_per_rule() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // analyzer: allow(unwrap, expect) -- only unwrap fires\n}\n";
        let f = analyze_source("m.rs", src, PANIC_SET);
        assert_eq!(rules_of(&f), vec![(2, RuleId::StaleAllow)]);
    }
}
