//! Sharded-concurrency protocol checker, scoped to the engine's
//! shard/boundary modules ([`crate::policy::Policy::concurrency_files`]).
//!
//! The sharded engine's determinism claim — byte-identical reports for any
//! shard count and any thread interleaving — rests on a narrow protocol:
//! workers and driver communicate *only* over named channels whose sends
//! are absorbed at the cycle barrier, cross-shard effects are merged in
//! `(dst, src)`-sorted order, and nothing in the hot path blocks on a lock
//! or reads a `Relaxed` atomic (both would admit interleaving-dependent
//! states). This module makes each leg of that protocol a static rule:
//!
//! * **channel-protocol** — every channel endpoint must be named
//!   `<stem>_tx`/`<stem>_rx` (bare `tx`/`rx` acts as a wildcard stem for
//!   loop-local bindings), and every `send` stem must have a matching
//!   barrier-phase `recv` stem in the scoped files (and vice versa), so a
//!   channel cannot be written on one side and silently dropped on the
//!   other.
//! * **unsorted-merge** — iterating a value whose name mentions `batch`
//!   inside a scoped function requires a preceding `(dst, src)`
//!   `sort_by_key` in the same function: merges must go through the
//!   deterministic order, not raw channel-arrival order.
//! * **shard-lock** — `Mutex`, `RwLock`, and `Relaxed` atomics are banned
//!   outright in the scoped files.
//! * **thread-spawn** — `std::thread::spawn` is banned; workers must go
//!   through the scoped (joining) entry points so no thread outlives the
//!   cycle barrier.

use crate::analyze::{FileUnit, Finding};
use crate::callgraph::CallGraph;
use crate::lexer::is_ident_char;
use crate::policy::Policy;
use crate::rules::{word_positions, RuleId};

/// One channel-endpoint operation discovered in the scoped files.
struct EndpointOp {
    unit: usize,
    line: usize,
    /// Receiver binding as written (`tx`, `res_tx`, ...).
    receiver: String,
    /// Protocol stem: `res_tx` → `res`; bare `tx`/`rx` → `""` (wildcard).
    stem: Option<String>,
}

/// Runs every concurrency rule over the scoped units.
pub fn check(units: &[FileUnit], graph: &CallGraph, policy: &Policy) -> Vec<Finding> {
    let mut findings = Vec::new();
    let scoped: Vec<usize> = units
        .iter()
        .enumerate()
        .filter(|(_, u)| policy.concurrency_files.iter().any(|p| p == &u.rel))
        .map(|(i, _)| i)
        .collect();
    let mut sends = Vec::new();
    let mut recvs = Vec::new();
    for &u in &scoped {
        let unit = &units[u];
        for (idx, line) in unit.lines.iter().enumerate() {
            if unit.exempt[idx] {
                continue;
            }
            let code = line.code.as_str();
            let lineno = idx + 1;
            collect_ops(code, u, lineno, "send", "_tx", "tx", &mut sends);
            collect_ops(code, u, lineno, "recv", "_rx", "rx", &mut recvs);
            collect_ops(code, u, lineno, "try_recv", "_rx", "rx", &mut recvs);
            for _ in word_positions(code, "Mutex")
                .iter()
                .chain(&word_positions(code, "RwLock"))
                .chain(&word_positions(code, "Relaxed"))
            {
                findings.push(Finding::new(
                    &unit.rel,
                    lineno,
                    RuleId::ShardLock,
                    "locks and `Relaxed` atomics are banned in the shard hot path — state \
                     visible across threads must move through the barrier channels"
                        .to_string(),
                ));
            }
            if has_thread_spawn(code) {
                findings.push(Finding::new(
                    &unit.rel,
                    lineno,
                    RuleId::ThreadSpawn,
                    "`std::thread::spawn` is banned in the sharded engine — use the scoped \
                     worker entry points so every thread joins at the cycle barrier"
                        .to_string(),
                ));
            }
        }
    }
    findings.extend(protocol_findings(units, &sends, &recvs));
    findings.extend(merge_findings(units, graph, &scoped));
    findings
}

/// Scans one line for `.{op}(` endpoint calls, recording each op (and its
/// stem when the receiver follows the `*_tx`/`*_rx` convention).
fn collect_ops(
    code: &str,
    unit: usize,
    line: usize,
    op: &str,
    suffix: &str,
    bare: &str,
    out: &mut Vec<EndpointOp>,
) {
    for at in word_positions(code, op) {
        let head = code[..at].trim_end();
        if !head.ends_with('.') {
            continue;
        }
        let after = code[at + op.len()..].trim_start();
        if !after.starts_with('(') {
            continue;
        }
        let recv_end = head.len() - 1;
        let recv_start = code[..recv_end]
            .char_indices()
            .rev()
            .take_while(|&(_, c)| is_ident_char(c))
            .last()
            .map(|(p, _)| p)
            .unwrap_or(recv_end);
        let receiver = code[recv_start..recv_end].to_string();
        let stem = if receiver == bare {
            Some(String::new())
        } else {
            receiver.strip_suffix(suffix).map(str::to_string)
        };
        out.push(EndpointOp {
            unit,
            line,
            receiver,
            stem,
        });
    }
}

/// Endpoint-naming and send/recv table matching.
fn protocol_findings(
    units: &[FileUnit],
    sends: &[EndpointOp],
    recvs: &[EndpointOp],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (ops, suffix, other) in [(sends, "_tx", "recv"), (recvs, "_rx", "send")] {
        for op in ops {
            if op.stem.is_none() {
                findings.push(Finding::new(
                    &units[op.unit].rel,
                    op.line,
                    RuleId::ChannelProtocol,
                    format!(
                        "channel endpoint `{}` does not follow the `<stem>{suffix}` naming \
                         protocol, so its {other} pairing cannot be checked",
                        op.receiver
                    ),
                ));
            }
        }
    }
    let send_stems: Vec<&str> = sends.iter().filter_map(|o| o.stem.as_deref()).collect();
    let recv_stems: Vec<&str> = recvs.iter().filter_map(|o| o.stem.as_deref()).collect();
    let matched = |stem: &str, others: &[&str]| {
        (!others.is_empty() && stem.is_empty()) || others.iter().any(|&o| o == stem || o.is_empty())
    };
    for op in sends {
        if let Some(stem) = op.stem.as_deref() {
            if !matched(stem, &recv_stems) {
                findings.push(Finding::new(
                    &units[op.unit].rel,
                    op.line,
                    RuleId::ChannelProtocol,
                    format!(
                        "`{}` is sent to but never received at the cycle barrier — every \
                         send needs a matching `{stem}_rx` recv in the protocol table",
                        op.receiver
                    ),
                ));
            }
        }
    }
    for op in recvs {
        if let Some(stem) = op.stem.as_deref() {
            if !matched(stem, &send_stems) {
                findings.push(Finding::new(
                    &units[op.unit].rel,
                    op.line,
                    RuleId::ChannelProtocol,
                    format!(
                        "`{}` is received from but never sent to — every recv needs a \
                         matching `{stem}_tx` send in the protocol table",
                        op.receiver
                    ),
                ));
            }
        }
    }
    findings
}

/// Batch-merge ordering: a `for … in …batch…` loop inside a scoped
/// function must be preceded (same function) by a `(dst, src)`
/// `sort_by_key`.
fn merge_findings(units: &[FileUnit], graph: &CallGraph, scoped: &[usize]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &u in scoped {
        let unit = &units[u];
        for fi in graph.fns_of_unit(u) {
            let f = &graph.fns[fi];
            for idx in f.sig_line - 1..f.end_line.min(unit.lines.len()) {
                if unit.exempt[idx] {
                    continue;
                }
                let code = unit.lines[idx].code.as_str();
                let Some(iterated) = for_loop_iterated(code) else {
                    continue;
                };
                if !iterated.contains("batch") {
                    continue;
                }
                let sorted_above = (f.sig_line - 1..idx).any(|j| {
                    let c = unit.lines[j].code.as_str();
                    !word_positions(c, "sort_by_key").is_empty()
                        && !word_positions(c, "dst").is_empty()
                        && !word_positions(c, "src").is_empty()
                });
                if !sorted_above {
                    findings.push(Finding::new(
                        &unit.rel,
                        idx + 1,
                        RuleId::UnsortedMerge,
                        format!(
                            "`{}::{}` iterates `{}` in channel-arrival order — boundary \
                             batches must be `sort_by_key(|b| (b.dst, b.src))`-ed before \
                             merging, or the report depends on thread timing",
                            f.module,
                            f.name,
                            iterated.trim()
                        ),
                    ));
                }
            }
        }
    }
    findings
}

/// True when the line invokes `thread::spawn` (optionally `std::`-
/// qualified — which is why [`path_token`] alone doesn't fit: it rejects
/// any `::` before the path).
fn has_thread_spawn(code: &str) -> bool {
    const NEEDLE: &str = "thread::spawn";
    let mut from = 0;
    while let Some(rel) = code[from..].find(NEEDLE) {
        let at = from + rel;
        let before = code[..at].chars().next_back().unwrap_or(' ');
        let after = code[at + NEEDLE.len()..].chars().next().unwrap_or(' ');
        if !is_ident_char(before) && !is_ident_char(after) {
            return true;
        }
        from = at + NEEDLE.len();
    }
    false
}

/// For a `for <pat> in <expr> {` line, the iterated expression text.
fn for_loop_iterated(code: &str) -> Option<String> {
    let at = *word_positions(code, "for").first()?;
    // Statement-position `for` only (skip `impl Trait for Type`).
    let head = code[..at].trim();
    if !head.is_empty() && !head.ends_with(['{', ';', '}']) {
        return None;
    }
    let rest = &code[at + 3..];
    let in_at = word_positions(rest, "in").into_iter().next()?;
    let expr = rest[in_at + 2..].trim_end();
    let expr = expr.strip_suffix('{').unwrap_or(expr);
    Some(expr.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse_unit;
    use crate::callgraph;

    const SHARD: &str = "crates/sim/src/congestion/shard.rs";

    fn run(src: &str) -> Vec<Finding> {
        let units = vec![parse_unit(SHARD, src)];
        let graph = callgraph::build(&units);
        let policy = Policy::workspace();
        check(&units, &graph, &policy)
    }

    fn rules_of(f: &[Finding]) -> Vec<(usize, RuleId)> {
        f.iter().map(|x| (x.line, x.rule)).collect()
    }

    #[test]
    fn matched_protocol_is_clean() {
        let src = "pub fn driver(cmd_tx: S, res_rx: R) {\n    cmd_tx.send(1);\n    res_rx.recv();\n}\npub fn worker(cmd_rx: R, res_tx: S) {\n    cmd_rx.recv();\n    res_tx.send(2);\n}\n";
        assert_eq!(run(src), vec![]);
    }

    #[test]
    fn bare_tx_rx_are_wildcards() {
        let src = "pub fn driver(tx: S, res_rx: R) {\n    tx.send(1);\n    res_rx.recv();\n}\npub fn worker(res_tx: S) {\n    res_tx.send(2);\n}\n";
        assert_eq!(run(src), vec![]);
    }

    #[test]
    fn unmatched_send_and_bad_name_are_findings() {
        let src = "pub fn driver(leak_tx: S, chan: S) {\n    leak_tx.send(1);\n    chan.send(2);\n}\npub fn worker(res_rx: R) {\n    res_rx.recv();\n}\n";
        let f = run(src);
        assert_eq!(
            rules_of(&f),
            vec![
                (3, RuleId::ChannelProtocol), // `chan` breaks the naming protocol
                (2, RuleId::ChannelProtocol), // `leak_tx` has no recv
                (6, RuleId::ChannelProtocol), // `res_rx` has no send ("" absent)
            ]
        );
    }

    #[test]
    fn locks_and_spawn_are_banned() {
        let src = "use std::sync::Mutex;\npub fn f() {\n    std::thread::spawn(|| {});\n}\n";
        let f = run(src);
        assert_eq!(
            rules_of(&f),
            vec![(1, RuleId::ShardLock), (3, RuleId::ThreadSpawn)]
        );
    }

    #[test]
    fn unsorted_batch_merge_is_a_finding() {
        let src =
            "pub fn apply(batches: Vec<B>) {\n    for b in &batches {\n        eat(b);\n    }\n}\n";
        let f = run(src);
        assert_eq!(rules_of(&f), vec![(2, RuleId::UnsortedMerge)]);
        assert!(f[0].message.contains("shard::apply"), "{}", f[0].message);
    }

    #[test]
    fn sorted_batch_merge_is_clean() {
        let src = "pub fn apply(mut batches: Vec<B>) {\n    batches.sort_by_key(|b| (b.dst, b.src));\n    for b in &batches {\n        eat(b);\n    }\n}\n";
        assert_eq!(run(src), vec![]);
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let units = vec![parse_unit(
            "crates/sim/src/metrics.rs",
            "pub fn f() {\n    std::thread::spawn(|| {});\n}\n",
        )];
        let graph = callgraph::build(&units);
        assert_eq!(check(&units, &graph, &Policy::workspace()), vec![]);
    }
}
