//! A small Rust source lexer that separates *code* from *comments and
//! literals*, line by line.
//!
//! The analyzer's rules are token-level: they must never fire on the word
//! `unwrap` inside a string literal or a doc comment, and directives
//! (`// analyzer: ...`) must only be read from real line comments. This
//! module produces, for every source line, the line's code with every
//! comment and every string/char-literal *content* blanked out to spaces
//! (so byte columns stay roughly aligned), plus the text of any ordinary
//! `//` line comment on that line.
//!
//! Handled: line comments, nested block comments, doc comments (`///`,
//! `//!` — treated as comments but never as directives), string literals
//! with escapes, raw (and byte/raw-byte) strings with arbitrary `#` fences,
//! char literals vs. lifetimes. This is not a full Rust lexer — it is the
//! minimal subset needed to make token scanning sound on rustfmt-formatted
//! source.

/// One source line after masking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskedLine {
    /// The line's code with comments and literal contents replaced by
    /// spaces. String/char delimiters are kept so the line still "shapes"
    /// like code.
    pub code: String,
    /// Concatenated text of ordinary `//` line comments on this line
    /// (doc comments excluded), without the leading `//`.
    pub comment: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    /// Inside `//`; `doc` records `///` / `//!`, which never carry
    /// directives.
    LineComment {
        doc: bool,
    },
    /// Inside `/* ... */`, with rustc's nesting semantics.
    BlockComment {
        depth: u32,
    },
    /// Inside `"..."` (or `b"..."`).
    Str,
    /// Inside `r"..."` / `r#"..."#` (or `br...`); the payload is the number
    /// of `#` fence characters.
    RawStr {
        hashes: u32,
    },
    /// Inside `'x'` (char or byte literal).
    CharLit,
}

/// Masks `source` into per-line code/comment pairs. Lines are 1-indexed by
/// position in the returned vector (+1).
pub fn mask(source: &str) -> Vec<MaskedLine> {
    let cs: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut prev_code_char = ' ';
    let mut i = 0;

    macro_rules! flush_line {
        () => {
            lines.push(MaskedLine {
                code: std::mem::take(&mut code),
                comment: if comment.is_empty() {
                    None
                } else {
                    Some(std::mem::take(&mut comment))
                },
            });
            comment.clear();
        };
    }

    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            // A newline always ends the line; multi-line constructs carry
            // their state across.
            if let State::LineComment { .. } = state {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = cs.get(i + 1).copied().unwrap_or(' ');
                if c == '/' && next == '/' {
                    let third = cs.get(i + 2).copied().unwrap_or(' ');
                    // `////...` banners count as plain comments; `///` and
                    // `//!` are docs.
                    let doc = (third == '/' && cs.get(i + 3).copied().unwrap_or(' ') != '/')
                        || third == '!';
                    state = State::LineComment { doc };
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == '*' {
                    state = State::BlockComment { depth: 1 };
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code.push('"');
                    prev_code_char = '"';
                    i += 1;
                } else if (c == 'r' || c == 'b') && !is_ident_char(prev_code_char) {
                    // Possible raw/byte string head: r" r#" b" br" br#".
                    let mut j = i;
                    if c == 'b' && cs.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    if c == 'b' && cs.get(j + 1) == Some(&'"') {
                        // b"...": plain escaped string.
                        code.push_str("b\"");
                        prev_code_char = '"';
                        state = State::Str;
                        i = j + 2;
                    } else if (c == 'r' || j > i) && matches!(cs.get(j + 1), Some('"') | Some('#'))
                    {
                        let mut hashes = 0;
                        let mut k = j + 1;
                        while cs.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if cs.get(k) == Some(&'"') {
                            for _ in i..=k {
                                code.push(' ');
                            }
                            code.pop();
                            code.push('"');
                            prev_code_char = '"';
                            state = State::RawStr { hashes };
                            i = k + 1;
                        } else {
                            // `r#ident` raw identifier or stray `#`s.
                            code.push(c);
                            prev_code_char = c;
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        prev_code_char = c;
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs. lifetime: a literal is `'\...` or
                    // `'x'`; anything else (`'a,`, `'static`) is a lifetime.
                    let is_char = next == '\\' || (cs.get(i + 2) == Some(&'\'') && next != '\'');
                    if is_char {
                        state = State::CharLit;
                        code.push('\'');
                        prev_code_char = '\'';
                        i += 1;
                    } else {
                        code.push('\'');
                        prev_code_char = '\'';
                        i += 1;
                    }
                } else {
                    code.push(c);
                    if !c.is_whitespace() {
                        prev_code_char = c;
                    }
                    i += 1;
                }
            }
            State::LineComment { doc } => {
                if !doc {
                    comment.push(c);
                }
                code.push(' ');
                i += 1;
            }
            State::BlockComment { depth } => {
                let next = cs.get(i + 1).copied().unwrap_or(' ');
                if c == '/' && next == '*' {
                    state = State::BlockComment { depth: depth + 1 };
                    code.push_str("  ");
                    i += 2;
                } else if c == '*' && next == '/' {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1 }
                    };
                    code.push_str("  ");
                    i += 2;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    if cs.get(i + 1) == Some(&'\n') {
                        // Line-continuation escape: leave the newline for the
                        // flush above so line numbering stays exact.
                        code.push(' ');
                        i += 1;
                    } else {
                        code.push_str("  ");
                        i += 2;
                    }
                } else if c == '"' {
                    state = State::Code;
                    code.push('"');
                    prev_code_char = '"';
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if cs.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Code;
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        prev_code_char = '"';
                        i += 1 + hashes as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    code.push('\'');
                    prev_code_char = '\'';
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    flush_line!();
    lines
}

/// True for characters that may appear in a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        mask(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"unwrap()\"; // analyzer: allow(unwrap) -- just kidding\n";
        let lines = mask(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert_eq!(
            lines[0].comment.as_deref().map(str::trim),
            Some("analyzer: allow(unwrap) -- just kidding")
        );
    }

    #[test]
    fn doc_comments_are_not_directive_comments() {
        let lines = mask("/// analyzer: alloc-free\n//! analyzer: alloc-free\n// real\n");
        assert_eq!(lines[0].comment, None);
        assert_eq!(lines[1].comment, None);
        assert_eq!(lines[2].comment.as_deref().map(str::trim), Some("real"));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let c = code_of("let s = r#\"panic!(\"x\") HashMap\"#;\n");
        assert!(!c[0].contains("panic"));
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].ends_with(';'));
    }

    #[test]
    fn char_literals_and_lifetimes_coexist() {
        let c = code_of("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(c[0].contains("<'a>"));
        assert!(!c[0].contains('x') || !c[0].contains("'x'"));
        let c = code_of("let q = '\\'';\nlet w = unwrap_later;\n");
        assert!(c[1].contains("unwrap_later"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let c = code_of("/* a /* b */ still comment */ let y = 1;\n");
        assert!(c[0].contains("let y = 1;"));
        assert!(!c[0].contains("still"));
    }

    #[test]
    fn multiline_strings_span_lines() {
        let c = code_of("let s = \"line one\nunwrap() in a string\";\nlet t = 3;\n");
        assert!(!c[1].contains("unwrap"));
        assert!(c[2].contains("let t = 3;"));
    }
}
