//! Workspace call-graph extraction on masked source.
//!
//! The interprocedural rules ([`crate::interproc`]) need to know, for every
//! workspace function, *which other workspace functions it may call*. This
//! module recovers that from the same masked lines the per-file scanners
//! use — no `syn`, no type inference — with a soundness posture tuned for a
//! gate rather than a compiler:
//!
//! * **Function discovery** is brace-depth exact: a `fn` item at module or
//!   `impl`/`trait` depth opens a body span that is matched to its closing
//!   brace, so every body line belongs to exactly one discovered function
//!   (nested `fn`s fold into their parent, which only widens the analysis).
//! * **Call sites** are `ident(`-shaped tokens (plus `ident::<…>(` turbofish
//!   and multi-segment paths), excluding keywords, macro invocations
//!   (`ident!`), declarations, and capitalized tuple-struct/variant
//!   constructors (which have no user code to analyze).
//! * **Resolution** is name-based and *over-approximate*: a method call
//!   resolves to every workspace method of that name; a free call resolves
//!   within its file, then its crate, then through its file's `use`
//!   imports of `ftdb_*` crates; a path call resolves through its
//!   qualifier (`Self`, a type, a module stem, `crate`, or an `ftdb_*`
//!   crate). Extra candidate edges can only make the gate stricter, never
//!   blinder.
//! * Anything that resolves to **no** workspace candidate is recorded as an
//!   **opaque edge** — explicitly present in the graph, never silently
//!   dropped. Opaque edges are not traversed (the callee's source is
//!   outside the workspace, e.g. `std`); what leaks through them is
//!   exactly what the per-line textual rules already police (`unwrap`,
//!   literal indexing, the allocation denylist). The
//!   `// analyzer: trusted-call -- <why>` directive marks a call site whose
//!   resolved edges should be treated like vetted opaque ones.

use std::collections::BTreeMap;

use crate::analyze::{has_fn_keyword, FileUnit};
use crate::lexer::is_ident_char;

/// One discovered function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the declaring [`FileUnit`] in the slice passed to
    /// [`build`].
    pub unit: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when the function is an
    /// associated item.
    pub qual: Option<String>,
    /// Declaring crate (`ftdb_sim`, …), empty outside `crates/`.
    pub krate: String,
    /// Module stem used for `module::f()` resolution — the file stem, or
    /// the directory name for `mod.rs`.
    pub module: String,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 1-based inclusive last line of the item (closing brace, or the
    /// `;` of a body-less trait signature).
    pub end_line: usize,
    /// Whether the function carries the `// analyzer: alloc-free`
    /// annotation.
    pub alloc_free: bool,
}

/// One call site inside a discovered function.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based line in the calling file.
    pub line: usize,
    /// The callee as written (`from_sorted`, `metrics::merge`, `.push`).
    pub callee: String,
    /// Indices into [`CallGraph::fns`] of every workspace function this
    /// site may call. Empty means the edge is *opaque* (callee outside
    /// the workspace).
    pub candidates: Vec<usize>,
    /// Whether the line carries a `trusted-call` directive.
    pub trusted: bool,
    /// For method calls: the receiver is literally `self`, so the
    /// candidates come from the caller's own `impl` block (precise)
    /// rather than the workspace-wide method-name index
    /// (over-approximate). Alloc-free propagation only trusts precise
    /// method edges; the wide ones exist for panic reachability.
    pub self_receiver: bool,
}

/// The extracted workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every discovered (non-test) function under `crates/`.
    pub fns: Vec<FnItem>,
    /// Call sites per function, parallel to [`CallGraph::fns`].
    pub calls: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Functions declared in `units[unit]`, as indices into
    /// [`CallGraph::fns`].
    pub fn fns_of_unit(&self, unit: usize) -> impl Iterator<Item = usize> + '_ {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.unit == unit)
            .map(|(i, _)| i)
    }

    /// Renders `fns[idx]` as `file.rs::name` for call-chain diagnostics.
    pub fn label(&self, units: &[FileUnit], idx: usize) -> String {
        let f = &self.fns[idx];
        let file = units[f.unit]
            .rel
            .rsplit('/')
            .next()
            .unwrap_or(units[f.unit].rel.as_str());
        format!("{}::{}", file, f.name)
    }
}

/// Extracts the call graph for every unit whose path is under `crates/`
/// (test-exempt functions are skipped on both ends: they are neither
/// callers nor resolution candidates).
pub fn build(units: &[FileUnit]) -> CallGraph {
    let mut graph = CallGraph::default();
    for (u, unit) in units.iter().enumerate() {
        if !unit.rel.starts_with("crates/") {
            continue;
        }
        discover_fns(u, unit, &mut graph.fns);
    }
    let resolver = Resolver::new(units, &graph.fns);
    for f in &graph.fns {
        graph
            .calls
            .push(collect_calls(f, &units[f.unit], &resolver));
    }
    graph
}

/// Crate name (`ftdb_<dir>`) for a `crates/<dir>/...` path; empty
/// otherwise.
fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .map(|d| format!("ftdb_{d}"))
        .unwrap_or_default()
}

/// Module stem for `module::f()` resolution.
fn module_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    let stem = parts
        .last()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    if stem == "mod" || stem == "lib" || stem == "main" {
        parts
            .get(parts.len().saturating_sub(2))
            .copied()
            .unwrap_or(stem)
            .to_string()
    } else {
        stem.to_string()
    }
}

/// Scans one unit for function items, appending to `fns`.
fn discover_fns(u: usize, unit: &FileUnit, fns: &mut Vec<FnItem>) {
    let krate = crate_of(&unit.rel);
    let module = module_of(&unit.rel);
    let mut depth = 0usize;
    // Stack of `impl`/`trait` contexts: (depth just after their `{`, type
    // name). The innermost entry whose depth equals the current `fn`'s
    // declaration depth supplies the qualifier.
    let mut quals: Vec<(usize, String)> = Vec::new();
    let mut pending_qual: Option<String> = None;
    // An open `fn`: (index into fns, depth at its declaration, whether its
    // body brace has been seen).
    let mut open_fn: Option<(usize, usize, bool)> = None;

    for (idx, line) in unit.lines.iter().enumerate() {
        let code = line.code.as_str();
        let trimmed = code.trim_start();
        let lineno = idx + 1;
        if open_fn.is_none() && pending_qual.is_none() {
            if let Some(q) = impl_header_qual(trimmed) {
                pending_qual = Some(q);
            }
        }
        if open_fn.is_none() && !unit.exempt[idx] && has_fn_keyword(code) {
            if let Some(name) = fn_name(code) {
                let qual = quals
                    .iter()
                    .rev()
                    .find(|(d, _)| *d == depth)
                    .map(|(_, q)| q.clone());
                fns.push(FnItem {
                    unit: u,
                    name,
                    qual,
                    krate: krate.clone(),
                    module: module.clone(),
                    sig_line: lineno,
                    end_line: lineno,
                    alloc_free: unit.alloc_spans.iter().any(|&(s, _)| s == lineno),
                });
                open_fn = Some((fns.len() - 1, depth, false));
            }
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some((_, _, opened @ false)) = &mut open_fn {
                        *opened = true;
                    } else if let Some(q) = pending_qual.take() {
                        quals.push((depth, q));
                    }
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if let Some((fi, fd, true)) = open_fn {
                        if depth <= fd {
                            fns[fi].end_line = lineno;
                            open_fn = None;
                        }
                    }
                    while quals.last().is_some_and(|(d, _)| *d > depth) {
                        quals.pop();
                    }
                }
                ';' => {
                    if let Some((fi, fd, false)) = open_fn {
                        if depth == fd {
                            // Body-less trait signature.
                            fns[fi].end_line = lineno;
                            open_fn = None;
                        }
                    }
                    pending_qual = None;
                }
                _ => {}
            }
        }
    }
    if let Some((fi, _, true)) = open_fn {
        fns[fi].end_line = unit.lines.len();
    }
}

/// Parses the type name an `impl`/`trait` header introduces: the type
/// after `for` in `impl Trait for Type`, the type in `impl Type`, or the
/// trait name in `trait Name`.
fn impl_header_qual(trimmed: &str) -> Option<String> {
    let after = if let Some(rest) = trimmed
        .strip_prefix("impl")
        .filter(|r| r.starts_with(['<', ' ']))
    {
        let rest = skip_generics(rest);
        match rest.find(" for ") {
            Some(at) => &rest[at + 5..],
            None => rest,
        }
    } else {
        let t = trimmed.strip_prefix("pub ").unwrap_or(trimmed);
        t.strip_prefix("trait ")?
    };
    let name: String = after
        .trim_start()
        .chars()
        .take_while(|&c| is_ident_char(c))
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Skips a leading `<...>` generic parameter list.
fn skip_generics(s: &str) -> &str {
    if !s.starts_with('<') {
        return s;
    }
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return &s[i + 1..];
                }
            }
            _ => {}
        }
    }
    s
}

/// The identifier following the `fn` keyword.
fn fn_name(code: &str) -> Option<String> {
    for at in crate::rules::word_positions(code, "fn") {
        let name: String = code[at + 2..]
            .trim_start()
            .chars()
            .take_while(|&c| is_ident_char(c))
            .collect();
        if !name.is_empty() {
            return Some(name);
        }
    }
    None
}

/// Reserved words that look like `ident(` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "for", "while", "loop", "return", "let", "fn", "pub", "use", "mod",
    "impl", "in", "move", "ref", "mut", "where", "as", "break", "continue", "unsafe", "dyn",
    "crate", "super", "self", "box", "const", "static", "type", "trait", "enum", "struct",
];

/// How a call site names its callee.
enum CallKind {
    /// `.name(...)` — dynamic receiver; the flag records a literal
    /// `self` receiver.
    Method(bool),
    /// `qual::name(...)` — path-qualified; the qualifier is the
    /// second-to-last segment.
    Path(Vec<String>),
    /// `name(...)` — unqualified.
    Free,
}

/// Collects and resolves the call sites inside one function's span.
fn collect_calls(f: &FnItem, unit: &FileUnit, resolver: &Resolver<'_>) -> Vec<CallSite> {
    let mut sites = Vec::new();
    for idx in f.sig_line - 1..f.end_line.min(unit.lines.len()) {
        if unit.exempt[idx] {
            continue;
        }
        let code = unit.lines[idx].code.as_str();
        let trimmed = code.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("#[") {
            continue;
        }
        let lineno = idx + 1;
        for (name, kind) in call_tokens(code) {
            let candidates = resolver.resolve(f, &name, &kind);
            let callee = match &kind {
                CallKind::Method(_) => format!(".{name}"),
                CallKind::Path(segs) => {
                    let mut s = segs.join("::");
                    s.push_str("::");
                    s.push_str(&name);
                    s
                }
                CallKind::Free => name.clone(),
            };
            sites.push(CallSite {
                line: lineno,
                callee,
                candidates,
                trusted: unit.is_trusted_line(lineno),
                self_receiver: matches!(kind, CallKind::Method(true)),
            });
        }
    }
    sites
}

/// Extracts `(callee name, kind)` for every call-shaped token on a masked
/// line.
fn call_tokens(code: &str) -> Vec<(String, CallKind)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (open, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        // Walk left over an optional turbofish, then the callee ident.
        let mut end = open;
        if end > 0 && bytes[end - 1] == b'>' {
            match turbofish_start(bytes, end - 1) {
                Some(s) => end = s,
                None => continue,
            }
        }
        let start = ident_start(code, end);
        if start == end {
            continue;
        }
        let name = &code[start..end];
        if name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            || name.chars().all(|c| c.is_ascii_digit())
            || NON_CALL_KEYWORDS.contains(&name)
        {
            continue;
        }
        let before = code[..start].chars().next_back();
        let kind = match before {
            Some('!') => continue, // negated call — shape is receiver-less anyway
            Some('.') => {
                let recv_start = ident_start(code, start - 1);
                let receiver = &code[recv_start..start - 1];
                let self_recv = receiver == "self"
                    && !code[..recv_start].ends_with('.')
                    && !code[..recv_start].ends_with(is_ident_char);
                CallKind::Method(self_recv)
            }
            Some(':') if code[..start].ends_with("::") => {
                match path_segments(code, start - 2) {
                    Some(segs) => CallKind::Path(segs),
                    None => continue, // `::<` turbofish on a method, already shaped
                }
            }
            _ => {
                // `fn name(` is a declaration, not a call.
                let head = code[..start].trim_end();
                if head.ends_with("fn") || name.starts_with("r#") {
                    continue;
                }
                CallKind::Free
            }
        };
        out.push((name.to_string(), kind));
    }
    out
}

/// Byte offset where the identifier ending at `end` begins.
fn ident_start(code: &str, end: usize) -> usize {
    code[..end]
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_ident_char(c))
        .last()
        .map(|(p, _)| p)
        .unwrap_or(end)
}

/// For a `>` at byte `gt` closing a `::<...>` turbofish, the offset of the
/// ident's end (just before the `::`).
fn turbofish_start(bytes: &[u8], gt: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = gt;
    loop {
        match bytes[i] {
            b'>' => depth += 1,
            b'<' => {
                depth -= 1;
                if depth == 0 {
                    return (i >= 2 && bytes[i - 1] == b':' && bytes[i - 2] == b':')
                        .then_some(i - 2);
                }
            }
            _ => {}
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

/// The `::`-separated segments to the left of byte `upto` (exclusive),
/// innermost last: for `ftdb_sim::metrics::f(` with `upto` at the final
/// `::`, returns `["ftdb_sim", "metrics"]`.
fn path_segments(code: &str, upto: usize) -> Option<Vec<String>> {
    let mut segs = Vec::new();
    let mut end = upto;
    loop {
        let start = ident_start(code, end);
        if start == end {
            break;
        }
        segs.push(code[start..end].to_string());
        if code[..start].ends_with("::") {
            end = start - 2;
        } else {
            break;
        }
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    Some(segs)
}

/// Name-resolution indexes over the discovered functions.
struct Resolver<'a> {
    /// Method name → all associated fns of that name, workspace-wide.
    by_method: BTreeMap<&'a str, Vec<usize>>,
    /// (unit, name) → free fns declared in that file.
    by_free_unit: BTreeMap<(usize, &'a str), Vec<usize>>,
    /// (crate, name) → free fns declared in that crate.
    by_free_crate: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    /// (type name, fn name) → associated fns.
    by_qual: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    /// (module stem, name) → fns declared in that module.
    by_module: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    /// Per unit: imported leaf ident → source crate (from `use` lines).
    imports: BTreeMap<(usize, String), String>,
}

impl<'a> Resolver<'a> {
    fn new(units: &'a [FileUnit], fns: &'a [FnItem]) -> Resolver<'a> {
        let mut r = Resolver {
            by_method: BTreeMap::new(),
            by_free_unit: BTreeMap::new(),
            by_free_crate: BTreeMap::new(),
            by_qual: BTreeMap::new(),
            by_module: BTreeMap::new(),
            imports: BTreeMap::new(),
        };
        for (i, f) in fns.iter().enumerate() {
            let name = f.name.as_str();
            match &f.qual {
                Some(q) => {
                    r.by_method.entry(name).or_default().push(i);
                    r.by_qual.entry((q.as_str(), name)).or_default().push(i);
                }
                None => {
                    r.by_free_unit.entry((f.unit, name)).or_default().push(i);
                    if !f.krate.is_empty() {
                        r.by_free_crate
                            .entry((f.krate.as_str(), name))
                            .or_default()
                            .push(i);
                    }
                }
            }
            r.by_module
                .entry((f.module.as_str(), name))
                .or_default()
                .push(i);
        }
        for (u, unit) in units.iter().enumerate() {
            if unit.rel.starts_with("crates/") {
                collect_imports(u, unit, &mut r.imports);
            }
        }
        r
    }

    /// Every workspace function `name` may refer to at this call site.
    fn resolve(&self, caller: &FnItem, name: &str, kind: &CallKind) -> Vec<usize> {
        match kind {
            CallKind::Method(true) => match &caller.qual {
                // `self.name(...)`: the callee lives in the caller's own
                // impl; a miss (derived/deref'd method) is opaque.
                Some(qual) => self
                    .by_qual
                    .get(&(qual.as_str(), name))
                    .cloned()
                    .unwrap_or_default(),
                None => Vec::new(),
            },
            CallKind::Method(false) => self.by_method.get(name).cloned().unwrap_or_default(),
            CallKind::Free => {
                if let Some(v) = self.by_free_unit.get(&(caller.unit, name)) {
                    return v.clone();
                }
                if let Some(v) = self.by_free_crate.get(&(caller.krate.as_str(), name)) {
                    return v.clone();
                }
                if let Some(krate) = self.imports.get(&(caller.unit, name.to_string())) {
                    if let Some(v) = self.by_free_crate.get(&(krate.as_str(), name)) {
                        return v.clone();
                    }
                }
                Vec::new()
            }
            CallKind::Path(segs) => {
                let q = segs.last().map(String::as_str).unwrap_or("");
                if q == "Self" {
                    if let Some(qual) = &caller.qual {
                        return self
                            .by_qual
                            .get(&(qual.as_str(), name))
                            .cloned()
                            .unwrap_or_default();
                    }
                    return Vec::new();
                }
                if q == "crate" {
                    return self
                        .by_free_crate
                        .get(&(caller.krate.as_str(), name))
                        .cloned()
                        .unwrap_or_default();
                }
                if q.starts_with("ftdb_") {
                    return self
                        .by_free_crate
                        .get(&(q, name))
                        .cloned()
                        .unwrap_or_default();
                }
                if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    // A type: the global (type name, fn name) index is
                    // precise enough in practice; a miss (type alias, std
                    // type) leaves the edge opaque.
                    self.by_qual.get(&(q, name)).cloned().unwrap_or_default()
                } else {
                    // A module stem (`metrics::merge`, `super::helper`).
                    self.by_module.get(&(q, name)).cloned().unwrap_or_default()
                }
            }
        }
    }
}

/// Parses the `use` lines of a unit into leaf-ident → crate mappings.
/// Handles `use a::b::c;`, brace groups `use a::{b, c as d};`, and maps
/// `crate::` to the unit's own crate. Only `ftdb_*`-rooted (or
/// `crate`-rooted) imports are recorded; `std`/vendored roots resolve to
/// nothing and stay opaque.
fn collect_imports(u: usize, unit: &FileUnit, out: &mut BTreeMap<(usize, String), String>) {
    let own = crate_of(&unit.rel);
    for line in &unit.lines {
        let code = line.code.trim();
        let Some(rest) = code.strip_prefix("use ") else {
            continue;
        };
        let rest = rest.trim_end_matches(';').trim();
        let root = rest.split("::").next().unwrap_or("").trim();
        let krate = if root == "crate" || root == "super" || root == "self" {
            own.clone()
        } else if root.starts_with("ftdb_") {
            root.to_string()
        } else {
            continue;
        };
        // Leaves: the idents at the end of each path in the (possibly
        // braced) tail, honoring `as` aliases.
        let tail = match rest.find('{') {
            Some(at) => rest[at + 1..].trim_end_matches(['}', ';']),
            None => rest,
        };
        for item in tail.split(',') {
            let item = item.trim();
            if item.is_empty() || item == "*" {
                continue;
            }
            let leaf = match item.rsplit_once(" as ") {
                Some((_, alias)) => alias.trim(),
                None => item.rsplit("::").next().unwrap_or(item).trim(),
            };
            if leaf.is_empty() || leaf == "*" {
                continue;
            }
            out.insert((u, leaf.to_string()), krate.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse_unit;

    fn graph_of(files: &[(&str, &str)]) -> (Vec<FileUnit>, CallGraph) {
        let units: Vec<FileUnit> = files
            .iter()
            .map(|(rel, src)| parse_unit(rel, src))
            .collect();
        let graph = build(&units);
        (units, graph)
    }

    fn find<'g>(graph: &'g CallGraph, name: &str) -> (usize, &'g FnItem) {
        graph
            .fns
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .unwrap_or_else(|| panic!("fn `{name}` not discovered"))
    }

    #[test]
    fn discovers_free_fns_methods_and_spans() {
        let src = "pub fn top() {\n    helper();\n}\n\nfn helper() {}\n\nimpl Widget {\n    pub fn poke(&self) {\n        self.count();\n    }\n    fn count(&self) -> u32 {\n        0\n    }\n}\n";
        let (_, g) = graph_of(&[("crates/sim/src/w.rs", src)]);
        let (_, top) = find(&g, "top");
        assert_eq!((top.sig_line, top.end_line), (1, 3));
        assert_eq!(top.qual, None);
        assert_eq!(top.krate, "ftdb_sim");
        let (_, poke) = find(&g, "poke");
        assert_eq!(poke.qual.as_deref(), Some("Widget"));
        let (_, count) = find(&g, "count");
        assert_eq!((count.sig_line, count.end_line), (11, 13));
    }

    #[test]
    fn impl_trait_for_type_quals_to_the_type() {
        let src =
            "impl Default for Widget {\n    fn default() -> Self {\n        Widget\n    }\n}\n";
        let (_, g) = graph_of(&[("crates/sim/src/w.rs", src)]);
        let (_, f) = find(&g, "default");
        assert_eq!(f.qual.as_deref(), Some("Widget"));
    }

    #[test]
    fn free_calls_resolve_within_file_then_crate() {
        let a = "pub fn caller() {\n    same_file();\n    other_file();\n    nowhere();\n}\nfn same_file() {}\n";
        let b = "pub fn other_file() {}\n";
        let (_, g) = graph_of(&[("crates/sim/src/a.rs", a), ("crates/sim/src/b.rs", b)]);
        let (ci, _) = find(&g, "caller");
        let calls = &g.calls[ci];
        assert_eq!(calls.len(), 3);
        let by_name = |n: &str| calls.iter().find(|c| c.callee == n).unwrap();
        assert_eq!(by_name("same_file").candidates.len(), 1);
        assert_eq!(by_name("other_file").candidates.len(), 1);
        assert!(by_name("nowhere").candidates.is_empty(), "opaque edge");
    }

    #[test]
    fn cross_crate_calls_resolve_via_use_imports_and_paths() {
        let caller = "use ftdb_graph::walk;\npub fn go() {\n    walk();\n    ftdb_graph::stride();\n    traversal::hop();\n}\n";
        let callee = "pub fn walk() {}\npub fn stride() {}\npub fn hop() {}\n";
        let (_, g) = graph_of(&[
            ("crates/sim/src/go.rs", caller),
            ("crates/graph/src/traversal.rs", callee),
        ]);
        let (ci, _) = find(&g, "go");
        for call in &g.calls[ci] {
            assert_eq!(call.candidates.len(), 1, "unresolved: {}", call.callee);
        }
    }

    #[test]
    fn method_and_type_path_calls_resolve_globally() {
        let a = "pub fn caller(s: Summary) {\n    s.merge();\n    Summary::from_sorted();\n    s.len();\n}\n";
        let b = "impl Summary {\n    pub fn merge(&self) {}\n    pub fn from_sorted() {}\n}\n";
        let (_, g) = graph_of(&[("crates/sim/src/a.rs", a), ("crates/sim/src/m.rs", b)]);
        let (ci, _) = find(&g, "caller");
        let by_name = |n: &str| g.calls[ci].iter().find(|c| c.callee == n).unwrap();
        assert_eq!(by_name(".merge").candidates.len(), 1);
        assert_eq!(by_name("Summary::from_sorted").candidates.len(), 1);
        assert!(
            by_name(".len").candidates.is_empty(),
            "std method is opaque"
        );
    }

    #[test]
    fn macros_keywords_and_constructors_are_not_calls() {
        let src = "pub fn f(x: u32) -> Option<u32> {\n    if x > 0 {\n        println!(\"{x}\");\n        return Some(x);\n    }\n    while x == 0 {}\n    None\n}\n";
        let (_, g) = graph_of(&[("crates/sim/src/a.rs", src)]);
        let (ci, _) = find(&g, "f");
        assert!(g.calls[ci].is_empty(), "{:?}", g.calls[ci]);
    }

    #[test]
    fn turbofish_method_calls_are_sites() {
        let src =
            "pub fn f(v: Vec<u32>) -> Vec<u32> {\n    v.iter().copied().collect::<Vec<u32>>()\n}\n";
        let (_, g) = graph_of(&[("crates/sim/src/a.rs", src)]);
        let (ci, _) = find(&g, "f");
        let names: Vec<&str> = g.calls[ci].iter().map(|c| c.callee.as_str()).collect();
        assert!(names.contains(&".collect"), "{names:?}");
    }

    #[test]
    fn trusted_call_lines_are_flagged() {
        let src =
            "pub fn f() {\n    helper(); // analyzer: trusted-call -- vetted\n}\nfn helper() {}\n";
        let (_, g) = graph_of(&[("crates/sim/src/a.rs", src)]);
        let (ci, _) = find(&g, "f");
        assert!(g.calls[ci][0].trusted);
    }

    #[test]
    fn test_modules_are_invisible_to_the_graph() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper_in_tests() {\n        super::f();\n    }\n}\n";
        let (_, g) = graph_of(&[("crates/sim/src/a.rs", src)]);
        assert!(g.fns.iter().all(|f| f.name != "helper_in_tests"));
    }

    #[test]
    fn alloc_free_annotation_is_carried() {
        let src = "// analyzer: alloc-free\npub fn hot() {}\npub fn cold() {}\n";
        let (_, g) = graph_of(&[("crates/sim/src/a.rs", src)]);
        assert!(find(&g, "hot").1.alloc_free);
        assert!(!find(&g, "cold").1.alloc_free);
    }
}
