//! Interprocedural rules over the extracted call graph: transitive
//! panic-freedom, alloc-free propagation, and recursion detection in the
//! alloc-free subgraph.
//!
//! All three walk [`crate::callgraph::CallGraph`] edges. Opaque edges
//! (no workspace candidate) are not traversed — the callee's body is
//! outside the workspace, and what escapes through such calls is exactly
//! what the per-line textual rules police. A `trusted-call` directive
//! demotes a *resolved* edge to the same vetted-opaque status.

use std::collections::{BTreeMap, BTreeSet};

use crate::analyze::{FileUnit, Finding};
use crate::callgraph::CallGraph;
use crate::policy::Policy;
use crate::rules::{self, RuleId};

/// Transitive panic-freedom: every function reachable (through resolved,
/// non-trusted edges) from a function in a hot-path module inherits the
/// panic rules, and each violation's diagnostic prints the call chain
/// that makes it hot.
pub fn transitive_panic(units: &[FileUnit], graph: &CallGraph, policy: &Policy) -> Vec<Finding> {
    let hot_unit: Vec<bool> = units
        .iter()
        .map(|u| policy.panic_files.iter().any(|p| p == &u.rel))
        .collect();
    // BFS from every hot-path function at once, keeping parent pointers so
    // a violation can print one concrete entry→sink chain.
    let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if hot_unit[f.unit] {
            parent.insert(i, None);
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for site in &graph.calls[i] {
            if site.trusted {
                continue;
            }
            for &c in &site.candidates {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(c) {
                    e.insert(Some(i));
                    queue.push_back(c);
                }
            }
        }
    }
    let mut findings = Vec::new();
    let mut hits = Vec::new();
    for &i in parent.keys() {
        let f = &graph.fns[i];
        if hot_unit[f.unit] {
            continue; // already under the direct per-line panic rules
        }
        let unit = &units[f.unit];
        let chain = chain_to(units, graph, &parent, i);
        for idx in f.sig_line - 1..f.end_line.min(unit.lines.len()) {
            if unit.exempt[idx] {
                continue;
            }
            hits.clear();
            rules::panic_hits(&unit.lines[idx].code, &mut hits);
            for hit in hits.drain(..) {
                findings.push(Finding {
                    file: unit.rel.clone(),
                    line: idx + 1,
                    rule: RuleId::TransitivePanic,
                    message: format!(
                        "{} — reachable from the hot path: {}",
                        hit.message,
                        chain.join(" → ")
                    ),
                    chain: chain.clone(),
                    justification: None,
                });
            }
        }
    }
    findings
}

/// Renders the BFS entry→`to` chain as `file.rs::fn` labels.
fn chain_to(
    units: &[FileUnit],
    graph: &CallGraph,
    parent: &BTreeMap<usize, Option<usize>>,
    to: usize,
) -> Vec<String> {
    let mut chain = vec![graph.label(units, to)];
    let mut at = to;
    while let Some(Some(p)) = parent.get(&at) {
        chain.push(graph.label(units, *p));
        at = *p;
    }
    chain.reverse();
    chain
}

/// Alloc-free propagation: a function annotated `// analyzer: alloc-free`
/// may only call (a) other alloc-free functions, or (b) opaque/trusted
/// callees — those are covered by the textual allocation denylist inside
/// the annotated span.
pub fn alloc_propagation(units: &[FileUnit], graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if !f.alloc_free {
            continue;
        }
        for site in &graph.calls[i] {
            if site.trusted || site.candidates.is_empty() {
                continue;
            }
            // Method calls through a non-`self` receiver resolve by name
            // only (over-approximate); holding every annotated function to
            // everyone else's method names would drown the signal. Those
            // lines stay covered by the textual allocation denylist.
            if site.callee.starts_with('.') && !site.self_receiver {
                continue;
            }
            let Some(&bad) = site.candidates.iter().find(|&&c| !graph.fns[c].alloc_free) else {
                continue;
            };
            let callee = &graph.fns[bad];
            findings.push(Finding {
                file: units[f.unit].rel.clone(),
                line: site.line,
                rule: RuleId::AllocPropagation,
                message: format!(
                    "alloc-free `{}` calls `{}` ({}:{}), which is not annotated alloc-free",
                    f.name, site.callee, units[callee.unit].rel, callee.sig_line
                ),
                chain: vec![graph.label(units, i), graph.label(units, bad)],
                justification: None,
            });
        }
    }
    findings
}

/// Recursion detection inside the alloc-free subgraph: unbounded recursion
/// is an unbounded stack allocation, so any cycle (including self-loops)
/// among alloc-free functions is a finding, reported once per cycle at its
/// first member.
pub fn alloc_recursion(units: &[FileUnit], graph: &CallGraph) -> Vec<Finding> {
    // Edges restricted to the alloc-free subgraph (trusted edges stay:
    // trusting a call for allocation does not make recursion bounded).
    let nodes: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.alloc_free)
        .map(|(i, _)| i)
        .collect();
    let node_set: BTreeSet<usize> = nodes.iter().copied().collect();
    let edges: BTreeMap<usize, Vec<usize>> = nodes
        .iter()
        .map(|&i| {
            let mut out: Vec<usize> = graph.calls[i]
                .iter()
                .flat_map(|s| s.candidates.iter().copied())
                .filter(|c| node_set.contains(c))
                .collect();
            out.sort_unstable();
            out.dedup();
            (i, out)
        })
        .collect();
    let mut findings = Vec::new();
    for scc in tarjan_sccs(&nodes, &edges) {
        let cyclic = scc.len() > 1 || edges.get(&scc[0]).is_some_and(|out| out.contains(&scc[0]));
        if !cyclic {
            continue;
        }
        let mut members = scc.clone();
        members.sort_by_key(|&i| (graph.fns[i].unit, graph.fns[i].sig_line));
        let head = &graph.fns[members[0]];
        let chain: Vec<String> = members.iter().map(|&i| graph.label(units, i)).collect();
        findings.push(Finding {
            file: units[head.unit].rel.clone(),
            line: head.sig_line,
            rule: RuleId::AllocRecursion,
            message: format!(
                "recursion inside the alloc-free subgraph (unbounded stack growth): {}",
                chain.join(" → ")
            ),
            chain,
            justification: None,
        });
    }
    findings
}

/// Iterative Tarjan strongly-connected components over the given nodes.
fn tarjan_sccs(nodes: &[usize], edges: &BTreeMap<usize, Vec<usize>>) -> Vec<Vec<usize>> {
    #[derive(Default, Clone)]
    struct Meta {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let mut meta: BTreeMap<usize, Meta> = nodes.iter().map(|&n| (n, Meta::default())).collect();
    let mut counter = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let empty: Vec<usize> = Vec::new();
    // Explicit DFS frames: (node, next out-edge offset). Every visited
    // node is seeded in `meta` (same `nodes` slice), so the `entry`
    // lookups below never insert.
    for &root in nodes {
        if meta.entry(root).or_default().index.is_some() {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, next)) = frames.last() {
            if next == 0 {
                let m = meta.entry(v).or_default();
                m.index = Some(counter);
                m.lowlink = counter;
                m.on_stack = true;
                counter += 1;
                stack.push(v);
            }
            let out = edges.get(&v).unwrap_or(&empty);
            if let Some(&w) = out.get(next) {
                if let Some(top) = frames.last_mut() {
                    top.1 = next + 1;
                }
                let wm = meta.entry(w).or_default().clone();
                match wm.index {
                    None => frames.push((w, 0)),
                    Some(wi) if wm.on_stack => {
                        let m = meta.entry(v).or_default();
                        m.lowlink = m.lowlink.min(wi);
                    }
                    Some(_) => {}
                }
            } else {
                frames.pop();
                let vm = meta.entry(v).or_default().clone();
                let vindex = vm.index.unwrap_or(vm.lowlink);
                if let Some(&(p, _)) = frames.last() {
                    let m = meta.entry(p).or_default();
                    m.lowlink = m.lowlink.min(vm.lowlink);
                }
                if vm.lowlink == vindex {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        meta.entry(w).or_default().on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse_unit;
    use crate::callgraph;

    fn setup(files: &[(&str, &str)]) -> (Vec<FileUnit>, CallGraph) {
        let units: Vec<FileUnit> = files
            .iter()
            .map(|(rel, src)| parse_unit(rel, src))
            .collect();
        let graph = callgraph::build(&units);
        (units, graph)
    }

    fn policy_with_hot(files: &[&str]) -> Policy {
        let mut p = Policy::workspace();
        p.panic_files = files.iter().map(|s| s.to_string()).collect();
        p
    }

    #[test]
    fn panic_in_cross_file_callee_is_reported_with_chain() {
        let hot = "pub fn serve() {\n    ftdb_sim::helpers::merge();\n}\n";
        let cold =
            "pub fn merge() {\n    let v: Vec<u32> = Vec::new();\n    v.last().unwrap();\n}\n";
        let (units, graph) = setup(&[
            ("crates/sim/src/hot.rs", hot),
            ("crates/sim/src/helpers.rs", cold),
        ]);
        let p = policy_with_hot(&["crates/sim/src/hot.rs"]);
        let f = transitive_panic(&units, &graph, &p);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].file, "crates/sim/src/helpers.rs");
        assert_eq!(f[0].line, 3);
        assert_eq!(f[0].rule, RuleId::TransitivePanic);
        assert_eq!(f[0].chain, vec!["hot.rs::serve", "helpers.rs::merge"]);
        assert!(f[0].message.contains("hot.rs::serve → helpers.rs::merge"));
    }

    #[test]
    fn trusted_call_cuts_the_edge() {
        let hot = "pub fn serve() {\n    // analyzer: trusted-call -- panics only on poisoned input, pre-validated\n    helper_far();\n}\n";
        let cold = "pub fn helper_far() {\n    panic!(\"boom\");\n}\n";
        let (units, graph) = setup(&[
            ("crates/sim/src/hot.rs", hot),
            ("crates/sim/src/cold.rs", cold),
        ]);
        let p = policy_with_hot(&["crates/sim/src/hot.rs"]);
        assert!(transitive_panic(&units, &graph, &p).is_empty());
    }

    #[test]
    fn hot_files_themselves_are_not_double_reported() {
        let hot = "pub fn serve(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let (units, graph) = setup(&[("crates/sim/src/hot.rs", hot)]);
        let p = policy_with_hot(&["crates/sim/src/hot.rs"]);
        // The direct per-line scan owns this; the transitive pass stays out.
        assert!(transitive_panic(&units, &graph, &p).is_empty());
    }

    #[test]
    fn alloc_free_calling_unannotated_is_a_finding() {
        let src = "// analyzer: alloc-free\npub fn hot() {\n    cold();\n}\npub fn cold() {}\n";
        let (units, graph) = setup(&[("crates/sim/src/a.rs", src)]);
        let f = alloc_propagation(&units, &graph);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (3, RuleId::AllocPropagation));
        assert_eq!(f[0].chain, vec!["a.rs::hot", "a.rs::cold"]);
    }

    #[test]
    fn alloc_free_calling_alloc_free_or_opaque_is_fine() {
        let src = "// analyzer: alloc-free\npub fn hot(x: u32) -> u32 {\n    let y = x.wrapping_add(1);\n    other(y)\n}\n// analyzer: alloc-free\npub fn other(x: u32) -> u32 {\n    x\n}\n";
        let (units, graph) = setup(&[("crates/sim/src/a.rs", src)]);
        assert!(alloc_propagation(&units, &graph).is_empty());
    }

    #[test]
    fn recursion_in_alloc_free_subgraph_is_reported_once() {
        let src = "// analyzer: alloc-free\npub fn ping(n: u32) {\n    pong(n)\n}\n// analyzer: alloc-free\npub fn pong(n: u32) {\n    ping(n)\n}\n// analyzer: alloc-free\npub fn own_loop(n: u32) {\n    own_loop(n)\n}\n";
        let (units, graph) = setup(&[("crates/sim/src/a.rs", src)]);
        let f = alloc_recursion(&units, &graph);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!((f[0].line, f[0].rule), (2, RuleId::AllocRecursion));
        assert_eq!(f[0].chain, vec!["a.rs::ping", "a.rs::pong"]);
        assert_eq!(f[1].line, 10);
    }

    #[test]
    fn non_recursive_alloc_free_subgraph_is_clean() {
        let src = "// analyzer: alloc-free\npub fn a() {\n    b()\n}\n// analyzer: alloc-free\npub fn b() {}\n";
        let (units, graph) = setup(&[("crates/sim/src/a.rs", src)]);
        assert!(alloc_recursion(&units, &graph).is_empty());
    }
}
