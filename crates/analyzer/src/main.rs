//! CLI for the workspace static-analysis gate.
//!
//! ```text
//! ftdb-analyzer check [--root DIR] [--format text|json|github]
//!                                    # scan the workspace; exit 1 on findings
//! ftdb-analyzer allows [--root DIR]  # inventory every `allow` site
//! ftdb-analyzer rules                # print the rule table
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ftdb_analyzer::analyze::Finding;
use ftdb_analyzer::policy::{run, Analysis};
use ftdb_analyzer::rules::ALL_RULES;
use ftdb_analyzer::{Policy, RuleId};

/// Output format for `check`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    /// `file:line: [rule] message` lines (default).
    Text,
    /// A stable JSON array: `{file, line, rule, message, chain,
    /// justification}` per finding.
    Json,
    /// GitHub Actions `::error file=…,line=…::…` annotations.
    Github,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("allows") => run_allows(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            usage();
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("ftdb-analyzer: unknown subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
    }
}

/// Parses `--root`/`--format` flags shared by `check` and `allows`.
fn parse_flags(args: &[String], allow_format: bool) -> Result<(PathBuf, Format), ExitCode> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("ftdb-analyzer: `--root` needs a directory");
                    return Err(ExitCode::from(2));
                }
            },
            "--format" if allow_format => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                _ => {
                    eprintln!("ftdb-analyzer: `--format` needs one of text|json|github");
                    return Err(ExitCode::from(2));
                }
            },
            other => {
                eprintln!("ftdb-analyzer: unknown flag `{other}`");
                usage();
                return Err(ExitCode::from(2));
            }
        }
    }
    Ok((root, format))
}

fn analyze(root: &Path) -> Result<Analysis, ExitCode> {
    run(root, &Policy::workspace()).map_err(|e| {
        eprintln!("ftdb-analyzer: i/o error scanning {}: {e}", root.display());
        ExitCode::from(2)
    })
}

fn run_check(args: &[String]) -> ExitCode {
    let (root, format) = match parse_flags(args, true) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let analysis = match analyze(&root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let findings = &analysis.findings;
    match format {
        Format::Json => println!("{}", json_findings(findings)),
        Format::Github => {
            for f in findings {
                // `::error` annotation values must stay on one line.
                println!(
                    "::error file={},line={},title=ftdb-analyzer [{}]::{}",
                    f.file,
                    f.line,
                    f.rule.name(),
                    escape_github(&f.message)
                );
            }
        }
        Format::Text => {
            for f in findings {
                println!("{f}");
            }
        }
    }
    if findings.is_empty() {
        if format == Format::Text {
            let policy = Policy::workspace();
            println!(
                "ftdb-analyzer: clean ({} hot-path file(s), {} concurrency file(s), {} \
                 determinism prefix(es), {} audit(s), {} allow site(s))",
                policy.panic_files.len(),
                policy.concurrency_files.len(),
                policy.determinism_prefixes.len(),
                policy.audits.len(),
                analysis.allows.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("ftdb-analyzer: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn run_allows(args: &[String]) -> ExitCode {
    let (root, _) = match parse_flags(args, false) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let analysis = match analyze(&root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    for a in &analysis.allows {
        println!(
            "{}:{}: allow({}) [{} use(s)] -- {}",
            a.file,
            a.directive_line,
            a.rule.name(),
            a.uses,
            a.justification
        );
    }
    println!("ftdb-analyzer: {} allow site(s)", analysis.allows.len());
    ExitCode::SUCCESS
}

/// Renders findings as a stable JSON array (schema: `file`, `line`,
/// `rule`, `message`, `chain`, `justification`).
fn json_findings(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"file\":{},", json_str(&f.file)));
        out.push_str(&format!("\"line\":{},", f.line));
        out.push_str(&format!("\"rule\":{},", json_str(f.rule.name())));
        out.push_str(&format!("\"message\":{},", json_str(&f.message)));
        out.push_str("\"chain\":[");
        for (j, link) in f.chain.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_str(link));
        }
        out.push_str("],");
        match &f.justification {
            Some(j) => out.push_str(&format!("\"justification\":{}", json_str(j))),
            None => out.push_str("\"justification\":null"),
        }
        out.push('}');
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// GitHub annotation messages: `%`, `\r`, `\n` are the only escapes.
fn escape_github(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

fn print_rules() {
    println!("{:<18} description", "rule");
    for rule in ALL_RULES {
        println!("{:<18} {}", rule.name(), describe(rule));
    }
    println!();
    println!("allow syntax:  // analyzer: allow(<rule>[, <rule>]) -- <justification>");
    println!("annotations:   // analyzer: alloc-free   (own line, above a fn)");
    println!("               // analyzer: trusted-call -- <justification>");
}

fn describe(rule: RuleId) -> &'static str {
    match rule {
        RuleId::Unwrap => "`.unwrap()` in a panic-free hot-path module",
        RuleId::Expect => "`.expect(..)` in a panic-free hot-path module",
        RuleId::Panic => "`panic!` in a panic-free hot-path module",
        RuleId::Unreachable => "`unreachable!` in a panic-free hot-path module",
        RuleId::Todo => "`todo!` in a panic-free hot-path module",
        RuleId::Unimplemented => "`unimplemented!` in a panic-free hot-path module",
        RuleId::IndexLiteral => "integer-literal indexing (`xs[0]`) in a hot-path module",
        RuleId::Alloc => "allocating call inside a `// analyzer: alloc-free` function",
        RuleId::HashCollections => "HashMap/HashSet in a determinism-critical module",
        RuleId::WallClock => "Instant/SystemTime in a determinism-critical module",
        RuleId::AmbientRng => "thread_rng/from_entropy in a determinism-critical module",
        RuleId::FloatEq => "float ==/!= in a determinism-critical module",
        RuleId::DiffCoverage => "report field missing from a differential equivalence suite",
        RuleId::TransitivePanic => "panic-capable code reachable from a hot-path entry point",
        RuleId::AllocPropagation => "alloc-free function calling a non-alloc-free function",
        RuleId::AllocRecursion => "recursion (unbounded stack) inside the alloc-free subgraph",
        RuleId::ChannelProtocol => "channel send/recv outside the barrier protocol table",
        RuleId::UnsortedMerge => "boundary-batch merge without the (dst, src) sort",
        RuleId::ShardLock => "Mutex/RwLock/Relaxed atomics in the sharded hot path",
        RuleId::ThreadSpawn => "`std::thread::spawn` instead of the scoped worker entry points",
        RuleId::OverloadedAllow => "one `analyzer: allow` suppressing multiple findings",
        RuleId::StaleAllow => "`analyzer: allow` that suppresses nothing",
        RuleId::BadDirective => "malformed or unknown `analyzer:` directive",
    }
}

fn usage() {
    eprintln!(
        "usage: ftdb-analyzer <check [--root DIR] [--format text|json|github] | \
         allows [--root DIR] | rules>"
    );
}
