//! CLI for the workspace static-analysis gate.
//!
//! ```text
//! ftdb-analyzer check [--root DIR]   # scan the workspace; exit 1 on findings
//! ftdb-analyzer rules                # print the rule table
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ftdb_analyzer::rules::ALL_RULES;
use ftdb_analyzer::{check_workspace, Policy, RuleId};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            usage();
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("ftdb-analyzer: unknown subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("ftdb-analyzer: `--root` needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("ftdb-analyzer: unknown flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let findings = match check_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ftdb-analyzer: i/o error scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if findings.is_empty() {
        let policy = Policy::workspace();
        println!(
            "ftdb-analyzer: clean ({} hot-path file(s), {} determinism prefix(es), {} audit(s))",
            policy.panic_files.len(),
            policy.determinism_prefixes.len(),
            policy.audits.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        eprintln!("ftdb-analyzer: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn print_rules() {
    println!("{:<18} description", "rule");
    for rule in ALL_RULES {
        println!("{:<18} {}", rule.name(), describe(rule));
    }
    println!();
    println!("allow syntax:  // analyzer: allow(<rule>[, <rule>]) -- <justification>");
    println!("annotation:    // analyzer: alloc-free   (own line, above a fn)");
}

fn describe(rule: RuleId) -> &'static str {
    match rule {
        RuleId::Unwrap => "`.unwrap()` in a panic-free hot-path module",
        RuleId::Expect => "`.expect(..)` in a panic-free hot-path module",
        RuleId::Panic => "`panic!` in a panic-free hot-path module",
        RuleId::Unreachable => "`unreachable!` in a panic-free hot-path module",
        RuleId::Todo => "`todo!` in a panic-free hot-path module",
        RuleId::Unimplemented => "`unimplemented!` in a panic-free hot-path module",
        RuleId::IndexLiteral => "integer-literal indexing (`xs[0]`) in a hot-path module",
        RuleId::Alloc => "allocating call inside a `// analyzer: alloc-free` function",
        RuleId::HashCollections => "HashMap/HashSet in a determinism-critical module",
        RuleId::WallClock => "Instant/SystemTime in a determinism-critical module",
        RuleId::AmbientRng => "thread_rng/from_entropy in a determinism-critical module",
        RuleId::FloatEq => "float ==/!= in a determinism-critical module",
        RuleId::DiffCoverage => "report field missing from the differential equivalence suite",
        RuleId::StaleAllow => "`analyzer: allow` that suppresses nothing",
        RuleId::BadDirective => "malformed or unknown `analyzer:` directive",
    }
}

fn usage() {
    eprintln!("usage: ftdb-analyzer <check [--root DIR] | rules>");
}
