//! The workspace policy: which rule families apply to which modules, and
//! the file walker that applies them.
//!
//! The mapping is deliberately explicit — the gate protects *named*
//! load-bearing modules (the congestion cycle loop, the routing kernels,
//! the BFS scratch, the exhaustive verifier) rather than aspiring to a
//! workspace-wide ban it would then have to allowlist into uselessness.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::analyze::{analyze_source, Finding};
use crate::audit::{differential_coverage, AuditSpec};
use crate::rules::RuleSet;

/// Maps workspace-relative paths to rule sets.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Files under panic-freedom rules (the hot-path modules).
    pub panic_files: Vec<String>,
    /// Path prefixes under determinism rules (report-producing crates).
    pub determinism_prefixes: Vec<String>,
    /// Directories walked for `.rs` files (directives and `alloc-free`
    /// annotations are honored everywhere scanned).
    pub scan_roots: Vec<String>,
    /// Path prefixes never scanned (seeded-violation fixture corpora).
    pub exclude_prefixes: Vec<String>,
    /// Differential-coverage audits (report struct ↔ equivalence suite).
    pub audits: Vec<AuditSpec>,
}

impl Policy {
    /// The committed policy for this workspace.
    pub fn workspace() -> Policy {
        Policy {
            panic_files: vec![
                "crates/sim/src/congestion/mod.rs".into(),
                "crates/sim/src/congestion/engine.rs".into(),
                "crates/sim/src/congestion/implicit_route.rs".into(),
                "crates/sim/src/congestion/shard.rs".into(),
                "crates/sim/src/congestion/boundary.rs".into(),
                "crates/sim/src/routing.rs".into(),
                "crates/graph/src/traversal.rs".into(),
                "crates/graph/src/search.rs".into(),
                "crates/core/src/verify.rs".into(),
            ],
            determinism_prefixes: vec!["crates/sim/src/".into(), "crates/analysis/src/".into()],
            scan_roots: vec!["crates".into(), "examples".into(), "tests".into()],
            exclude_prefixes: vec!["crates/analyzer/fixtures".into()],
            audits: vec![AuditSpec {
                struct_file: "crates/sim/src/congestion/engine.rs".into(),
                struct_name: "CongestionReport".into(),
                test_file: "tests/tests/wakelist_differential.rs".into(),
            }],
        }
    }

    /// The rule families active for one workspace-relative path.
    pub fn rule_set_for(&self, rel: &str) -> RuleSet {
        RuleSet {
            panic_free: self.panic_files.iter().any(|p| p == rel),
            determinism: self
                .determinism_prefixes
                .iter()
                .any(|p| rel.starts_with(p.as_str())),
        }
    }

    fn excluded(&self, rel: &str) -> bool {
        self.exclude_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }
}

/// Runs the full policy over the workspace at `root`: every scanned file
/// plus every configured audit. Findings are sorted by path, then line.
pub fn check(root: &Path, policy: &Policy) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for scan_root in &policy.scan_roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for path in &files {
        let rel = relative_label(root, path);
        if policy.excluded(&rel) {
            continue;
        }
        let source = fs::read_to_string(path)?;
        findings.extend(analyze_source(&rel, &source, policy.rule_set_for(&rel)));
    }
    for audit in &policy.audits {
        findings.extend(differential_coverage(root, audit)?);
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Workspace-relative, `/`-separated label for diagnostics.
fn relative_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_policy_names_the_hot_paths() {
        let p = Policy::workspace();
        let set = p.rule_set_for("crates/sim/src/congestion/engine.rs");
        assert!(set.panic_free && set.determinism);
        let set = p.rule_set_for("crates/sim/src/congestion/shard.rs");
        assert!(set.panic_free && set.determinism);
        let set = p.rule_set_for("crates/sim/src/metrics.rs");
        assert!(!set.panic_free && set.determinism);
        let set = p.rule_set_for("crates/graph/src/traversal.rs");
        assert!(set.panic_free && !set.determinism);
        let set = p.rule_set_for("crates/topology/src/debruijn.rs");
        assert_eq!(set, RuleSet::default());
        assert!(p.excluded("crates/analyzer/fixtures/panic_violations.rs"));
    }
}
