//! The workspace policy: which rule families apply to which modules, and
//! the driver that parses every file once, runs the per-file scanners, the
//! interprocedural passes, and the audits, then reconciles the allowlist.
//!
//! The mapping is deliberately explicit — the gate protects *named*
//! load-bearing modules (the congestion cycle loop, the routing kernels,
//! the BFS scratch, the exhaustive verifier) rather than aspiring to a
//! workspace-wide ban it would then have to allowlist into uselessness.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::analyze::{apply_allows, parse_unit, scan_unit, FileUnit, Finding};
use crate::audit::{differential_coverage, AuditSpec};
use crate::rules::{RuleId, RuleSet};
use crate::{callgraph, concurrency, interproc};

/// Maps workspace-relative paths to rule sets.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Files under panic-freedom rules (the hot-path modules). These are
    /// also the *entry points* of the transitive panic-freedom pass:
    /// every function reachable from them inherits the panic rules.
    pub panic_files: Vec<String>,
    /// Path prefixes under determinism rules (report-producing crates).
    pub determinism_prefixes: Vec<String>,
    /// Files under the sharded-concurrency protocol rules.
    pub concurrency_files: Vec<String>,
    /// Directories walked for `.rs` files (directives and `alloc-free`
    /// annotations are honored everywhere scanned).
    pub scan_roots: Vec<String>,
    /// Path prefixes never scanned (seeded-violation fixture corpora).
    pub exclude_prefixes: Vec<String>,
    /// Differential-coverage audits (report struct ↔ equivalence suites).
    pub audits: Vec<AuditSpec>,
}

impl Policy {
    /// The committed policy for this workspace.
    pub fn workspace() -> Policy {
        Policy {
            panic_files: vec![
                "crates/sim/src/congestion/mod.rs".into(),
                "crates/sim/src/congestion/engine.rs".into(),
                "crates/sim/src/congestion/implicit_route.rs".into(),
                "crates/sim/src/congestion/shard.rs".into(),
                "crates/sim/src/congestion/boundary.rs".into(),
                "crates/sim/src/routing.rs".into(),
                "crates/graph/src/traversal.rs".into(),
                "crates/graph/src/search.rs".into(),
                "crates/core/src/verify.rs".into(),
            ],
            determinism_prefixes: vec!["crates/sim/src/".into(), "crates/analysis/src/".into()],
            concurrency_files: vec![
                "crates/sim/src/congestion/shard.rs".into(),
                "crates/sim/src/congestion/boundary.rs".into(),
            ],
            scan_roots: vec!["crates".into(), "examples".into(), "tests".into()],
            exclude_prefixes: vec!["crates/analyzer/fixtures".into()],
            audits: vec![AuditSpec {
                struct_file: "crates/sim/src/congestion/engine.rs".into(),
                struct_name: "CongestionReport".into(),
                test_files: vec![
                    "tests/tests/wakelist_differential.rs".into(),
                    "crates/sim/src/congestion/shard.rs".into(),
                ],
            }],
        }
    }

    /// The rule families active for one workspace-relative path.
    pub fn rule_set_for(&self, rel: &str) -> RuleSet {
        RuleSet {
            panic_free: self.panic_files.iter().any(|p| p == rel),
            determinism: self
                .determinism_prefixes
                .iter()
                .any(|p| rel.starts_with(p.as_str())),
        }
    }

    fn excluded(&self, rel: &str) -> bool {
        self.exclude_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
    }
}

/// One `// analyzer: allow` site, as inventoried by `ftdb-analyzer
/// allows`.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// Workspace-relative file.
    pub file: String,
    /// Line of the directive.
    pub directive_line: usize,
    /// The rule it suppresses.
    pub rule: RuleId,
    /// Its justification text.
    pub justification: String,
    /// How many findings it suppressed in this run.
    pub uses: usize,
}

/// The full result of a workspace run: diagnostics plus the allowlist
/// inventory.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by path, line, rule.
    pub findings: Vec<Finding>,
    /// Every `allow` site, sorted by path and directive line.
    pub allows: Vec<AllowRecord>,
}

/// Runs the full policy over the workspace at `root`: per-file scanners,
/// the interprocedural passes over the extracted call graph, the
/// concurrency protocol checker, every configured audit, and allowlist
/// reconciliation.
pub fn run(root: &Path, policy: &Policy) -> io::Result<Analysis> {
    let mut files = Vec::new();
    for scan_root in &policy.scan_roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut units: Vec<FileUnit> = Vec::new();
    for path in &files {
        let rel = relative_label(root, path);
        if policy.excluded(&rel) {
            continue;
        }
        let source = fs::read_to_string(path)?;
        units.push(parse_unit(&rel, &source));
    }
    let mut raw = Vec::new();
    for unit in &units {
        raw.extend(scan_unit(unit, policy.rule_set_for(&unit.rel)));
    }
    let graph = callgraph::build(&units);
    raw.extend(interproc::transitive_panic(&units, &graph, policy));
    raw.extend(interproc::alloc_propagation(&units, &graph));
    raw.extend(interproc::alloc_recursion(&units, &graph));
    raw.extend(concurrency::check(&units, &graph, policy));
    let mut findings = apply_allows(&mut units, raw);
    for audit in &policy.audits {
        findings.extend(differential_coverage(root, audit)?);
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    let mut allows: Vec<AllowRecord> = units
        .iter()
        .flat_map(|u| {
            u.allows.iter().map(|a| AllowRecord {
                file: u.rel.clone(),
                directive_line: a.directive_line,
                rule: a.rule,
                justification: a.justification.clone(),
                uses: a.uses,
            })
        })
        .collect();
    allows.sort_by(|a, b| {
        (a.file.as_str(), a.directive_line, a.rule).cmp(&(
            b.file.as_str(),
            b.directive_line,
            b.rule,
        ))
    });
    Ok(Analysis { findings, allows })
}

/// Runs the full policy and returns just the findings.
pub fn check(root: &Path, policy: &Policy) -> io::Result<Vec<Finding>> {
    Ok(run(root, policy)?.findings)
}

/// Workspace-relative, `/`-separated label for diagnostics.
fn relative_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_policy_names_the_hot_paths() {
        let p = Policy::workspace();
        let set = p.rule_set_for("crates/sim/src/congestion/engine.rs");
        assert!(set.panic_free && set.determinism);
        let set = p.rule_set_for("crates/sim/src/congestion/shard.rs");
        assert!(set.panic_free && set.determinism);
        let set = p.rule_set_for("crates/sim/src/metrics.rs");
        assert!(!set.panic_free && set.determinism);
        let set = p.rule_set_for("crates/graph/src/traversal.rs");
        assert!(set.panic_free && !set.determinism);
        let set = p.rule_set_for("crates/topology/src/debruijn.rs");
        assert_eq!(set, RuleSet::default());
        assert!(p.excluded("crates/analyzer/fixtures/panic_violations.rs"));
        assert!(p
            .concurrency_files
            .contains(&"crates/sim/src/congestion/boundary.rs".to_string()));
    }
}
