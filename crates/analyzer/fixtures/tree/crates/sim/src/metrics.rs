// Cold helper reached from the hot engine: seeds the transitive
// panic-freedom rule (no direct panic rules apply to this file).

/// Largest queue entry; panics on an empty queue.
pub fn summarize(q: &[u64]) -> u64 {
    *q.iter().max().expect("non-empty queue")
}
