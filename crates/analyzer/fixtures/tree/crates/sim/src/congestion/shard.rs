// Seeded sharded-engine protocol violations: an unjoined spawn, a lock,
// an unmatched channel send, and an unsorted boundary merge.

/// Drives one worker round; every line below breaks one protocol rule.
pub fn drive(batches: &mut Vec<(u32, u32)>, out_tx: Sender<u64>) -> u64 {
    let worker = std::thread::spawn(move || 1u64);
    let guard = std::sync::Mutex::new(0u64);
    let _ = out_tx.send(1);
    let mut cycles = 0u64;
    for b in batches.iter() {
        cycles += (b.0 + b.1) as u64;
    }
    let _ = (worker, guard);
    cycles
}
