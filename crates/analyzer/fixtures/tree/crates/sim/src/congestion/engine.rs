// Seeded mini-workspace for CLI exit-code tests: a hot-path file with a
// panic and determinism violations, plus a report struct whose
// differential suite is absent entirely.

use std::collections::HashSet;

/// The report struct the committed audit looks for.
pub struct CongestionReport {
    /// Total simulated cycles.
    pub cycles: u64,
}

pub fn step(q: &[u64]) -> u64 {
    let head = q.last().unwrap();
    let _ = HashSet::<u64>::new();
    *head
}
