// Seeded mini-workspace for CLI exit-code tests: a hot-path file with a
// panic and determinism violations, plus a report struct whose
// differential suite is absent entirely.

use std::collections::HashSet;

/// The report struct the committed audit looks for.
pub struct CongestionReport {
    /// Total simulated cycles.
    pub cycles: u64,
}

pub fn step(q: &[u64]) -> u64 {
    let head = q.last().unwrap();
    let _ = HashSet::<u64>::new();
    *head
}

/// Hot entry whose helper lives outside the hot set: seeds the
/// transitive panic rule in `metrics.rs`.
pub fn report(q: &[u64]) -> u64 {
    crate::metrics::summarize(q)
}

// analyzer: alloc-free
pub fn hot_helper(x: u64) -> u64 {
    widen(x)
}

pub fn widen(x: u64) -> u64 {
    x.wrapping_add(1)
}

// analyzer: alloc-free
pub fn ping(n: u64) -> u64 {
    if n == 0 { 0 } else { pong(n - 1) }
}

// analyzer: alloc-free
pub fn pong(n: u64) -> u64 {
    ping(n)
}
