// Fixture: a hot-path-style file that passes every rule family — an
// alloc-free kernel that only mutates in place, and a justified allow
// that actually suppresses something.

// analyzer: alloc-free
pub fn kernel(out: &mut [u64], n: u64) -> u64 {
    let mut acc = 0u64;
    for slot in out.iter_mut() {
        *slot = slot.wrapping_add(n);
        acc = acc.wrapping_add(*slot);
    }
    acc
}

pub fn guarded(flag: Option<u32>) -> u32 {
    // analyzer: allow(unwrap) -- the caller checked is_some() immediately above
    flag.unwrap()
}
