// Fixture: differential suite covering only some MiniReport fields.
// `dropped` appears in this comment and in the string below, neither of
// which may count as coverage.

pub fn compare(a: &MiniReport, b: &MiniReport) {
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.delivered, b.delivered, "dropped from comparison");
}
