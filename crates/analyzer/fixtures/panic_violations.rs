// Seeded-violation fixture: every panic-family rule fires exactly once.
// Scanned only by the analyzer's own tests, never by the workspace gate.

pub fn hot(xs: &[u32], flag: Option<u32>) -> u32 {
    let a = flag.unwrap();
    let b = flag.expect("must be set");
    if xs.is_empty() {
        panic!("empty");
    }
    match a {
        0 => unreachable!(),
        1 => todo!(),
        2 => unimplemented!(),
        _ => {}
    }
    xs[0] + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn cfg_test_items_are_exempt() {
        Some(1u32).unwrap();
        panic!("not a finding");
    }
}
