// Seeded-violation fixture: allowlist hygiene. A stale allow, an allow
// naming a rule that does not exist, and an allow with no justification
// (which therefore suppresses nothing, so the unwrap still fires).

pub fn fine(flag: Option<u32>) -> u32 {
    // analyzer: allow(unwrap) -- nothing below actually unwraps
    flag.map_or(0, |v| v + 1)
}

// analyzer: allow(frobnicate) -- no such rule
pub fn noisy() {}

pub fn undocumented(flag: Option<u32>) -> u32 {
    flag.unwrap() // analyzer: allow(unwrap)
}
