// Fixture: report struct for the differential-coverage audit tests.

/// A miniature report with one deliberately uncovered public field.
pub struct MiniReport {
    /// Simulated cycles.
    pub cycles: u64,
    /// Delivered packets.
    pub delivered: u64,
    /// Dropped packets — never compared in `audit_suite.rs`.
    pub dropped: u64,
    scratch: u64,
}
