// Seeded-violation fixture: allocation discipline inside an annotated
// function; the unannotated sibling below it stays silent.

// analyzer: alloc-free
pub fn kernel(out: &mut Vec<u64>, n: u64) {
    let mut scratch = Vec::new();
    scratch.push(n);
    out.push(n);
    let s = format!("{n}");
    let t = s.clone();
    let b = Box::new(n);
    out.extend([*b + t.len() as u64]);
}

pub fn cold(out: &mut Vec<u64>, n: u64) {
    out.push(n);
}
