// Seeded-violation fixture: every determinism rule fires.

use std::collections::HashMap;
use std::time::Instant;

pub fn stats(xs: &[f64]) -> bool {
    let mut seen = HashMap::new();
    seen.insert(xs.len() as u64, 1u64);
    let started = Instant::now();
    let mut rng = rand::thread_rng();
    let _ = (started, &mut rng, seen);
    xs[0] == 0.25
}
