//! Fixture-based integration tests: seeded-violation corpora with exact
//! expected `(line, rule)` diagnostics, allowlist staleness, the
//! differential-coverage audit, CLI exit codes, and the meta-test that the
//! committed workspace itself passes with zero findings.

use std::path::PathBuf;
use std::process::Command;

use ftdb_analyzer::audit::{differential_coverage, AuditSpec};
use ftdb_analyzer::{analyze_source, check_workspace, Finding, RuleId, RuleSet};

const PANIC_ONLY: RuleSet = RuleSet {
    panic_free: true,
    determinism: false,
};
const DET_ONLY: RuleSet = RuleSet {
    panic_free: false,
    determinism: true,
};
const FULL: RuleSet = RuleSet {
    panic_free: true,
    determinism: true,
};

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn fixture(name: &str) -> String {
    let path = manifest_dir().join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lines_and_rules(findings: &[Finding]) -> Vec<(usize, RuleId)> {
    findings.iter().map(|f| (f.line, f.rule)).collect()
}

#[test]
fn panic_fixture_yields_exact_diagnostics() {
    let src = fixture("panic_violations.rs");
    let f = analyze_source("panic_violations.rs", &src, PANIC_ONLY);
    assert_eq!(
        lines_and_rules(&f),
        vec![
            (5, RuleId::Unwrap),
            (6, RuleId::Expect),
            (8, RuleId::Panic),
            (11, RuleId::Unreachable),
            (12, RuleId::Todo),
            (13, RuleId::Unimplemented),
            (16, RuleId::IndexLiteral),
        ],
        "{f:#?}"
    );
    assert!(
        f[0].to_string()
            .starts_with("panic_violations.rs:5: [unwrap]"),
        "{}",
        f[0]
    );
}

#[test]
fn alloc_fixture_flags_only_the_annotated_function() {
    let src = fixture("alloc_violations.rs");
    let f = analyze_source("alloc_violations.rs", &src, RuleSet::default());
    assert_eq!(
        lines_and_rules(&f),
        (6..=12).map(|l| (l, RuleId::Alloc)).collect::<Vec<_>>(),
        "{f:#?}"
    );
}

#[test]
fn determinism_fixture_yields_exact_diagnostics() {
    let src = fixture("determinism_violations.rs");
    let f = analyze_source("determinism_violations.rs", &src, DET_ONLY);
    assert_eq!(
        lines_and_rules(&f),
        vec![
            (3, RuleId::HashCollections),
            (4, RuleId::WallClock),
            (7, RuleId::HashCollections),
            (9, RuleId::WallClock),
            (10, RuleId::AmbientRng),
            (12, RuleId::FloatEq),
        ],
        "{f:#?}"
    );
}

#[test]
fn allowlist_staleness_and_malformed_directives_are_findings() {
    let src = fixture("stale_allow.rs");
    let f = analyze_source("stale_allow.rs", &src, PANIC_ONLY);
    assert_eq!(
        lines_and_rules(&f),
        vec![
            (6, RuleId::StaleAllow),
            (10, RuleId::BadDirective),
            (14, RuleId::Unwrap),
            (14, RuleId::BadDirective),
        ],
        "{f:#?}"
    );
}

#[test]
fn clean_fixture_passes_every_rule_family() {
    let src = fixture("clean.rs");
    let f = analyze_source("clean.rs", &src, FULL);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn audit_flags_an_uncovered_field_at_its_declaration_line() {
    let spec = AuditSpec {
        struct_file: "fixtures/audit_report.rs".into(),
        struct_name: "MiniReport".into(),
        test_files: vec!["fixtures/audit_suite.rs".into()],
    };
    let f = differential_coverage(&manifest_dir(), &spec).expect("audit i/o");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!((f[0].line, f[0].rule), (10, RuleId::DiffCoverage));
    assert!(f[0].message.contains("dropped"), "{}", f[0].message);
}

#[test]
fn audit_cannot_be_disabled_by_renaming_the_struct() {
    let spec = AuditSpec {
        struct_file: "fixtures/audit_report.rs".into(),
        struct_name: "GhostReport".into(),
        test_files: vec!["fixtures/audit_suite.rs".into()],
    };
    let f = differential_coverage(&manifest_dir(), &spec).expect("audit i/o");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, RuleId::DiffCoverage);
    assert!(f[0].message.contains("not found"), "{}", f[0].message);
}

#[test]
fn committed_workspace_passes_with_zero_findings() {
    let root = manifest_dir().join("..").join("..");
    let findings = check_workspace(&root).expect("scan workspace");
    assert!(
        findings.is_empty(),
        "workspace regressions:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn analyzer_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftdb-analyzer"))
}

#[test]
fn cli_exits_one_on_the_seeded_tree() {
    let root = manifest_dir().join("fixtures").join("tree");
    let out = analyzer_bin()
        .arg("check")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert!(
        stdout.contains("crates/sim/src/congestion/engine.rs:14: [unwrap]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/sim/src/congestion/engine.rs:15: [hash-collections]"),
        "{stdout}"
    );
    assert!(stdout.contains("[diff-coverage]"), "{stdout}");
    // One seed per interprocedural / concurrency rule family, each at its
    // exact line.
    assert!(
        stdout.contains("crates/sim/src/congestion/engine.rs:27: [alloc-propagation]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/sim/src/congestion/engine.rs:35: [alloc-recursion]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/sim/src/congestion/shard.rs:6: [thread-spawn]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/sim/src/congestion/shard.rs:7: [shard-lock]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/sim/src/congestion/shard.rs:8: [channel-protocol]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/sim/src/congestion/shard.rs:10: [unsorted-merge]"),
        "{stdout}"
    );
    // The cross-file panic reachability diagnostic names the concrete
    // entry→sink call chain.
    assert!(
        stdout.contains("crates/sim/src/metrics.rs:6: [transitive-panic]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("engine.rs::report → metrics.rs::summarize"),
        "{stdout}"
    );
}

#[test]
fn cli_github_format_emits_error_annotations() {
    let root = manifest_dir().join("fixtures").join("tree");
    let out = analyzer_bin()
        .args(["check", "--format", "github", "--root"])
        .arg(&root)
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert!(
        stdout.contains(
            "::error file=crates/sim/src/congestion/engine.rs,line=14,\
             title=ftdb-analyzer [unwrap]::"
        ),
        "{stdout}"
    );
    assert!(
        stdout.contains(
            "::error file=crates/sim/src/metrics.rs,line=6,\
             title=ftdb-analyzer [transitive-panic]::"
        ),
        "{stdout}"
    );
    // Annotation values must stay on one line per finding.
    assert!(
        stdout
            .lines()
            .all(|l| l.is_empty() || l.starts_with("::error ")),
        "{stdout}"
    );
}

#[test]
fn cli_json_format_has_the_stable_schema() {
    let root = manifest_dir().join("fixtures").join("tree");
    let out = analyzer_bin()
        .args(["check", "--format", "json", "--root"])
        .arg(&root)
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert!(
        stdout.contains(r#""file":"crates/sim/src/metrics.rs","line":6,"rule":"transitive-panic""#),
        "{stdout}"
    );
    assert!(
        stdout.contains(r#""chain":["engine.rs::report","metrics.rs::summarize"]"#),
        "{stdout}"
    );
    assert!(stdout.contains(r#""justification":null"#), "{stdout}");
}

#[test]
fn allows_inventory_lists_every_site_with_justification() {
    let root = manifest_dir().join("..").join("..");
    let out = analyzer_bin()
        .arg("allows")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("spawn analyzer");
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    // The burned-down Knuth Algorithm T sites are inventoried with their
    // rule, use count, and justification.
    assert!(
        stdout.contains("crates/core/src/fault.rs:297: allow(transitive-panic) [1 use(s)] -- "),
        "{stdout}"
    );
    assert!(stdout.contains("allow site(s)"), "{stdout}");
    // Every committed allow earns its keep: the inventory never shows a
    // zero-use site (those are stale-allow findings and fail `check`).
    assert!(!stdout.contains("[0 use(s)]"), "{stdout}");
}

#[test]
fn cli_exits_zero_on_this_workspace() {
    let root = manifest_dir().join("..").join("..");
    let out = analyzer_bin()
        .arg("check")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("spawn analyzer");
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("ftdb-analyzer: clean"), "{stdout}");
}

#[test]
fn cli_usage_errors_exit_two() {
    let out = analyzer_bin()
        .arg("bogus")
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(2));
    let out = analyzer_bin()
        .args(["check", "--root"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(2));
}
