//! The base-m de Bruijn graph `B_{m,h}` (Section IV of the paper).
//!
//! `B_{m,h}` has `m^h` nodes labelled with `h`-digit base-m numbers. Node
//! `x = [x_{h-1}, …, x_0]_m` is connected to `[x_{h-2}, …, x_0, r]_m` and
//! `[r, x_{h-1}, …, x_1]_m` for every `r ∈ {0, …, m-1}`. Equivalently,
//! `(x, y)` is an edge iff there is an `r ∈ {0, …, m-1}` with
//! `y = X(x, m, r, m^h)` or `x = X(y, m, r, m^h)`.

use crate::labels::{format_label, from_digits, pow_nodes, to_digits, x_fn};
use ftdb_graph::{Graph, GraphBuilder, NodeId};

/// The base-m `h`-digit de Bruijn graph `B_{m,h}`.
#[derive(Clone, Debug)]
pub struct DeBruijnM {
    m: usize,
    h: usize,
    graph: Graph,
}

impl DeBruijnM {
    /// Builds `B_{m,h}` using the arithmetic (`X` function) edge definition.
    ///
    /// # Panics
    /// Panics if `m < 2`, `h < 1`, or `m^h` overflows `usize`.
    pub fn new(m: usize, h: usize) -> Self {
        assert!(m >= 2, "B(m,h) needs m >= 2");
        assert!(h >= 1, "B(m,h) needs h >= 1");
        let n = pow_nodes(m, h);
        let mut b = GraphBuilder::new(n).name(format!("B({m},{h})"));
        for x in 0..n {
            for r in 0..m {
                b.add_edge(x, x_fn(x, m, r as i64, n));
            }
        }
        DeBruijnM {
            m,
            h,
            graph: b.build(),
        }
    }

    /// Builds `B_{m,h}` using the digit-string definition (drop the most
    /// significant digit and append `r`, or drop the least significant digit
    /// and prepend `r`).
    pub fn by_digit_definition(m: usize, h: usize) -> Self {
        assert!(m >= 2 && h >= 1);
        let n = pow_nodes(m, h);
        let mut b = GraphBuilder::new(n).name(format!("B({m},{h})"));
        for x in 0..n {
            let digits = to_digits(x, m, h);
            for r in 0..m {
                // [x_{h-2}, …, x_0, r]
                let mut left = digits[1..].to_vec();
                left.push(r);
                b.add_edge(x, from_digits(&left, m));
                // [r, x_{h-1}, …, x_1]
                let mut right = vec![r];
                right.extend_from_slice(&digits[..h - 1]);
                b.add_edge(x, from_digits(&right, m));
            }
        }
        DeBruijnM {
            m,
            h,
            graph: b.build(),
        }
    }

    /// The base `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The number of digits `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// The number of nodes, `m^h`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying undirected graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the wrapper, returning the underlying graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// The base-m label of node `x` as an `h`-character string.
    pub fn label(&self, x: NodeId) -> String {
        format_label(x, self.m, self.h)
    }

    /// The `m` successor nodes `X(x, m, r, m^h)` for `r = 0..m`.
    pub fn successors(&self, x: NodeId) -> Vec<NodeId> {
        let n = self.node_count();
        (0..self.m).map(|r| x_fn(x, self.m, r as i64, n)).collect()
    }

    /// Routes from `source` to `target` by shifting in the base-m digits of
    /// `target`, one per hop. At most `h` hops.
    pub fn route(&self, source: NodeId, target: NodeId) -> Vec<NodeId> {
        let n = self.node_count();
        assert!(source < n && target < n, "route endpoints out of range");
        let digits = to_digits(target, self.m, self.h);
        let mut path = vec![source];
        let mut current = source;
        for &d in &digits {
            let next = x_fn(current, self.m, d as i64, n);
            if next != current {
                path.push(next);
            }
            current = next;
        }
        debug_assert_eq!(current, target);
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debruijn::DeBruijn2;
    use ftdb_graph::{properties, traversal};
    use proptest::prelude::*;

    #[test]
    fn base2_specialisation_matches_debruijn2() {
        for h in 1..=7 {
            let general = DeBruijnM::new(2, h);
            let special = DeBruijn2::new(h);
            assert!(
                properties::same_edge_set(general.graph(), special.graph()),
                "B(2,{h}) mismatch between the general and base-2 constructions"
            );
        }
    }

    #[test]
    fn arithmetic_and_digit_definitions_agree() {
        for (m, h) in [(2, 5), (3, 3), (4, 3), (5, 2), (8, 2)] {
            let a = DeBruijnM::new(m, h);
            let d = DeBruijnM::by_digit_definition(m, h);
            assert!(
                properties::same_edge_set(a.graph(), d.graph()),
                "definitions disagree for m={m}, h={h}"
            );
        }
    }

    #[test]
    fn node_count_and_degree_bound() {
        for (m, h) in [(3, 3), (4, 2), (5, 3), (6, 2)] {
            let g = DeBruijnM::new(m, h);
            assert_eq!(g.node_count(), pow_nodes(m, h));
            // Degree of the de Bruijn graph is at most 2m.
            assert!(
                g.graph().max_degree() <= 2 * m,
                "degree {} > 2m for m={m}, h={h}",
                g.graph().max_degree()
            );
            assert!(traversal::is_connected(g.graph()));
        }
    }

    #[test]
    fn diameter_is_h() {
        for (m, h) in [(2, 5), (3, 3), (4, 3)] {
            let g = DeBruijnM::new(m, h);
            assert_eq!(traversal::diameter(g.graph()), Some(h), "m={m}, h={h}");
        }
    }

    #[test]
    fn labels_use_base_m_digits() {
        let g = DeBruijnM::new(3, 3);
        assert_eq!(g.label(0), "000");
        assert_eq!(g.label(25), "221");
        assert_eq!(g.label(26), "222");
    }

    #[test]
    fn successors_are_neighbors() {
        let g = DeBruijnM::new(4, 3);
        for x in [0usize, 1, 17, 63] {
            for s in g.successors(x) {
                if s != x {
                    assert!(g.graph().has_edge(x, s));
                }
            }
        }
    }

    proptest! {
        #[test]
        fn routes_are_valid_paths(m in 2usize..5, h in 2usize..5, s in 0usize..10000, t in 0usize..10000) {
            let g = DeBruijnM::new(m, h);
            let n = g.node_count();
            let (s, t) = (s % n, t % n);
            let path = g.route(s, t);
            prop_assert_eq!(path[0], s);
            prop_assert_eq!(*path.last().unwrap(), t);
            prop_assert!(path.len() <= h + 1);
            for w in path.windows(2) {
                prop_assert!(g.graph().has_edge(w[0], w[1]));
            }
        }

        #[test]
        fn edge_count_close_to_directed_count(m in 2usize..5, h in 2usize..4) {
            // The directed de Bruijn graph has exactly m^(h+1) arcs. After
            // dropping the m self-loops and merging 2-cycles the undirected
            // edge count is at most m^(h+1) - m and at least (m^(h+1) - m)/2.
            let g = DeBruijnM::new(m, h);
            let arcs = pow_nodes(m, h + 1);
            prop_assert!(g.graph().edge_count() <= arcs - m);
            prop_assert!(2 * g.graph().edge_count() >= arcs - m);
        }
    }
}
