//! Label arithmetic from Section II of the paper.
//!
//! The paper defines three small utilities that all of its constructions are
//! phrased with:
//!
//! * the *h-digit base-m representation* `[x_{h-1}, x_{h-2}, …, x_0]_m` of a
//!   non-negative integer,
//! * the *rank* of an element in a set of integers
//!   (`Rank(x, S) = |{y ∈ S : y < x}|`), and
//! * the function `X(z, m, r, s) = (z·m + r) mod s`, which expresses the
//!   "shift left one digit, append r" de Bruijn edge arithmetically.

/// The function `X(z, m, r, s) = (z·m + r) mod s` from Section II.
///
/// `r` is signed because the fault-tolerant constructions use offsets in
/// `{-(m-1)k, …, (m-1)(k+1)}`. The result is always reduced into `0..s`.
///
/// # Panics
/// Panics if `s == 0`.
pub fn x_fn(z: usize, m: usize, r: i64, s: usize) -> usize {
    assert!(s > 0, "X(z, m, r, s) requires s > 0");
    let zm = (z as i128) * (m as i128) + (r as i128);
    let s = s as i128;
    (((zm % s) + s) % s) as usize
}

/// `Rank(x, S)`: the number of elements of `S` that are smaller than `x`.
///
/// `S` is given as a slice; it does not need to be sorted and may or may not
/// contain `x` itself (consistent with the paper, only *smaller* elements are
/// counted).
pub fn rank(x: usize, set: &[usize]) -> usize {
    set.iter().filter(|&&y| y < x).count()
}

/// `Rank(x, S)` for a sorted slice, in `O(log |S|)`.
pub fn rank_sorted(x: usize, sorted_set: &[usize]) -> usize {
    sorted_set.partition_point(|&y| y < x)
}

/// The h-digit base-m representation `[x_{h-1}, …, x_0]` of `x`
/// (most-significant digit first).
///
/// # Panics
/// Panics if `m < 2` or if `x >= m^h` (the value does not fit in `h` digits).
pub fn to_digits(x: usize, m: usize, h: usize) -> Vec<usize> {
    assert!(m >= 2, "base must be at least 2");
    let mut digits = vec![0usize; h];
    let mut rest = x;
    for d in (0..h).rev() {
        digits[h - 1 - d] = (rest / m.pow(d as u32)) % m;
    }
    rest = x;
    for _ in 0..h {
        rest /= m;
    }
    assert!(rest == 0, "{x} does not fit in {h} base-{m} digits");
    digits
}

/// Reassembles an integer from its base-m digit vector (most-significant
/// digit first). Inverse of [`to_digits`].
pub fn from_digits(digits: &[usize], m: usize) -> usize {
    assert!(m >= 2, "base must be at least 2");
    digits.iter().fold(0usize, |acc, &d| {
        assert!(d < m, "digit {d} out of range for base {m}");
        acc * m + d
    })
}

/// Formats a node label the way the paper prints it: the `h` base-m digits
/// with no separators (e.g. `x = 6, m = 2, h = 4` → `"0110"`).
pub fn format_label(x: usize, m: usize, h: usize) -> String {
    to_digits(x, m, h)
        .into_iter()
        .map(|d| {
            std::char::from_digit(d as u32, 36)
                .expect("digit below base 36")
                .to_ascii_uppercase()
        })
        .collect()
}

/// Left-rotates the h-digit base-m representation of `x` by one digit
/// (the *shuffle* permutation). `[x_{h-1}, x_{h-2}, …, x_0] →
/// [x_{h-2}, …, x_0, x_{h-1}]`.
pub fn rotate_left(x: usize, m: usize, h: usize) -> usize {
    let total = m.pow(h as u32);
    assert!(x < total, "{x} out of range for {h} base-{m} digits");
    let msd = x / m.pow(h as u32 - 1);
    (x % m.pow(h as u32 - 1)) * m + msd
}

/// Right-rotates the h-digit base-m representation of `x` by one digit
/// (the *unshuffle* permutation). Inverse of [`rotate_left`].
pub fn rotate_right(x: usize, m: usize, h: usize) -> usize {
    let total = m.pow(h as u32);
    assert!(x < total, "{x} out of range for {h} base-{m} digits");
    let lsd = x % m;
    x / m + lsd * m.pow(h as u32 - 1)
}

/// `m^h` as a `usize`, panicking on overflow. The paper's graphs have
/// `m^h + k` nodes; this helper keeps the arithmetic in one place.
pub fn pow_nodes(m: usize, h: usize) -> usize {
    let mut n = 1usize;
    for _ in 0..h {
        n = n
            .checked_mul(m)
            .expect("m^h overflows usize; choose smaller parameters");
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn x_fn_matches_definition() {
        assert_eq!(x_fn(5, 2, 0, 16), 10);
        assert_eq!(x_fn(5, 2, 1, 16), 11);
        assert_eq!(x_fn(12, 2, 1, 16), 9); // wraps
        assert_eq!(x_fn(0, 3, -1, 7), 6); // negative offsets wrap upwards
        assert_eq!(x_fn(3, 4, -20, 9), (12i64 - 20).rem_euclid(9) as usize);
    }

    #[test]
    #[should_panic]
    fn x_fn_rejects_zero_modulus() {
        x_fn(1, 2, 0, 0);
    }

    #[test]
    fn rank_examples_from_paper() {
        // "if S is finite Rank(min(S), S) = 0 and Rank(max(S), S) = |S| - 1"
        let s = [4usize, 9, 2, 7];
        assert_eq!(rank(2, &s), 0);
        assert_eq!(rank(9, &s), 3);
        assert_eq!(rank(5, &s), 2);
        assert_eq!(rank_sorted(5, &[2, 4, 7, 9]), 2);
        assert_eq!(rank_sorted(10, &[2, 4, 7, 9]), 4);
    }

    #[test]
    fn digits_roundtrip_examples() {
        assert_eq!(to_digits(6, 2, 4), vec![0, 1, 1, 0]);
        assert_eq!(from_digits(&[0, 1, 1, 0], 2), 6);
        assert_eq!(to_digits(25, 3, 3), vec![2, 2, 1]);
        assert_eq!(from_digits(&[2, 2, 1], 3), 25);
        assert_eq!(format_label(6, 2, 4), "0110");
        assert_eq!(format_label(35, 6, 2), "55");
    }

    #[test]
    #[should_panic]
    fn to_digits_rejects_overflow_value() {
        to_digits(16, 2, 4);
    }

    #[test]
    fn rotations() {
        // 0110 -> 1100 (left), 0110 -> 0011 (right)
        assert_eq!(rotate_left(0b0110, 2, 4), 0b1100);
        assert_eq!(rotate_right(0b0110, 2, 4), 0b0011);
        // base 3, digits [1,2,0] = 15 -> [2,0,1] = 19 (left)
        assert_eq!(rotate_left(15, 3, 3), 19);
        assert_eq!(rotate_right(19, 3, 3), 15);
    }

    #[test]
    fn pow_nodes_small() {
        assert_eq!(pow_nodes(2, 10), 1024);
        assert_eq!(pow_nodes(3, 4), 81);
        assert_eq!(pow_nodes(7, 0), 1);
    }

    proptest! {
        #[test]
        fn digits_roundtrip(m in 2usize..6, h in 1usize..8, seed in 0usize..100000) {
            let n = pow_nodes(m, h);
            let x = seed % n;
            let d = to_digits(x, m, h);
            prop_assert_eq!(d.len(), h);
            prop_assert_eq!(from_digits(&d, m), x);
        }

        #[test]
        fn rotate_left_right_inverse(m in 2usize..6, h in 1usize..8, seed in 0usize..100000) {
            let n = pow_nodes(m, h);
            let x = seed % n;
            prop_assert_eq!(rotate_right(rotate_left(x, m, h), m, h), x);
            prop_assert_eq!(rotate_left(rotate_right(x, m, h), m, h), x);
        }

        #[test]
        fn rotate_h_times_is_identity(m in 2usize..5, h in 1usize..7, seed in 0usize..100000) {
            let n = pow_nodes(m, h);
            let mut x = seed % n;
            let original = x;
            for _ in 0..h {
                x = rotate_left(x, m, h);
            }
            prop_assert_eq!(x, original);
        }

        #[test]
        fn x_fn_is_shift_and_append(m in 2usize..5, h in 2usize..7, seed in 0usize..100000, r in 0usize..4) {
            let n = pow_nodes(m, h);
            let x = seed % n;
            let r = r % m;
            // X(x, m, r, m^h) drops the most significant digit and appends r.
            let mut digits = to_digits(x, m, h);
            digits.remove(0);
            digits.push(r);
            prop_assert_eq!(x_fn(x, m, r as i64, n), from_digits(&digits, m));
        }

        #[test]
        fn rank_never_exceeds_set_size(x in 0usize..100, ref set in proptest::collection::vec(0usize..100, 0..20)) {
            prop_assert!(rank(x, set) <= set.len());
        }
    }
}
