//! The cube-connected cycles network (Preparata and Vuillemin [11]).
//!
//! Mentioned in the paper's introduction as the third major constant-degree
//! hypercube alternative (and the subject of the authors' companion paper
//! [2]). Included here so the comparison experiments can report its degree
//! and so the simulator has a third constant-degree topology available.
//!
//! `CCC_d` replaces every node of the hypercube `Q_d` by a cycle of `d`
//! nodes; node `(x, p)` (cycle `x`, position `p`) is adjacent to its two
//! cycle neighbours `(x, p±1 mod d)` and across the cube dimension `p` to
//! `(x ⊕ 2^p, p)`.

use ftdb_graph::{Graph, GraphBuilder, NodeId};

/// The cube-connected cycles network of dimension `d` with `d·2^d` nodes.
#[derive(Clone, Debug)]
pub struct CubeConnectedCycles {
    d: usize,
    graph: Graph,
}

impl CubeConnectedCycles {
    /// Builds `CCC_d` for `d ≥ 3` (for `d < 3` the cycle edges degenerate).
    ///
    /// # Panics
    /// Panics if `d < 1` or the node count overflows.
    pub fn new(d: usize) -> Self {
        assert!(d >= 1, "CCC needs d >= 1");
        let cube = 1usize << d;
        let n = d * cube;
        let mut b = GraphBuilder::new(n).name(format!("CCC({d})"));
        for x in 0..cube {
            for p in 0..d {
                let v = Self::encode_with(d, x, p);
                // Cycle edges.
                b.add_edge(v, Self::encode_with(d, x, (p + 1) % d));
                // Cube edge across dimension p.
                b.add_edge(v, Self::encode_with(d, x ^ (1 << p), p));
            }
        }
        CubeConnectedCycles {
            d,
            graph: b.build(),
        }
    }

    fn encode_with(d: usize, x: usize, p: usize) -> NodeId {
        x * d + p
    }

    /// Encodes (cycle label `x`, cycle position `p`) as a node id.
    pub fn encode(&self, x: usize, p: usize) -> NodeId {
        assert!(p < self.d && x < (1 << self.d));
        Self::encode_with(self.d, x, p)
    }

    /// Decodes a node id back into (cycle label, cycle position).
    pub fn decode(&self, v: NodeId) -> (usize, usize) {
        (v / self.d, v % self.d)
    }

    /// The dimension `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The number of nodes, `d·2^d`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying undirected graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdb_graph::traversal;

    #[test]
    fn ccc3_counts() {
        let c = CubeConnectedCycles::new(3);
        assert_eq!(c.node_count(), 24);
        // Every node has exactly 3 neighbours: 2 on its cycle, 1 across the cube.
        assert!(c.graph().nodes().all(|v| c.graph().degree(v) == 3));
        assert!(traversal::is_connected(c.graph()));
    }

    #[test]
    fn constant_degree_for_all_dimensions() {
        for d in 3..=7 {
            let c = CubeConnectedCycles::new(d);
            assert_eq!(c.graph().max_degree(), 3, "d={d}");
            assert_eq!(c.node_count(), d << d);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = CubeConnectedCycles::new(4);
        for x in 0..16 {
            for p in 0..4 {
                assert_eq!(c.decode(c.encode(x, p)), (x, p));
            }
        }
    }

    #[test]
    fn cube_edges_cross_correct_dimension() {
        let c = CubeConnectedCycles::new(3);
        let v = c.encode(0b010, 1);
        let across = c.encode(0b000, 1);
        assert!(c.graph().has_edge(v, across));
        // But not across a different dimension at this position.
        assert!(!c.graph().has_edge(v, c.encode(0b011, 1)));
    }

    #[test]
    fn degenerate_small_dimensions_still_build() {
        assert_eq!(CubeConnectedCycles::new(1).node_count(), 2);
        assert_eq!(CubeConnectedCycles::new(2).node_count(), 8);
    }
}
