//! A constructive embedding of the shuffle-exchange network into the base-2
//! de Bruijn graph of the same size.
//!
//! The paper's fault-tolerant shuffle-exchange result (degree `4k + 4`) rests
//! on one external structural fact: *"a shuffle-exchange network is a
//! subgraph of a base-2 de Bruijn graph of the same size"* (reference [7]).
//! The paper uses the fact as a black box; this module makes it constructive
//! by computing an explicit embedding `σ : V(SE_h) → V(B_{2,h})` with the
//! backtracking subgraph-embedding search from `ftdb-graph`. The resulting
//! embedding is verified edge-by-edge before being returned, so a successful
//! return is a proof-by-witness of the containment for that `h`.
//!
//! Note that the *identity* labeling is not such an embedding: shuffle edges
//! are de Bruijn edges under the identity map, but exchange edges are not
//! (which is exactly why the paper points out that the "natural labeling"
//! only yields a degree `6k + 4` fault-tolerant graph). The computed
//! embeddings are therefore genuinely non-trivial relabelings.

use crate::debruijn::DeBruijn2;
use crate::shuffle_exchange::ShuffleExchange;
use ftdb_graph::search::{find_embedding, SearchOptions, SearchResult};
use ftdb_graph::Embedding;

/// Outcome of the shuffle-exchange → de Bruijn embedding computation.
#[derive(Clone, Debug)]
pub enum SeEmbeddingResult {
    /// A verified embedding was found.
    Found(Embedding),
    /// The exhaustive search proved that no embedding exists for this `h`
    /// (only possible for very small `h`).
    Impossible,
    /// The search ran out of budget before finding an embedding. The
    /// containment may still hold; callers should fall back to the natural
    /// labeling construction (degree `6k + 4`).
    BudgetExhausted,
}

impl SeEmbeddingResult {
    /// Returns the embedding if one was found.
    pub fn into_embedding(self) -> Option<Embedding> {
        match self {
            SeEmbeddingResult::Found(e) => Some(e),
            _ => None,
        }
    }

    /// `true` if an embedding was found.
    pub fn is_found(&self) -> bool {
        matches!(self, SeEmbeddingResult::Found(_))
    }
}

/// Computes an embedding of `SE_h` into `B_{2,h}` with the default search
/// budget.
pub fn embed_se_into_debruijn(h: usize) -> SeEmbeddingResult {
    embed_se_into_debruijn_with_budget(h, 200_000_000)
}

/// Computes an embedding of `SE_h` into `B_{2,h}` with an explicit search
/// budget (number of search-tree nodes).
pub fn embed_se_into_debruijn_with_budget(h: usize, node_budget: u64) -> SeEmbeddingResult {
    let se = ShuffleExchange::new(h);
    let db = DeBruijn2::new(h);
    let opts = SearchOptions {
        node_budget,
        fixed: None,
    };
    match find_embedding(se.graph(), db.graph(), &opts) {
        SearchResult::Found(e) => {
            // `find_embedding` already debug-asserts validity; re-verify in
            // release builds too, because downstream fault-tolerance claims
            // depend on it.
            e.verify(se.graph(), db.graph())
                .expect("search returned an invalid embedding");
            SeEmbeddingResult::Found(e)
        }
        SearchResult::NoEmbedding => SeEmbeddingResult::Impossible,
        SearchResult::BudgetExhausted => SeEmbeddingResult::BudgetExhausted,
    }
}

/// Checks whether the *identity* labeling embeds `SE_h` into `B_{2,h}`.
///
/// It does not (for `h ≥ 2`): exchange edges are not de Bruijn edges. The
/// paper relies on this observation when it contrasts the `4k + 4` and
/// `6k + 4` constructions; the function exists so tests and experiments can
/// demonstrate it.
pub fn identity_labeling_works(h: usize) -> bool {
    let se = ShuffleExchange::new(h);
    let db = DeBruijn2::new(h);
    Embedding::identity(se.node_count()).is_valid(se.graph(), db.graph())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_labeling_fails_for_h_at_least_3() {
        // Exchange edges are not de Bruijn edges under the identity map
        // (h = 2 is the one degenerate exception, where they happen to be).
        for h in 3..=6 {
            assert!(
                !identity_labeling_works(h),
                "identity unexpectedly works for h={h}"
            );
        }
    }

    #[test]
    fn embedding_found_for_small_h() {
        for h in 2..=5 {
            let se = ShuffleExchange::new(h);
            let db = DeBruijn2::new(h);
            match embed_se_into_debruijn(h) {
                SeEmbeddingResult::Found(e) => {
                    e.verify(se.graph(), db.graph()).unwrap();
                    assert_eq!(e.len(), 1 << h);
                }
                other => panic!("no SE⊆DB embedding found for h={h}: {other:?}"),
            }
        }
    }

    #[test]
    fn tiny_budget_reports_exhaustion() {
        match embed_se_into_debruijn_with_budget(4, 2) {
            SeEmbeddingResult::BudgetExhausted => {}
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }
}
