//! The base-2 de Bruijn graph `B_{2,h}` (Section III of the paper).
//!
//! `B_{2,h}` has `2^h` nodes, each labelled with a unique `h`-bit binary
//! number. Node `x = [x_{h-1}, …, x_0]_2` is connected to
//! `[x_{h-2}, …, x_0, 0]`, `[x_{h-2}, …, x_0, 1]`, `[0, x_{h-1}, …, x_1]` and
//! `[1, x_{h-1}, …, x_1]` (self-loops ignored), i.e. to everything reachable
//! by shifting the label left or right by one position. Equivalently —
//! and this is the form the fault-tolerant construction generalises —
//! `(x, y)` is an edge iff there is an `r ∈ {0, 1}` with
//! `y = X(x, 2, r, 2^h)` or `x = X(y, 2, r, 2^h)`.

use crate::labels::{format_label, pow_nodes, x_fn};
use ftdb_graph::{Graph, GraphBuilder, NodeId};

/// The base-2 `h`-digit de Bruijn graph `B_{2,h}`.
#[derive(Clone, Debug)]
pub struct DeBruijn2 {
    h: usize,
    graph: Graph,
}

impl DeBruijn2 {
    /// Builds `B_{2,h}` using the arithmetic (`X` function) edge definition.
    ///
    /// # Panics
    /// Panics if `h < 1` or if `2^h` overflows `usize`. The paper assumes
    /// `h ≥ 3`; smaller values are permitted here because they are still
    /// well-defined graphs and are convenient in tests.
    pub fn new(h: usize) -> Self {
        assert!(h >= 1, "B(2,h) needs h >= 1");
        let n = pow_nodes(2, h);
        let mut b = GraphBuilder::new(n).name(format!("B(2,{h})"));
        for x in 0..n {
            for r in 0..2 {
                // Edge (x, X(x, 2, r, 2^h)); the reverse direction produces
                // the same undirected edge set.
                b.add_edge(x, x_fn(x, 2, r as i64, n));
            }
        }
        DeBruijn2 {
            h,
            graph: b.build(),
        }
    }

    /// Builds `B_{2,h}` using the digit-string definition (shift the binary
    /// label left or right and fill the vacated bit with 0 or 1).
    ///
    /// [`DeBruijn2::new`] and this constructor produce identical graphs; the
    /// equivalence that the paper states ("it is easily verified") is checked
    /// by tests and by a property test.
    pub fn by_digit_definition(h: usize) -> Self {
        assert!(h >= 1, "B(2,h) needs h >= 1");
        let n = pow_nodes(2, h);
        let mut b = GraphBuilder::new(n).name(format!("B(2,{h})"));
        for x in 0..n {
            let shifted_left = (x << 1) & (n - 1);
            let shifted_right = x >> 1;
            b.add_edge(x, shifted_left); // [x_{h-2},…,x_0,0]
            b.add_edge(x, shifted_left | 1); // [x_{h-2},…,x_0,1]
            b.add_edge(x, shifted_right); // [0,x_{h-1},…,x_1]
            b.add_edge(x, shifted_right | (1 << (h - 1))); // [1,x_{h-1},…,x_1]
        }
        DeBruijn2 {
            h,
            graph: b.build(),
        }
    }

    /// The number of digits `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// The number of nodes, `2^h`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying undirected graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the wrapper, returning the underlying graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// The binary label of node `x`, as printed in the paper's figures
    /// (e.g. node 6 of `B_{2,4}` is `"0110"`).
    pub fn label(&self, x: NodeId) -> String {
        format_label(x, 2, self.h)
    }

    /// The two *successor* nodes of `x` in the directed de Bruijn sense:
    /// `2x mod 2^h` and `(2x + 1) mod 2^h`. These are the targets that a
    /// single bus replaces in the paper's Section V bus implementation.
    pub fn successors(&self, x: NodeId) -> [NodeId; 2] {
        let n = self.node_count();
        [x_fn(x, 2, 0, n), x_fn(x, 2, 1, n)]
    }

    /// The two *predecessor* nodes of `x`: `⌊x/2⌋` and `⌊x/2⌋ + 2^{h-1}`.
    pub fn predecessors(&self, x: NodeId) -> [NodeId; 2] {
        [x >> 1, (x >> 1) | (1 << (self.h - 1))]
    }

    /// One step of the digit-shifting route: shift `bit` into `current`.
    /// `X(current, 2, bit, 2^h) = ((current << 1) | bit) & (2^h - 1)` —
    /// shift-and-mask instead of the general modular arithmetic, valid
    /// because `B(2,h)` always has a power-of-two node count. This is the
    /// single definition of the step; every routing kernel calls it.
    #[inline]
    pub fn route_step(&self, current: NodeId, bit: usize) -> NodeId {
        ((current << 1) | (bit & 1)) & (self.node_count() - 1)
    }

    /// Routes from `source` to `target` by successively shifting in the bits
    /// of `target`, the standard de Bruijn routing scheme. The returned path
    /// starts at `source`, ends at `target`, and has at most `h + 1` nodes;
    /// consecutive nodes are adjacent (or equal, when a shift is a self-loop,
    /// in which case the duplicate is dropped).
    pub fn route(&self, source: NodeId, target: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.h + 1);
        self.route_into(source, target, &mut path);
        path
    }

    /// Buffer-reusing variant of [`DeBruijn2::route`]: clears `out` and
    /// writes the path into it. Once `out` has capacity `h + 1` no further
    /// allocation happens, which is what the batched routing engine relies
    /// on for its per-packet hot loop.
    pub fn route_into(&self, source: NodeId, target: NodeId, out: &mut Vec<NodeId>) {
        let n = self.node_count();
        assert!(source < n && target < n, "route endpoints out of range");
        out.clear();
        out.push(source);
        let mut current = source;
        for i in (0..self.h).rev() {
            let next = self.route_step(current, target >> i);
            if next != current {
                out.push(next);
            }
            current = next;
        }
        debug_assert_eq!(current, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdb_graph::properties;
    use ftdb_graph::traversal;
    use proptest::prelude::*;

    #[test]
    fn b24_matches_figure_1() {
        // Fig. 1 of the paper: B_{2,4} has 16 nodes and degree 4.
        let g = DeBruijn2::new(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.graph().max_degree(), 4);
        // Edge examples read off the figure / the digit definition:
        // node 0001 is adjacent to 0010, 0011, 0000 and 1000.
        for (u, v) in [(0, 1), (1, 2), (1, 3), (1, 8), (5, 10), (5, 11), (5, 2)] {
            assert!(g.graph().has_edge(u, v), "missing edge ({u},{v})");
        }
        assert!(!g.graph().has_edge(0, 15));
        g.graph().check_invariants().unwrap();
    }

    #[test]
    fn arithmetic_and_digit_definitions_agree() {
        for h in 1..=8 {
            let a = DeBruijn2::new(h);
            let d = DeBruijn2::by_digit_definition(h);
            assert!(
                properties::same_edge_set(a.graph(), d.graph()),
                "definitions disagree for h={h}"
            );
        }
    }

    #[test]
    fn degree_is_at_most_four_and_connected() {
        for h in 2..=9 {
            let g = DeBruijn2::new(h);
            assert!(g.graph().max_degree() <= 4, "degree > 4 for h={h}");
            assert!(traversal::is_connected(g.graph()), "disconnected for h={h}");
        }
    }

    #[test]
    fn labels_match_paper_convention() {
        let g = DeBruijn2::new(4);
        assert_eq!(g.label(0), "0000");
        assert_eq!(g.label(6), "0110");
        assert_eq!(g.label(15), "1111");
    }

    #[test]
    fn successors_and_predecessors() {
        let g = DeBruijn2::new(4);
        assert_eq!(g.successors(5), [10, 11]);
        assert_eq!(g.predecessors(10), [5, 13]);
        assert_eq!(g.successors(15), [14, 15]); // self-loop at the all-ones node
    }

    #[test]
    fn diameter_is_h() {
        // The de Bruijn graph B_{2,h} has diameter exactly h.
        for h in 2..=7 {
            let g = DeBruijn2::new(h);
            assert_eq!(traversal::diameter(g.graph()), Some(h), "h={h}");
        }
    }

    #[test]
    fn route_reaches_target_within_h_hops() {
        let g = DeBruijn2::new(6);
        let path = g.route(0b101010, 0b010101);
        assert_eq!(*path.first().unwrap(), 0b101010);
        assert_eq!(*path.last().unwrap(), 0b010101);
        assert!(path.len() <= 7);
        for w in path.windows(2) {
            assert!(g.graph().has_edge(w[0], w[1]), "non-edge in route {w:?}");
        }
    }

    proptest! {
        #[test]
        fn every_route_is_a_valid_path(h in 2usize..8, s in 0usize..1000, t in 0usize..1000) {
            let g = DeBruijn2::new(h);
            let n = g.node_count();
            let (s, t) = (s % n, t % n);
            let path = g.route(s, t);
            prop_assert_eq!(path[0], s);
            prop_assert_eq!(*path.last().unwrap(), t);
            prop_assert!(path.len() <= h + 1);
            for w in path.windows(2) {
                prop_assert!(g.graph().has_edge(w[0], w[1]));
            }
        }

        #[test]
        fn successor_edges_exist(h in 2usize..8, x in 0usize..1000) {
            let g = DeBruijn2::new(h);
            let x = x % g.node_count();
            for s in g.successors(x) {
                if s != x {
                    prop_assert!(g.graph().has_edge(x, s));
                }
            }
            for p in g.predecessors(x) {
                if p != x {
                    prop_assert!(g.graph().has_edge(x, p));
                }
            }
        }

        #[test]
        fn node_count_is_power_of_two(h in 1usize..10) {
            prop_assert_eq!(DeBruijn2::new(h).node_count(), 1usize << h);
        }
    }
}
