//! The point-to-point shuffle-exchange network `SE_h` (Stone [13]).
//!
//! `SE_h` has `2^h` nodes labelled with `h`-bit binary numbers. Node `x` is
//! connected to
//!
//! * `shuffle(x)` — the left rotation of its label (and, undirected, to
//!   `unshuffle(x)`, the right rotation), and
//! * `exchange(x) = x ⊕ 1` — the label with the lowest bit flipped.
//!
//! Its degree is 3 (the two rotation neighbours plus the exchange
//! neighbour), which is what makes it attractive for massively parallel
//! machines and, at the same time, so fragile under faults: every efficient
//! Ascend/Descend-style algorithm uses every node and every link.

use crate::labels::{format_label, pow_nodes, rotate_left, rotate_right};
use ftdb_graph::{Graph, GraphBuilder, NodeId};

/// The kind of a shuffle-exchange edge incident to a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeEdgeKind {
    /// The cyclic-left-shift (shuffle) edge.
    Shuffle,
    /// The cyclic-right-shift (unshuffle) edge.
    Unshuffle,
    /// The lowest-bit-flip (exchange) edge.
    Exchange,
}

/// The shuffle-exchange network on `2^h` nodes.
#[derive(Clone, Debug)]
pub struct ShuffleExchange {
    h: usize,
    graph: Graph,
}

impl ShuffleExchange {
    /// Builds `SE_h`.
    ///
    /// # Panics
    /// Panics if `h < 1` or `2^h` overflows `usize`.
    pub fn new(h: usize) -> Self {
        assert!(h >= 1, "SE_h needs h >= 1");
        let n = pow_nodes(2, h);
        let mut b = GraphBuilder::new(n).name(format!("SE({h})"));
        for x in 0..n {
            b.add_edge(x, rotate_left(x, 2, h)); // shuffle (self-loop at 0…0 and 1…1 ignored)
            b.add_edge(x, x ^ 1); // exchange
        }
        ShuffleExchange {
            h,
            graph: b.build(),
        }
    }

    /// The number of digits `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// The number of nodes, `2^h`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying undirected graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the wrapper, returning the underlying graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// The binary label of node `x`.
    pub fn label(&self, x: NodeId) -> String {
        format_label(x, 2, self.h)
    }

    /// The shuffle neighbour of `x` (cyclic left shift of the label).
    pub fn shuffle(&self, x: NodeId) -> NodeId {
        rotate_left(x, 2, self.h)
    }

    /// The unshuffle neighbour of `x` (cyclic right shift of the label).
    pub fn unshuffle(&self, x: NodeId) -> NodeId {
        rotate_right(x, 2, self.h)
    }

    /// The exchange neighbour of `x` (lowest bit flipped).
    pub fn exchange(&self, x: NodeId) -> NodeId {
        x ^ 1
    }

    /// Follows an edge of the given kind from `x`.
    pub fn step(&self, x: NodeId, kind: SeEdgeKind) -> NodeId {
        match kind {
            SeEdgeKind::Shuffle => self.shuffle(x),
            SeEdgeKind::Unshuffle => self.unshuffle(x),
            SeEdgeKind::Exchange => self.exchange(x),
        }
    }

    /// Routes from `source` to `target` with the classic shuffle-exchange
    /// scheme: `h` rounds of "optionally exchange (to fix the bit about to be
    /// rotated out of position), then shuffle". The path length is at most
    /// `2h`; consecutive path nodes are adjacent (duplicates from no-op steps
    /// are dropped).
    pub fn route(&self, source: NodeId, target: NodeId) -> Vec<NodeId> {
        let n = self.node_count();
        assert!(source < n && target < n, "route endpoints out of range");
        let mut path = vec![source];
        let mut current = source;
        // Each round writes one target bit into the low-order position
        // (via an exchange step if needed) and then shuffles. The bit written
        // in round j (1-based) ends up, after the remaining rotations, at
        // position (h - j + 1) mod h of the final label, so the bits must be
        // fed in the order t_0, t_{h-1}, t_{h-2}, …, t_1.
        for j in 1..=self.h {
            let position = (self.h - j + 1) % self.h;
            let want = (target >> position) & 1;
            if current & 1 != want {
                current ^= 1;
                path.push(current);
            }
            let next = self.shuffle(current);
            if next != current {
                path.push(next);
            }
            current = next;
        }
        debug_assert_eq!(current, target);
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdb_graph::traversal;
    use proptest::prelude::*;

    #[test]
    fn se3_structure() {
        let se = ShuffleExchange::new(3);
        assert_eq!(se.node_count(), 8);
        // Degree is at most 3.
        assert!(se.graph().max_degree() <= 3);
        assert!(traversal::is_connected(se.graph()));
        // 000 is adjacent to 001 (exchange); its shuffle is itself (ignored).
        assert!(se.graph().has_edge(0b000, 0b001));
        assert_eq!(se.graph().degree(0b000), 1);
        // 011 shuffles to 110, unshuffles to 101, exchanges to 010.
        assert!(se.graph().has_edge(0b011, 0b110));
        assert!(se.graph().has_edge(0b011, 0b101));
        assert!(se.graph().has_edge(0b011, 0b010));
        assert_eq!(se.graph().degree(0b011), 3);
    }

    #[test]
    fn edge_kind_helpers() {
        let se = ShuffleExchange::new(4);
        assert_eq!(se.shuffle(0b0110), 0b1100);
        assert_eq!(se.unshuffle(0b0110), 0b0011);
        assert_eq!(se.exchange(0b0110), 0b0111);
        assert_eq!(se.step(0b0110, SeEdgeKind::Shuffle), 0b1100);
        assert_eq!(se.step(0b0110, SeEdgeKind::Unshuffle), 0b0011);
        assert_eq!(se.step(0b0110, SeEdgeKind::Exchange), 0b0111);
        assert_eq!(se.label(0b0110), "0110");
    }

    #[test]
    fn edge_count_formula() {
        // SE_h has 2^{h-1} exchange edges plus the shuffle cycles:
        // 2^h shuffle arcs minus the 2 self-loops, but shuffle arcs that
        // coincide with their own reverse (2-cycles like 01<->10) are single
        // undirected edges. We simply check against an independent count.
        for h in 2..=9 {
            let se = ShuffleExchange::new(h);
            let mut expected = std::collections::BTreeSet::new();
            let n = 1usize << h;
            for x in 0..n {
                let s = rotate_left(x, 2, h);
                if s != x {
                    expected.insert((x.min(s), x.max(s)));
                }
                expected.insert((x.min(x ^ 1), x.max(x ^ 1)));
            }
            assert_eq!(se.graph().edge_count(), expected.len(), "h={h}");
        }
    }

    #[test]
    fn degree_never_exceeds_three() {
        for h in 1..=10 {
            assert!(ShuffleExchange::new(h).graph().max_degree() <= 3, "h={h}");
        }
    }

    #[test]
    fn routing_between_known_pair() {
        let se = ShuffleExchange::new(3);
        let path = se.route(0b000, 0b111);
        assert_eq!(*path.first().unwrap(), 0b000);
        assert_eq!(*path.last().unwrap(), 0b111);
        for w in path.windows(2) {
            assert!(se.graph().has_edge(w[0], w[1]), "non-edge {w:?}");
        }
    }

    proptest! {
        #[test]
        fn routes_are_valid_and_short(h in 2usize..9, s in 0usize..1000, t in 0usize..1000) {
            let se = ShuffleExchange::new(h);
            let n = se.node_count();
            let (s, t) = (s % n, t % n);
            let path = se.route(s, t);
            prop_assert_eq!(path[0], s);
            prop_assert_eq!(*path.last().unwrap(), t);
            prop_assert!(path.len() <= 2 * h + 1);
            for w in path.windows(2) {
                prop_assert!(se.graph().has_edge(w[0], w[1]));
            }
        }

        #[test]
        fn shuffle_and_unshuffle_are_inverse(h in 1usize..10, x in 0usize..100000) {
            let se = ShuffleExchange::new(h);
            let x = x % se.node_count();
            prop_assert_eq!(se.unshuffle(se.shuffle(x)), x);
            prop_assert_eq!(se.exchange(se.exchange(x)), x);
        }
    }
}
