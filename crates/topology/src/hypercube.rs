//! The binary hypercube `Q_d`, the reference topology of the paper's
//! introduction.
//!
//! The constant-degree networks (de Bruijn, shuffle-exchange, CCC) are
//! interesting precisely because they emulate hypercube algorithms — in
//! particular the Ascend/Descend classes of Preparata and Vuillemin — with
//! only constant-factor slowdown while keeping node degree independent of
//! the machine size. The simulator crate uses this module to define the
//! dimension-sweep communication pattern that those algorithm classes
//! perform.

use crate::labels::format_label;
use ftdb_graph::{Graph, GraphBuilder, NodeId};

/// The `d`-dimensional binary hypercube with `2^d` nodes.
#[derive(Clone, Debug)]
pub struct Hypercube {
    d: usize,
    graph: Graph,
}

impl Hypercube {
    /// Builds `Q_d`.
    ///
    /// # Panics
    /// Panics if `2^d` overflows `usize`.
    pub fn new(d: usize) -> Self {
        assert!(d < usize::BITS as usize, "dimension too large");
        let n = 1usize << d;
        let mut b = GraphBuilder::new(n).name(format!("Q({d})"));
        for x in 0..n {
            for bit in 0..d {
                let y = x ^ (1 << bit);
                if x < y {
                    b.add_edge(x, y);
                }
            }
        }
        Hypercube {
            d,
            graph: b.build(),
        }
    }

    /// The dimension `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The number of nodes, `2^d`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying undirected graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The binary label of node `x`.
    pub fn label(&self, x: NodeId) -> String {
        format_label(x, 2, self.d.max(1))
    }

    /// The neighbour of `x` across dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim >= d`.
    pub fn neighbor_across(&self, x: NodeId, dim: usize) -> NodeId {
        assert!(dim < self.d, "dimension {dim} out of range");
        x ^ (1 << dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftdb_graph::{properties, traversal};

    #[test]
    fn q4_counts() {
        let q = Hypercube::new(4);
        assert_eq!(q.node_count(), 16);
        assert_eq!(q.graph().edge_count(), 32);
        assert!(properties::is_regular(q.graph(), 4));
        assert_eq!(traversal::diameter(q.graph()), Some(4));
    }

    #[test]
    fn dimension_neighbors() {
        let q = Hypercube::new(3);
        assert_eq!(q.neighbor_across(0b010, 0), 0b011);
        assert_eq!(q.neighbor_across(0b010, 1), 0b000);
        assert_eq!(q.neighbor_across(0b010, 2), 0b110);
        assert!(q.graph().has_edge(0b010, 0b110));
        assert_eq!(q.label(5), "101");
    }

    #[test]
    fn degree_grows_with_dimension() {
        // The introduction's point: hypercube degree grows with machine size…
        for d in 1..=8 {
            assert_eq!(Hypercube::new(d).graph().max_degree(), d);
        }
    }

    #[test]
    fn q0_is_a_single_node() {
        let q = Hypercube::new(0);
        assert_eq!(q.node_count(), 1);
        assert_eq!(q.graph().edge_count(), 0);
    }
}
