//! # ftdb-topology
//!
//! The interconnection-network topologies studied by Bruck, Cypher and Ho in
//! *"Fault-Tolerant de Bruijn and Shuffle-Exchange Networks"*:
//!
//! * [`debruijn`] — the base-2 de Bruijn graph `B_{2,h}` (Section III of the
//!   paper), under both its digit-string definition and the arithmetic
//!   definition via the function `X(z, m, r, s) = (z·m + r) mod s`.
//! * [`debruijn_m`] — the base-m generalisation `B_{m,h}` (Section IV).
//! * [`shuffle_exchange`] — the point-to-point shuffle-exchange network
//!   `SE_h` (shuffle, unshuffle and exchange edges).
//! * [`hypercube`] and [`ccc`] — the reference topologies of the paper's
//!   introduction (the hypercube that the constant-degree networks emulate,
//!   and the cube-connected cycles).
//! * [`labels`] — digit/label utilities shared by all of the above: base-m
//!   digit vectors, the `Rank` function and the `X` function from the
//!   paper's Section II.
//! * [`se_embedding`] — a constructive embedding of `SE_h` into `B_{2,h}`,
//!   the external result the paper's fault-tolerant shuffle-exchange
//!   construction relies on.
//!
//! ## Quick example
//!
//! ```
//! use ftdb_topology::{DeBruijn2, ShuffleExchange};
//!
//! // B(2,4) and SE_4 share their 2^4 nodes; SE is the sparser network.
//! let db = DeBruijn2::new(4);
//! let se = ShuffleExchange::new(4);
//! assert_eq!(db.node_count(), 16);
//! assert_eq!(se.node_count(), db.node_count());
//! assert!(se.graph().edge_count() < db.graph().edge_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ccc;
pub mod debruijn;
pub mod debruijn_m;
pub mod hypercube;
pub mod labels;
pub mod se_embedding;
pub mod shuffle_exchange;

pub use debruijn::DeBruijn2;
pub use debruijn_m::DeBruijnM;
pub use labels::{rank, x_fn};
pub use shuffle_exchange::ShuffleExchange;
