//! The node-count / degree comparison against prior constructions
//! (experiments TAB1, TAB2 and TAB3).
//!
//! The paper's introduction compares its constructions with the
//! Samatham–Pradhan scheme [12]: *"our constructions use far fewer nodes and
//! yet have only slightly larger degrees."* These tables make the comparison
//! concrete for a sweep of parameters, reporting both the closed-form
//! figures quoted in the paper and (for instances small enough to
//! materialise) the measured maximum degree of the actual graphs.

use crate::report::TextTable;
use ftdb_core::baseline::SpBaseline;
use ftdb_core::{FtDeBruijn2, FtDeBruijnM, FtShuffleExchange, NaturalFtShuffleExchange};
use ftdb_topology::labels::pow_nodes;

/// One row of the base-2 / base-m comparison table.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct ComparisonRow {
    /// Base of the target de Bruijn graph.
    pub m: usize,
    /// Digits of the target de Bruijn graph.
    pub h: usize,
    /// Fault budget.
    pub k: usize,
    /// Target node count `m^h`.
    pub target_nodes: u128,
    /// Target degree (`2m` for the de Bruijn graph).
    pub target_degree: usize,
    /// Our construction's node count `m^h + k`.
    pub ours_nodes: u128,
    /// Our construction's degree bound `4(m-1)k + 2m`.
    pub ours_degree_bound: usize,
    /// Our construction's measured maximum degree (if the instance was small
    /// enough to build).
    pub ours_degree_measured: Option<usize>,
    /// Samatham–Pradhan node count `(m(k+1))^h`.
    pub sp_nodes: u128,
    /// Samatham–Pradhan quoted degree `2mk + 2`.
    pub sp_degree: usize,
    /// Node-count ratio `sp_nodes / ours_nodes`.
    pub node_ratio: f64,
}

/// Builds one comparison row; the graph is materialised (to measure its
/// true degree) only when it has at most `measure_limit` nodes.
pub fn comparison_row(m: usize, h: usize, k: usize, measure_limit: usize) -> ComparisonRow {
    let target_nodes = (m as u128).pow(h as u32);
    let ours_nodes = target_nodes + k as u128;
    let sp = SpBaseline::new(m, h, k);
    let ours_degree_measured = if ours_nodes <= measure_limit as u128 {
        let measured = if m == 2 {
            FtDeBruijn2::new(h, k).graph().max_degree()
        } else {
            FtDeBruijnM::new(m, h, k).graph().max_degree()
        };
        Some(measured)
    } else {
        None
    };
    ComparisonRow {
        m,
        h,
        k,
        target_nodes,
        target_degree: 2 * m,
        ours_nodes,
        ours_degree_bound: 4 * (m - 1) * k + 2 * m,
        ours_degree_measured,
        sp_nodes: sp.nodes(),
        sp_degree: sp.quoted_degree(),
        node_ratio: sp.nodes() as f64 / ours_nodes as f64,
    }
}

/// TAB1: the base-2 comparison over `h ∈ hs`, `k ∈ ks`.
pub fn base2_table(hs: &[usize], ks: &[usize], measure_limit: usize) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for &h in hs {
        for &k in ks {
            rows.push(comparison_row(2, h, k, measure_limit));
        }
    }
    rows
}

/// TAB2: the base-m comparison over `(m, h)` pairs and `k ∈ ks`.
pub fn base_m_table(
    mhs: &[(usize, usize)],
    ks: &[usize],
    measure_limit: usize,
) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for &(m, h) in mhs {
        for &k in ks {
            rows.push(comparison_row(m, h, k, measure_limit));
        }
    }
    rows
}

/// Renders a list of comparison rows as a [`TextTable`].
pub fn render_comparison(title: &str, rows: &[ComparisonRow]) -> TextTable {
    let mut table = TextTable::new(
        title,
        &[
            "m",
            "h",
            "k",
            "N (target)",
            "deg(target)",
            "N+k (ours)",
            "deg<= (ours)",
            "deg meas (ours)",
            "N (S-P)",
            "deg (S-P)",
            "node ratio S-P/ours",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.m.to_string(),
            r.h.to_string(),
            r.k.to_string(),
            r.target_nodes.to_string(),
            r.target_degree.to_string(),
            r.ours_nodes.to_string(),
            r.ours_degree_bound.to_string(),
            r.ours_degree_measured
                .map_or("-".to_string(), |d| d.to_string()),
            r.sp_nodes.to_string(),
            r.sp_degree.to_string(),
            format!("{:.1}", r.node_ratio),
        ]);
    }
    table
}

/// One row of TAB3: the two fault-tolerant shuffle-exchange constructions.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct ShuffleExchangeRow {
    /// Digits of the shuffle-exchange network.
    pub h: usize,
    /// Fault budget.
    pub k: usize,
    /// Node count of both constructions, `2^h + k`.
    pub nodes: usize,
    /// Degree bound of the de Bruijn-containment route, `4k + 4`.
    pub via_db_bound: usize,
    /// Measured degree of the de Bruijn-containment route.
    pub via_db_measured: Option<usize>,
    /// Degree figure the paper quotes for the natural labeling, `6k + 4`.
    pub natural_paper_bound: usize,
    /// Measured degree of the natural-labeling construction.
    pub natural_measured: usize,
}

/// Builds TAB3 for the given `(h, k)` pairs. The de Bruijn route needs the
/// SE ⊆ DB embedding, which is only computed for `h ≤ embed_limit`.
pub fn shuffle_exchange_table(
    hks: &[(usize, usize)],
    embed_limit: usize,
) -> Vec<ShuffleExchangeRow> {
    hks.iter()
        .map(|&(h, k)| {
            let natural = NaturalFtShuffleExchange::new(h, k);
            let via_db_measured = if h <= embed_limit {
                FtShuffleExchange::new(h, k)
                    .ok()
                    .map(|ft| ft.graph().max_degree())
            } else {
                None
            };
            ShuffleExchangeRow {
                h,
                k,
                nodes: pow_nodes(2, h) + k,
                via_db_bound: 4 * k + 4,
                via_db_measured,
                natural_paper_bound: 6 * k + 4,
                natural_measured: natural.graph().max_degree(),
            }
        })
        .collect()
}

/// Renders TAB3 as a [`TextTable`].
pub fn render_shuffle_exchange(rows: &[ShuffleExchangeRow]) -> TextTable {
    let mut table = TextTable::new(
        "TAB3: fault-tolerant shuffle-exchange degrees (via de Bruijn vs natural labeling)",
        &[
            "h",
            "k",
            "nodes",
            "deg<= via DB (4k+4)",
            "deg meas via DB",
            "paper natural (6k+4)",
            "deg meas natural",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.h.to_string(),
            r.k.to_string(),
            r.nodes.to_string(),
            r.via_db_bound.to_string(),
            r.via_db_measured.map_or("-".to_string(), |d| d.to_string()),
            r.natural_paper_bound.to_string(),
            r.natural_measured.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_reproduces_intro_comparison_shape() {
        // k = 1, base 2, h = 4: ours 17 nodes / degree ≤ 8 vs S-P 256 nodes /
        // degree 6 — far fewer nodes, slightly larger degree.
        let r = comparison_row(2, 4, 1, 10_000);
        assert_eq!(r.ours_nodes, 17);
        assert_eq!(r.ours_degree_bound, 8);
        assert_eq!(r.sp_nodes, 256);
        assert_eq!(r.sp_degree, 6);
        assert!(r.node_ratio > 15.0);
        assert!(r.ours_degree_measured.unwrap() <= 8);
    }

    #[test]
    fn measured_degree_is_skipped_for_large_instances() {
        let r = comparison_row(2, 20, 2, 1000);
        assert!(r.ours_degree_measured.is_none());
        assert_eq!(r.ours_nodes, (1 << 20) + 2);
    }

    #[test]
    fn tables_have_expected_dimensions() {
        let t1 = base2_table(&[3, 4, 5], &[1, 2], 5000);
        assert_eq!(t1.len(), 6);
        let t2 = base_m_table(&[(3, 3), (4, 2)], &[1, 2, 3], 5000);
        assert_eq!(t2.len(), 6);
        let rendered = render_comparison("TAB1", &t1);
        assert_eq!(rendered.row_count(), 6);
        assert!(rendered.render().contains("TAB1"));
    }

    #[test]
    fn sp_baseline_always_needs_more_nodes() {
        for row in base2_table(&[3, 4, 5, 6], &[1, 2, 3, 4], 0) {
            assert!(row.sp_nodes > row.ours_nodes, "h={}, k={}", row.h, row.k);
        }
    }

    #[test]
    fn shuffle_exchange_table_shows_db_route_winning() {
        let rows = shuffle_exchange_table(&[(4, 1), (4, 2), (5, 1)], 5);
        for r in &rows {
            let via = r.via_db_measured.expect("embedding should be found");
            assert!(via <= r.via_db_bound);
            assert!(via <= r.natural_measured);
        }
        let rendered = render_shuffle_exchange(&rows);
        assert_eq!(rendered.row_count(), 3);
    }

    #[test]
    fn shuffle_exchange_table_skips_embedding_beyond_limit() {
        let rows = shuffle_exchange_table(&[(7, 1)], 5);
        assert!(rows[0].via_db_measured.is_none());
        assert_eq!(rows[0].nodes, 129);
    }
}
