//! Regeneration of the paper's figures (FIG1–FIG5) as text and DOT.
//!
//! The five figures of the paper are all small worked examples:
//!
//! 1. `B_{2,4}`, the 16-node base-2 de Bruijn graph;
//! 2. `B^1_{2,4}`, its 17-node fault-tolerant version;
//! 3. the relabelling of `B^1_{2,4}` after one fault (which physical node
//!    plays which logical role, and which edges are used);
//! 4. the bus implementation of `B^1_{2,3}`;
//! 5. the reconfiguration after one fault in the bus implementation.
//!
//! Each `figure*` function returns a plain-text rendering (adjacency table /
//! mapping table) and, where a drawing is meaningful, a Graphviz DOT string
//! so the figure can be rendered graphically with `dot -Tpng`.

use ftdb_core::{BusArchitecture, FaultSet, FtDeBruijn2};
use ftdb_graph::render::{adjacency_table_with_labels, mapping_table, to_dot, DotOptions};
use ftdb_graph::NodeId;
use ftdb_topology::labels::format_label;
use ftdb_topology::DeBruijn2;
use std::fmt::Write as _;

/// A regenerated figure: its identifier, a text rendering, and (optionally)
/// a DOT drawing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Figure {
    /// Figure identifier, e.g. `"FIG1"`.
    pub id: String,
    /// Caption matching the paper's figure caption.
    pub caption: String,
    /// Plain text rendering (adjacency/mapping tables).
    pub text: String,
    /// Graphviz DOT source, when a drawing is meaningful.
    pub dot: Option<String>,
}

/// FIG1: the base-2 four-digit de Bruijn graph `B_{2,4}`.
pub fn figure1() -> Figure {
    let db = DeBruijn2::new(4);
    let labels: Vec<String> = (0..db.node_count()).map(|v| db.label(v)).collect();
    let text = adjacency_table_with_labels(db.graph(), |v| db.label(v));
    let dot = to_dot(
        db.graph(),
        &DotOptions {
            node_labels: Some(labels),
            ..Default::default()
        },
    );
    Figure {
        id: "FIG1".into(),
        caption: "An example of the base-2 four-digit de Bruijn graph B(2,4)".into(),
        text,
        dot: Some(dot),
    }
}

/// FIG2: the fault-tolerant graph `B^1_{2,4}`.
pub fn figure2() -> Figure {
    let ft = FtDeBruijn2::new(4, 1);
    let text = adjacency_table_with_labels(ft.graph(), |v| v.to_string());
    let dot = to_dot(ft.graph(), &DotOptions::default());
    Figure {
        id: "FIG2".into(),
        caption: "An example of the graph B^1(2,4)".into(),
        text,
        dot: Some(dot),
    }
}

/// FIG3: the new labels of `B^1_{2,4}` after one fault. The paper draws the
/// case of a single specific fault; we regenerate the mapping for the given
/// faulty node (the experiments print `faulty = 5`, and the exhaustive sweep
/// in the tests covers all 17 choices).
pub fn figure3(faulty: NodeId) -> Figure {
    let ft = FtDeBruijn2::new(4, 1);
    let faults = FaultSet::from_nodes(ft.node_count(), [faulty]);
    let phi = ft
        .reconfigure_verified(&faults)
        .expect("B^1(2,4) tolerates every single fault");
    let pairs: Vec<(String, String)> = phi
        .as_slice()
        .iter()
        .enumerate()
        .map(|(logical, &physical)| {
            (
                format!("{} ({})", format_label(logical, 2, 4), logical),
                format!("physical {physical}"),
            )
        })
        .collect();
    let mut text = String::new();
    let _ = writeln!(text, "fault at physical node {faulty}");
    text.push_str(&mapping_table(
        "new labels after reconfiguration (logical de Bruijn label -> physical node)",
        &pairs,
    ));
    // The "solid edges used after reconfiguration" of the paper's figure:
    // the images of the target edges.
    let bold_edges: Vec<(NodeId, NodeId)> = ft
        .target()
        .graph()
        .edges()
        .map(|(x, y)| (phi.apply(x), phi.apply(y)))
        .collect();
    let dot = to_dot(
        ft.graph(),
        &DotOptions {
            node_labels: None,
            highlighted: vec![faulty],
            bold_edges,
        },
    );
    Figure {
        id: "FIG3".into(),
        caption: "An example of the new labels of B^1(2,4) after one fault".into(),
        text,
        dot: Some(dot),
    }
}

/// FIG4: the bus implementation of `B^1_{2,3}` — one bus per node, spanning
/// the block of `2k + 2 = 4` consecutive nodes starting at `(2i − 1) mod 9`.
pub fn figure4() -> Figure {
    let arch = BusArchitecture::new(3, 1);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "# bus implementation of B^1(2,3): {} nodes, {} buses, bus-degree <= {}",
        arch.node_count(),
        arch.buses().len(),
        arch.degree_bound()
    );
    for bus in arch.buses() {
        let members: Vec<String> = bus.members.iter().map(ToString::to_string).collect();
        let _ = writeln!(text, "bus {:>2} : {}", bus.owner, members.join(" "));
    }
    let _ = writeln!(text, "max bus-degree measured: {}", arch.max_bus_degree());
    Figure {
        id: "FIG4".into(),
        caption: "An example of the graph B^1(2,3) using bus implementation".into(),
        text,
        dot: None,
    }
}

/// FIG5: reconfiguration after one fault in the bus implementation of
/// `B^1_{2,3}`.
pub fn figure5(faulty: NodeId) -> Figure {
    let ft = FtDeBruijn2::new(3, 1);
    let arch = BusArchitecture::from_ft(&ft);
    let faults = FaultSet::from_nodes(ft.node_count(), [faulty]);
    let phi = ft
        .reconfigure_verified(&faults)
        .expect("B^1(2,3) tolerates every single fault");
    let mut text = String::new();
    let _ = writeln!(text, "fault at physical node {faulty}");
    let pairs: Vec<(String, String)> = phi
        .as_slice()
        .iter()
        .enumerate()
        .map(|(logical, &physical)| {
            let bus = arch.bus_of(physical);
            (
                format!("{} ({})", format_label(logical, 2, 3), logical),
                format!("physical {physical}, bus members {:?}", bus.members),
            )
        })
        .collect();
    text.push_str(&mapping_table(
        "reconfiguration in the bus implementation (logical -> physical, with the bus it drives)",
        &pairs,
    ));
    Figure {
        id: "FIG5".into(),
        caption: "An example of the reconfiguration after one fault in the graph B^1(2,3) using bus implementation".into(),
        text,
        dot: None,
    }
}

/// All five figures with the default fault choices used in `EXPERIMENTS.md`.
pub fn all_figures() -> Vec<Figure> {
    vec![figure1(), figure2(), figure3(5), figure4(), figure5(4)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_paper_dimensions() {
        let f = figure1();
        assert_eq!(f.id, "FIG1");
        assert!(f.text.contains("0110"));
        // 16 node lines plus the header line.
        assert_eq!(f.text.lines().count(), 17);
        assert!(f.dot.as_ref().unwrap().contains("n0 -- n1"));
    }

    #[test]
    fn figure2_has_17_nodes() {
        let f = figure2();
        assert_eq!(f.text.lines().count(), 18);
        assert!(f.text.contains("B^1(2,4)"));
    }

    #[test]
    fn figure3_marks_the_fault_and_uses_16_logical_nodes() {
        let f = figure3(5);
        assert!(f.text.contains("fault at physical node 5"));
        // 16 mapping rows + fault line + table header.
        assert_eq!(f.text.lines().count(), 18);
        // The faulty node never appears as an image.
        assert!(!f.text.contains("physical 5\n"));
        let dot = f.dot.unwrap();
        assert!(dot.contains("fillcolor=gray"));
        assert!(dot.contains("style=bold"));
    }

    #[test]
    fn figure3_works_for_every_possible_fault() {
        for faulty in 0..17 {
            let f = figure3(faulty);
            assert!(f.text.contains(&format!("fault at physical node {faulty}")));
        }
    }

    #[test]
    fn figure4_lists_one_bus_per_node() {
        let f = figure4();
        assert_eq!(f.text.matches("bus ").count(), 9 + 1); // 9 bus lines + header mention
        assert!(f.text.contains("bus-degree <= 5"));
    }

    #[test]
    fn figure5_describes_reconfiguration() {
        let f = figure5(4);
        assert!(f.text.contains("fault at physical node 4"));
        assert!(f.text.contains("bus members"));
    }

    #[test]
    fn all_figures_are_generated() {
        let figs = all_figures();
        assert_eq!(figs.len(), 5);
        assert_eq!(figs[0].id, "FIG1");
        assert_eq!(figs[4].id, "FIG5");
    }
}
