//! # ftdb-analysis
//!
//! Analysis and reporting layer: everything needed to regenerate the
//! paper's figures, its comparison against prior constructions, and the
//! corollary degree bounds, in a form suitable for `EXPERIMENTS.md` and for
//! the `experiments` binary in `ftdb-bench`.
//!
//! * [`comparison`] — the "ours vs. Samatham–Pradhan" node/degree tables
//!   (experiments TAB1 and TAB2) and the shuffle-exchange degree table
//!   (TAB3).
//! * [`corollaries`] — parameter sweeps checking Corollaries 1–4 by
//!   construction and measurement (experiment COR1-4) and the exhaustive
//!   tolerance verification sweep (THM1-2).
//! * [`figures`] — text/DOT renderings of Figures 1–5.
//! * [`sim_experiments`] — the SIM1 (Ascend slowdown under faults) and SIM2
//!   (bus slowdown) tables built on `ftdb-sim`.
//! * [`ablation`] — ablations of the design choices: offset shaving (ABL1)
//!   and rank-map vs search-based reconfiguration (ABL2).
//! * [`report`] — plain-text table formatting and JSON export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod comparison;
pub mod corollaries;
pub mod figures;
pub mod reliability;
pub mod report;
pub mod sim_experiments;

pub use report::TextTable;
