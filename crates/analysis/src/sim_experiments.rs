//! The simulation experiments SIM1 and SIM2.
//!
//! * **SIM1** instantiates the paper's motivating claim: an Ascend-class
//!   algorithm (all-reduce) on a shuffle-exchange machine runs at full speed
//!   when healthy, *stalls* when a single processor fails and there are no
//!   spares, and runs at full speed again when the machine is the
//!   fault-tolerant `B^k_{2,h}` and the rank-based reconfiguration is
//!   applied. The table reports steps and slowdown versus the native
//!   hypercube.
//! * **SIM2** quantifies Section V's bus trade-off: the bus implementation
//!   costs a factor of ≈ 2 only when processors are multi-ported, and
//!   (almost) nothing when they are single-ported. It additionally reports a
//!   routed-workload comparison on healthy vs. faulty vs. reconfigured
//!   machines.

use crate::report::{fmt_f64, fmt_steps, TextTable};
use ftdb_core::{FaultSet, FtDeBruijn2, FtShuffleExchange};
use ftdb_graph::Embedding;
use ftdb_sim::ascend_descend::{allreduce_hypercube, allreduce_shuffle_exchange};
use ftdb_sim::bus_model::bus_timing_table;
use ftdb_sim::congestion::{
    run_recovery, CongestionConfig, CongestionSim, FaultResponse, FlowControl, OpenLoopReport,
    ShardedSim, Switching,
};
use ftdb_sim::machine::{PhysicalMachine, PortModel};
use ftdb_sim::metrics::SlowdownRow;
use ftdb_sim::routing::run_logical_workload;
use ftdb_sim::workload;
use ftdb_topology::{DeBruijn2, ShuffleExchange};
use rand::SeedableRng;

/// Runs SIM1 for a given `h` and fault budget `k`, with `fault_node`
/// injected in the faulty scenarios. Returns one [`SlowdownRow`] per
/// scenario.
pub fn sim1_ascend_slowdown(h: usize, k: usize, fault_node: usize) -> Vec<SlowdownRow> {
    let se = ShuffleExchange::new(h);
    let n = se.node_count();
    let values = workload::index_values(n);
    let reference = allreduce_hypercube(h, &values);
    let expected_total = reference.values[0];
    let mut rows = Vec::new();
    rows.push(SlowdownRow {
        scenario: "hypercube (reference)".into(),
        steps: Some(reference.steps),
        reference_steps: reference.steps.max(1),
    });

    // Healthy shuffle-exchange, no spares.
    let healthy = PhysicalMachine::new(se.graph().clone(), PortModel::MultiPort);
    let identity = Embedding::identity(n);
    let out = allreduce_shuffle_exchange(&se, &identity, &healthy, &values)
        .expect("healthy machine must complete");
    assert!(out.values.iter().all(|&v| v == expected_total));
    rows.push(SlowdownRow {
        scenario: "shuffle-exchange, healthy".into(),
        steps: Some(out.steps),
        reference_steps: reference.steps.max(1),
    });

    // One fault, no spares: the run stalls.
    let mut faulty = PhysicalMachine::new(se.graph().clone(), PortModel::MultiPort);
    faulty.inject_fault(fault_node % n);
    let stalled = allreduce_shuffle_exchange(&se, &identity, &faulty, &values);
    rows.push(SlowdownRow {
        scenario: format!(
            "shuffle-exchange, 1 fault (node {}), no spares",
            fault_node % n
        ),
        steps: stalled.ok().map(|o| o.steps),
        reference_steps: reference.steps.max(1),
    });

    // k faults on the fault-tolerant machine, reconfigured.
    let ft = FtShuffleExchange::new(h, k).expect("SE ⊆ DB embedding available for this h");
    let mut rng = rand::rngs::StdRng::seed_from_u64(fault_node as u64);
    let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
    let placement = ft
        .reconfigure_verified(&faults)
        .expect("reconfiguration must succeed for <= k faults");
    let machine = PhysicalMachine::with_faults(ft.graph().clone(), faults, PortModel::MultiPort);
    let out = allreduce_shuffle_exchange(&se, &placement, &machine, &values)
        .expect("reconfigured fault-tolerant machine must complete");
    assert!(out.values.iter().all(|&v| v == expected_total));
    rows.push(SlowdownRow {
        scenario: format!("B^{k}(2,{h}) with {k} faults, reconfigured"),
        steps: Some(out.steps),
        reference_steps: reference.steps.max(1),
    });
    rows
}

/// Renders the SIM1 rows as a [`TextTable`].
pub fn render_sim1(h: usize, k: usize, rows: &[SlowdownRow]) -> TextTable {
    let mut table = TextTable::new(
        format!("SIM1: Ascend all-reduce on 2^{h} logical nodes (k = {k})"),
        &["scenario", "steps", "slowdown vs hypercube"],
    );
    for r in rows {
        table.push_row(vec![
            r.scenario.clone(),
            fmt_steps(r.steps),
            r.slowdown().map_or("-".to_string(), fmt_f64),
        ]);
    }
    table
}

/// Runs the SIM2 bus-timing table for the standard fanouts.
pub fn sim2_bus_table() -> TextTable {
    let rows = bus_timing_table(&[1, 2, 4, 8]);
    let mut table = TextTable::new(
        "SIM2: bus implementation timing (slots per superstep)",
        &[
            "distinct values/node",
            "p2p multi-port",
            "p2p single-port",
            "bus",
            "bus vs multi-port",
            "bus vs single-port",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.fanout.to_string(),
            r.p2p_multi_port.to_string(),
            r.p2p_single_port.to_string(),
            r.bus.to_string(),
            fmt_f64(r.slowdown_vs_multi_port),
            fmt_f64(r.slowdown_vs_single_port),
        ]);
    }
    table
}

/// A routed-workload comparison (part of SIM1's narrative): delivery ratio
/// and latency of an oblivious de Bruijn-routed permutation workload on a
/// healthy machine, a faulted machine without spares, and the reconfigured
/// fault-tolerant machine.
pub fn sim1_routing_table(h: usize, k: usize, seed: u64) -> TextTable {
    let db = DeBruijn2::new(h);
    let n = db.node_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pairs = workload::permutation_pairs(n, &mut rng);

    let mut table = TextTable::new(
        format!(
            "SIM1b: oblivious de Bruijn routing of a random permutation (2^{h} nodes, k = {k})"
        ),
        &[
            "scenario",
            "delivered",
            "dropped",
            "delivery ratio",
            "mean hops",
            "max hops",
        ],
    );
    let mut push = |label: &str, stats: ftdb_sim::metrics::RoutingStats| {
        table.push_row(vec![
            label.to_string(),
            stats.delivered.to_string(),
            stats.dropped.to_string(),
            fmt_f64(stats.delivery_ratio()),
            fmt_f64(stats.mean_hops()),
            stats.max_hops.to_string(),
        ]);
    };

    // Healthy, no spares.
    let healthy = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
    push(
        "plain B(2,h), healthy",
        run_logical_workload(&db, &Embedding::identity(n), &healthy, &pairs),
    );

    // Faulty, no spares.
    let mut faulted = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
    faulted.inject_fault(1);
    push(
        "plain B(2,h), 1 fault, no spares",
        run_logical_workload(&db, &Embedding::identity(n), &faulted, &pairs),
    );

    // Fault-tolerant, reconfigured.
    let ft = ftdb_core::FtDeBruijn2::new(h, k);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
    let faults = FaultSet::random(ft.node_count(), k, &mut rng).expect("k within node count");
    let placement = ft
        .reconfigure_verified(&faults)
        .expect("reconfiguration succeeds");
    let machine = PhysicalMachine::with_faults(ft.graph().clone(), faults, PortModel::MultiPort);
    push(
        "B^k(2,h), k faults, reconfigured",
        run_logical_workload(&db, &placement, &machine, &pairs),
    );
    table
}

/// SIM3: cycle-level congestion on `B(2,h)` — the four canonical traffic
/// patterns under both port models. Where SIM1 reports *whether* packets
/// arrive, SIM3 reports *when*: makespan cycles, cycles/packet, mean and
/// p95 latency, network throughput (flits/cycle) and the heaviest link.
pub fn sim3_congestion_table(h: usize, seed: u64) -> TextTable {
    let db = DeBruijn2::new(h);
    let n = db.node_count();
    let placement = Embedding::identity(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let workloads: Vec<(&str, Vec<(usize, usize)>)> = vec![
        ("permutation", workload::permutation_pairs(n, &mut rng)),
        ("bit-reversal", workload::bit_reversal_pairs(h)),
        ("hot-spot (root 0)", workload::all_to_one(n, 0)),
        ("uniform 4x", workload::uniform_pairs(n, 4 * n, &mut rng)),
    ];
    let mut table = TextTable::new(
        format!("SIM3: cycle-level congestion on B(2,{h}) ({n} nodes)"),
        &[
            "workload",
            "ports",
            "packets",
            "cycles",
            "cycles/packet",
            "mean latency",
            "p95 latency",
            "flits/cycle",
            "max link flits",
        ],
    );
    for (label, pairs) in &workloads {
        for (port, port_label) in [
            (PortModel::MultiPort, "multi"),
            (PortModel::SinglePort, "single"),
        ] {
            let machine = PhysicalMachine::new(db.graph().clone(), port);
            let mut sim = CongestionSim::new(machine, CongestionConfig::default());
            sim.load_oblivious(&db, &placement, pairs);
            let report = sim.run();
            table.push_row(vec![
                label.to_string(),
                port_label.to_string(),
                report.injected.to_string(),
                report.cycles.to_string(),
                fmt_f64(report.cycles_per_packet()),
                fmt_f64(report.latency.mean),
                report.latency.p95.to_string(),
                fmt_f64(report.flits_per_cycle()),
                sim.max_link_load().to_string(),
            ]);
        }
    }
    table
}

/// SIM4: dynamic fault injection with online recovery on `B^k(2,h)` — a
/// permutation is in flight when `k` processors die mid-run; the runtime
/// reconfigures (`reconfigure_verified`) and re-routes the survivors the
/// same cycle. The table reports the measured recovery latency.
pub fn sim4_recovery_table(h: usize, k: usize, fault_cycle: u32, seed: u64) -> TextTable {
    let ft = FtDeBruijn2::new(h, k);
    let n = ft.target().node_count();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pairs = workload::permutation_pairs(n, &mut rng);
    let mut table = TextTable::new(
        format!("SIM4: mid-run faults + online reconfiguration on B^{k}(2,{h})"),
        &[
            "faults",
            "fault cycle",
            "total cycles",
            "drain cycles",
            "delivered",
            "lost on dead nodes",
            "rerouted",
        ],
    );
    for faults in 1..=k {
        // Kill `faults` distinct processors at the same cycle.
        let schedule: Vec<(u32, usize)> = (0..faults)
            .map(|i| (fault_cycle, (i * 7 + 3) % ft.node_count()))
            .collect();
        let outcome = run_recovery(
            &ft,
            &pairs,
            &schedule,
            PortModel::MultiPort,
            CongestionConfig {
                fault_response: FaultResponse::RerouteAdaptive,
                ..CongestionConfig::default()
            },
        )
        .expect("schedule within the fault budget");
        table.push_row(vec![
            faults.to_string(),
            outcome.fault_cycle.to_string(),
            outcome.report.cycles.to_string(),
            outcome.drain_cycles.to_string(),
            outcome.report.delivered.to_string(),
            outcome.lost_on_dead_nodes.to_string(),
            outcome.rerouted.to_string(),
        ]);
    }
    table
}

/// One scenario of the SIM5 offered-load sweep: a machine (healthy or
/// faulted `B^k(2,h)`), a port model and a flow-control setting, measured at
/// each offered load in turn.
#[derive(Clone, Copy, Debug)]
pub struct SweepScenario {
    /// De Bruijn order of the logical target `B(2,h)`.
    pub h: usize,
    /// Spare budget of the fault-tolerant host `B^k(2,h)`.
    pub k: usize,
    /// Processors to kill (≤ `k`); the placement is reconfigured around
    /// them before traffic starts, so the sweep measures congestion on the
    /// *recovered* machine, not feasibility.
    pub fault_count: usize,
    /// Output-port discipline.
    pub port: PortModel,
    /// Buffer sizing.
    pub flow: FlowControl,
}

/// The canonical open-loop spec for one SIM5 sweep point.
fn sim5_spec(offered_load: f64, seed: u64) -> ftdb_sim::workload::OpenLoopSpec {
    ftdb_sim::workload::OpenLoopSpec {
        offered_load,
        process: ftdb_sim::workload::InjectionProcess::Bernoulli,
        warmup_cycles: 150,
        measure_cycles: 300,
        drain_cycles: 450,
        seed,
    }
}

/// Measures one contiguous chunk of sweep points on a single worker: one
/// warmed [`CongestionSim`] (and one injection-schedule buffer) serves the
/// whole chunk through [`CongestionSim::clear_workload`], so per-point cost
/// is the simulation itself, not engine construction.
fn sweep_chunk(
    ft: &FtDeBruijn2,
    faults: &FaultSet,
    placement: &Embedding,
    config: CongestionConfig,
    port: PortModel,
    loads: &[f64],
    seed: u64,
) -> Vec<OpenLoopReport> {
    let machine = PhysicalMachine::with_faults(ft.graph().clone(), faults.clone(), port);
    let mut sim = CongestionSim::new(machine, config);
    let mut injections = Vec::new();
    let logical_n = ft.target().node_count();
    loads
        .iter()
        .map(|&offered_load| {
            let spec = sim5_spec(offered_load, seed);
            ftdb_sim::workload::open_loop_injections_into(logical_n, &spec, &mut injections);
            sim.clear_workload();
            sim.load_oblivious_timed(ft.target(), placement, &injections);
            ftdb_sim::congestion::measure_open_loop(&mut sim, &spec)
        })
        .collect()
}

/// Runs one latency–throughput curve: an open-loop Bernoulli run per
/// offered load. Deterministic for a fixed `(scenario, loads, seed)`.
/// Single-threaded form of [`sim5_load_sweep_parallel`].
pub fn sim5_load_sweep(scenario: &SweepScenario, loads: &[f64], seed: u64) -> Vec<OpenLoopReport> {
    sim5_load_sweep_parallel(scenario, loads, seed, 1)
}

/// Runs one latency–throughput curve with the sweep points fanned out over
/// `threads` crossbeam scoped workers (the pattern of
/// `ftdb_sim::routing::run_logical_workload_batched`): every point is an
/// independent `(load, fault-set, seed)` simulation, each worker reuses one
/// warmed engine across its contiguous chunk, and the chunks are merged in
/// load order after the join — so the result is byte-identical to the
/// sequential sweep for any thread count.
pub fn sim5_load_sweep_parallel(
    scenario: &SweepScenario,
    loads: &[f64],
    seed: u64,
    threads: usize,
) -> Vec<OpenLoopReport> {
    let ft = FtDeBruijn2::new(scenario.h, scenario.k.max(1));
    // Kill processors that are actually *in use* by the zero-fault
    // placement (a random pick could land on an idle spare, making the
    // "faulted" sweep identical to the healthy one).
    let initial = ft.reconfigure(&FaultSet::empty(ft.node_count()));
    let logical_n = ft.target().node_count();
    let mut faults = FaultSet::empty(ft.node_count());
    for i in 0..scenario.fault_count {
        faults.add(initial.apply((i * 37 + 1) % logical_n));
    }
    let placement = ft
        .reconfigure_verified(&faults)
        .expect("fault count within the construction's budget");
    let config = CongestionConfig {
        flow_control: scenario.flow,
        ..CongestionConfig::default()
    };
    let threads = sweep_worker_count(threads, loads.len());
    if threads == 1 {
        return sweep_chunk(&ft, &faults, &placement, config, scenario.port, loads, seed);
    }
    let chunk = loads.len().div_ceil(threads);
    let mut points = Vec::with_capacity(loads.len());
    let (ft, faults, placement) = (&ft, &faults, &placement);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = loads
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move |_| {
                    sweep_chunk(ft, faults, placement, config, scenario.port, slice, seed)
                })
            })
            .collect();
        for handle in handles {
            points.extend(handle.join().expect("sweep worker panicked"));
        }
    })
    .expect("sweep scope panicked");
    points
}

/// Renders one SIM5 curve as a [`TextTable`].
pub fn render_sim5(title: String, points: &[OpenLoopReport]) -> TextTable {
    let mut table = TextTable::new(
        title,
        &[
            "offered",
            "realized",
            "throughput",
            "accepted",
            "mean latency",
            "p95 latency",
            "deadlock",
        ],
    );
    for p in points {
        table.push_row(vec![
            fmt_f64(p.offered_load),
            fmt_f64(p.offered_realized),
            format!("{:.4}", p.throughput),
            fmt_f64(p.accepted),
            fmt_f64(p.latency.mean),
            p.latency.p95.to_string(),
            if p.deadlocked {
                "yes".to_string()
            } else {
                "-".to_string()
            },
        ]);
    }
    table
}

/// The canonical SIM5 scenario grid for the `experiments -- sim-loadsweep`
/// driver: healthy vs. faulted `B^1(2,h)`, MultiPort vs. SinglePort, and
/// buffer depths {∞, 4, 2, 1} on the faulted machine. Each curve's sweep
/// points are fanned out over `threads` workers; the rendered tables are
/// byte-identical for any thread count.
pub fn sim5_tables(h: usize, loads: &[f64], seed: u64, threads: usize) -> Vec<TextTable> {
    let mut tables = Vec::new();
    let scenarios: Vec<(String, SweepScenario)> = vec![
        (
            format!("SIM5a: healthy B^1(2,{h}), multi-port, infinite buffers"),
            SweepScenario {
                h,
                k: 1,
                fault_count: 0,
                port: PortModel::MultiPort,
                flow: FlowControl::Infinite,
            },
        ),
        (
            format!(
                "SIM5b: faulted B^1(2,{h}) (1 fault, reconfigured), multi-port, infinite buffers"
            ),
            SweepScenario {
                h,
                k: 1,
                fault_count: 1,
                port: PortModel::MultiPort,
                flow: FlowControl::Infinite,
            },
        ),
        (
            format!("SIM5c: faulted B^1(2,{h}), multi-port, credit flow control, depth 4"),
            SweepScenario {
                h,
                k: 1,
                fault_count: 1,
                port: PortModel::MultiPort,
                flow: FlowControl::CreditBased { buffer_depth: 4 },
            },
        ),
        (
            format!("SIM5d: faulted B^1(2,{h}), multi-port, credit flow control, depth 2"),
            SweepScenario {
                h,
                k: 1,
                fault_count: 1,
                port: PortModel::MultiPort,
                flow: FlowControl::CreditBased { buffer_depth: 2 },
            },
        ),
        (
            format!("SIM5e: faulted B^1(2,{h}), multi-port, credit flow control, depth 1"),
            SweepScenario {
                h,
                k: 1,
                fault_count: 1,
                port: PortModel::MultiPort,
                flow: FlowControl::CreditBased { buffer_depth: 1 },
            },
        ),
        (
            format!("SIM5f: faulted B^1(2,{h}), single-port, credit flow control, depth 2"),
            SweepScenario {
                h,
                k: 1,
                fault_count: 1,
                port: PortModel::SinglePort,
                flow: FlowControl::CreditBased { buffer_depth: 2 },
            },
        ),
    ];
    for (title, scenario) in scenarios {
        let points = sim5_load_sweep_parallel(&scenario, loads, seed, threads);
        tables.push(render_sim5(title, &points));
    }
    tables
}

/// Effective worker count for a sweep of `points` points requested at
/// `threads` workers — the clamp [`sim5_load_sweep_parallel`] applies before
/// spawning. Exposed so drivers (`perf_report`) record the worker count
/// that actually ran rather than the one requested.
pub fn sweep_worker_count(threads: usize, points: usize) -> usize {
    threads.max(1).min(points.max(1))
}

/// Injection windows for a SIM6 sharded open-loop run. The SIM5 windows
/// (150/300/450 cycles) multiply into hundreds of millions of injections at
/// `B(2,20)`; million-node runs use shorter windows with a generous drain.
#[derive(Clone, Copy, Debug)]
pub struct ShardedSweepSpec {
    /// Cycles injected before the measurement window opens.
    pub warmup_cycles: u32,
    /// Cycles in the measurement window.
    pub measure_cycles: u32,
    /// Cycles the run may keep draining after injection stops.
    pub drain_cycles: u32,
    /// Injection-schedule seed.
    pub seed: u64,
}

/// SIM6: an open-loop latency–throughput sweep on a healthy `B(2,h)`
/// executed by the sharded engine ([`ShardedSim`]) under credit flow
/// control. Deterministic for fixed inputs and — the property the CI
/// shard-determinism job diffs — *independent of `shards` and `threads`*:
/// the rendered table is byte-identical for any partition.
pub fn sim6_sharded_sweep(
    h: usize,
    loads: &[f64],
    windows: &ShardedSweepSpec,
    shards: usize,
    threads: usize,
) -> Vec<OpenLoopReport> {
    let db = DeBruijn2::new(h);
    let n = db.node_count();
    let placement = Embedding::identity(n);
    let config = CongestionConfig {
        flow_control: FlowControl::CreditBased { buffer_depth: 4 },
        ..CongestionConfig::default()
    };
    let mut injections = Vec::new();
    loads
        .iter()
        .map(|&offered_load| {
            let spec = ftdb_sim::workload::OpenLoopSpec {
                offered_load,
                process: ftdb_sim::workload::InjectionProcess::Bernoulli,
                warmup_cycles: windows.warmup_cycles,
                measure_cycles: windows.measure_cycles,
                drain_cycles: windows.drain_cycles,
                seed: windows.seed,
            };
            ftdb_sim::workload::open_loop_injections_into(n, &spec, &mut injections);
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            let mut sim = ShardedSim::new(machine, config, shards, threads);
            sim.load_oblivious_timed(&db, &placement, &injections);
            ftdb_sim::congestion::measure_open_loop(&mut sim, &spec)
        })
        .collect()
}

/// The canned SIM6 grid for `experiments -- sim-sharded`: small enough for
/// CI, congested enough to exercise credit back-pressure and the boundary
/// channels (the top loads sit past the saturation knee).
pub fn sim6_tables(h: usize, seed: u64, shards: usize, threads: usize) -> Vec<TextTable> {
    let windows = ShardedSweepSpec {
        warmup_cycles: 100,
        measure_cycles: 200,
        drain_cycles: 400,
        seed,
    };
    let loads = [0.05, 0.15, 0.30, 0.50];
    let points = sim6_sharded_sweep(h, &loads, &windows, shards, threads);
    vec![render_sim5(
        format!("SIM6: healthy B(2,{h}), sharded engine, credit flow control, depth 4"),
        &points,
    )]
}

/// The canned SIM7 grid for `experiments -- sim-vc`: virtual-channel and
/// wormhole flow control on the sharded engine. The grid pairs the depth-1
/// hot-spot that hard-deadlocks single-channel credit flow (it drains once
/// `vcs >= 2` — the dateline story of `docs/CONGESTION.md`, visible as
/// table rows) with a draining permutation batch, under both switching
/// modes. The CI VC-determinism step runs this for `--vcs 1/2/4`, diffing
/// each VC count across `--shards 1/2/4`: like every sharded output, the
/// rendered table must be byte-identical for any partition and thread
/// count.
pub fn sim7_vc_tables(
    h: usize,
    seed: u64,
    vcs: u32,
    shards: usize,
    threads: usize,
) -> Vec<TextTable> {
    let db = DeBruijn2::new(h);
    let n = db.node_count();
    let placement = Embedding::identity(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let workloads = [
        ("hot-spot (root 2)", 1u32, workload::all_to_one(n, 2)),
        ("permutation", 2, workload::permutation_pairs(n, &mut rng)),
    ];
    let mut table = TextTable::new(
        format!("SIM7: virtual-channel flow control on B(2,{h}), sharded engine, vcs = {vcs}"),
        &[
            "workload",
            "depth",
            "switching",
            "cycles",
            "delivered",
            "deadlocked",
            "flits",
            "flits/VC",
            "HoL-blocked cycles",
        ],
    );
    for (label, depth, pairs) in &workloads {
        for (switching, sw_label) in [
            (Switching::StoreAndForward, "store-and-forward"),
            (Switching::Wormhole { packet_flits: 4 }, "wormhole x4"),
        ] {
            let config = CongestionConfig {
                flow_control: FlowControl::VirtualChannel {
                    vcs,
                    buffer_depth: *depth,
                    switching,
                },
                ..CongestionConfig::default()
            };
            let machine = PhysicalMachine::new(db.graph().clone(), PortModel::MultiPort);
            let mut sim = ShardedSim::new(machine, config, shards, threads);
            sim.load_oblivious(&db, &placement, pairs);
            let report = sim.run();
            let vc_split = report
                .vc_flits
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join("/");
            table.push_row(vec![
                label.to_string(),
                depth.to_string(),
                sw_label.to_string(),
                report.cycles.to_string(),
                report.delivered.to_string(),
                if report.deadlocked { "yes" } else { "no" }.to_string(),
                report.total_flits.to_string(),
                vc_split,
                report.vc_hol_blocked_cycles.iter().sum::<u64>().to_string(),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim1_rows_tell_the_paper_story() {
        let rows = sim1_ascend_slowdown(4, 1, 5);
        assert_eq!(rows.len(), 4);
        // Reference: h steps, slowdown 1.
        assert_eq!(rows[0].steps, Some(4));
        // Healthy SE: 2h steps, slowdown 2.
        assert_eq!(rows[1].steps, Some(8));
        assert_eq!(rows[1].slowdown(), Some(2.0));
        // One fault, no spares: stalled.
        assert_eq!(rows[2].steps, None);
        // Fault-tolerant, reconfigured: back to 2h.
        assert_eq!(rows[3].steps, Some(8));
    }

    #[test]
    fn sim1_renders_with_stalled_marker() {
        let rows = sim1_ascend_slowdown(3, 1, 2);
        let table = render_sim1(3, 1, &rows);
        let text = table.render();
        assert!(text.contains("stalled"));
        assert!(text.contains("hypercube"));
    }

    #[test]
    fn sim2_table_shows_factor_two() {
        let table = sim2_bus_table();
        let text = table.render();
        assert!(text.contains("2.00"));
        assert!(text.contains("1.00"));
        assert_eq!(table.row_count(), 4);
    }

    #[test]
    fn sim3_congestion_table_covers_all_workloads_and_ports() {
        let table = sim3_congestion_table(4, 7);
        assert_eq!(table.row_count(), 8); // 4 workloads x 2 port models
        let text = table.render();
        assert!(text.contains("permutation"));
        assert!(text.contains("bit-reversal"));
        assert!(text.contains("hot-spot"));
        assert!(text.contains("uniform"));
        assert!(text.contains("single"));
    }

    #[test]
    fn sim4_recovery_table_reports_drain_latency() {
        let table = sim4_recovery_table(4, 2, 2, 11);
        assert_eq!(table.row_count(), 2);
        let text = table.render();
        assert!(text.contains("drain cycles"));
    }

    #[test]
    fn sim7_vc_table_tells_the_dateline_story_identically_across_shards() {
        // One VC wedges the depth-1 hot-spot; two drain it. The rendered
        // table is the CI determinism artifact, so it must also be
        // byte-identical across shard counts.
        let single_vc = sim7_vc_tables(5, 0xF7DB, 1, 1, 1);
        let text = single_vc[0].render();
        assert!(text.contains("yes"), "vcs = 1 hot-spot rows deadlock");
        let two_vc = sim7_vc_tables(5, 0xF7DB, 2, 1, 1);
        assert_eq!(two_vc[0].row_count(), 4);
        let text = two_vc[0].render();
        assert!(!text.contains("yes"), "vcs = 2 drains the whole grid");
        for shards in [2usize, 4] {
            let other = sim7_vc_tables(5, 0xF7DB, 2, shards, 1);
            assert_eq!(other[0].render(), text, "shards = {shards}");
        }
    }

    #[test]
    fn sim5_sweep_points_are_deterministic_and_conserving() {
        let scenario = SweepScenario {
            h: 5,
            k: 1,
            fault_count: 1,
            port: PortModel::MultiPort,
            flow: FlowControl::CreditBased { buffer_depth: 2 },
        };
        let loads = [0.1, 0.6];
        let a = sim5_load_sweep(&scenario, &loads, 3);
        let b = sim5_load_sweep(&scenario, &loads, 3);
        assert_eq!(a, b, "same scenario + seed must reproduce exactly");
        for point in &a {
            assert!(point.cum_delivered_by_window_end <= point.cum_injected_by_window_end);
            assert!(point.window_delivered <= point.window_injected);
        }
        // Low load on the reconfigured machine flows freely.
        assert!(a[0].accepted > 0.9, "low load should deliver: {:?}", a[0]);
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        // The acceptance bar for the harness: fanning sweep points over
        // workers (with per-worker engine reuse) must not change a single
        // byte of the rendered tables, for thread counts that divide the
        // load grid evenly, unevenly, and exceed it.
        let scenario = SweepScenario {
            h: 5,
            k: 1,
            fault_count: 1,
            port: PortModel::MultiPort,
            flow: FlowControl::CreditBased { buffer_depth: 2 },
        };
        let loads = [0.05, 0.2, 0.4, 0.6, 0.8];
        let sequential = sim5_load_sweep(&scenario, &loads, 11);
        for threads in [2usize, 3, 4, 8] {
            let parallel = sim5_load_sweep_parallel(&scenario, &loads, 11, threads);
            assert_eq!(parallel, sequential, "threads={threads}");
            let a = render_sim5("t".into(), &sequential).render();
            let b = render_sim5("t".into(), &parallel).render();
            assert_eq!(a, b, "rendered tables differ at threads={threads}");
        }
    }

    #[test]
    fn sim5_tables_cover_the_scenario_grid() {
        let tables = sim5_tables(5, &[0.1, 0.4], 7, 2);
        assert_eq!(tables.len(), 6);
        let all: Vec<String> = tables.iter().map(|t| t.render()).collect();
        assert!(all[0].contains("healthy"));
        assert!(all.iter().skip(1).all(|t| t.contains("faulted")));
        assert!(all[5].contains("single-port"));
        for text in &all {
            assert!(text.contains("throughput"));
            assert!(text.contains("0.10"), "offered column rendered: {text}");
        }
    }

    #[test]
    fn sim1_routing_table_shows_recovery() {
        let table = sim1_routing_table(4, 2, 99);
        assert_eq!(table.row_count(), 3);
        let text = table.render();
        // Healthy and reconfigured scenarios deliver everything (ratio 1.00);
        // the faulted unprotected scenario drops at least the packets that
        // start or end at the faulty node.
        assert!(text.contains("1.00"));
        let faulted_line = text
            .lines()
            .find(|l| l.contains("no spares"))
            .expect("faulted scenario row present");
        assert!(
            !faulted_line.contains("1.00"),
            "faulted run should drop packets: {faulted_line}"
        );
    }
}
