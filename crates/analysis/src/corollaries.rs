//! Parameter sweeps for the paper's corollaries and theorems
//! (experiments COR1-4 and THM1-2).

use crate::report::TextTable;
use ftdb_core::verify::{verify_exhaustive, verify_sampled, ToleranceReport};
use ftdb_core::{BusArchitecture, FtDeBruijn2, FtDeBruijnM};

/// Which corollary a sweep row instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum Corollary {
    /// Corollary 1: `B^k_{2,h}` has `2^h + k` nodes and degree ≤ `4k + 4`.
    C1,
    /// Corollary 2: `B^1_{2,h}` has `2^h + 1` nodes and degree ≤ 8.
    C2,
    /// Corollary 3: `B^k_{m,h}` has `m^h + k` nodes and degree ≤ `4(m-1)k + 2m`.
    C3,
    /// Corollary 4: `B^1_{m,h}` has `m^h + 1` nodes and degree ≤ `6m − 4`.
    C4,
    /// Section V: the bus implementation has bus-degree ≤ `2k + 3`.
    Bus,
}

/// One row of the corollary sweep: construction parameters, the bound the
/// paper states, and the measured value.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct CorollaryRow {
    /// Which corollary this row checks.
    pub corollary: Corollary,
    /// Base of the target graph.
    pub m: usize,
    /// Digits of the target graph.
    pub h: usize,
    /// Fault budget.
    pub k: usize,
    /// Node count required by the statement.
    pub expected_nodes: usize,
    /// Node count of the constructed graph.
    pub measured_nodes: usize,
    /// Degree bound stated by the paper.
    pub degree_bound: usize,
    /// Measured maximum degree.
    pub measured_degree: usize,
}

impl CorollaryRow {
    /// `true` if the measured values satisfy the statement.
    pub fn holds(&self) -> bool {
        self.measured_nodes == self.expected_nodes && self.measured_degree <= self.degree_bound
    }
}

/// Sweeps Corollaries 1 and 2 (base-2) over the given parameters.
pub fn sweep_base2(hs: &[usize], ks: &[usize]) -> Vec<CorollaryRow> {
    let mut rows = Vec::new();
    for &h in hs {
        for &k in ks {
            let ft = FtDeBruijn2::new(h, k);
            rows.push(CorollaryRow {
                corollary: if k == 1 { Corollary::C2 } else { Corollary::C1 },
                m: 2,
                h,
                k,
                expected_nodes: (1 << h) + k,
                measured_nodes: ft.node_count(),
                degree_bound: 4 * k + 4,
                measured_degree: ft.graph().max_degree(),
            });
        }
    }
    rows
}

/// Sweeps Corollaries 3 and 4 (base-m) over the given parameters.
pub fn sweep_base_m(mhs: &[(usize, usize)], ks: &[usize]) -> Vec<CorollaryRow> {
    let mut rows = Vec::new();
    for &(m, h) in mhs {
        for &k in ks {
            let ft = FtDeBruijnM::new(m, h, k);
            let degree_bound = if k == 1 {
                6 * m - 4
            } else {
                4 * (m - 1) * k + 2 * m
            };
            rows.push(CorollaryRow {
                corollary: if k == 1 { Corollary::C4 } else { Corollary::C3 },
                m,
                h,
                k,
                expected_nodes: m.pow(h as u32) + k,
                measured_nodes: ft.node_count(),
                degree_bound,
                measured_degree: ft.graph().max_degree(),
            });
        }
    }
    rows
}

/// Sweeps the Section V bus-degree bound `2k + 3`.
pub fn sweep_bus(hs: &[usize], ks: &[usize]) -> Vec<CorollaryRow> {
    let mut rows = Vec::new();
    for &h in hs {
        for &k in ks {
            let arch = BusArchitecture::new(h, k);
            rows.push(CorollaryRow {
                corollary: Corollary::Bus,
                m: 2,
                h,
                k,
                expected_nodes: (1 << h) + k,
                measured_nodes: arch.node_count(),
                degree_bound: 2 * k + 3,
                measured_degree: arch.max_bus_degree(),
            });
        }
    }
    rows
}

/// Renders a corollary sweep as a [`TextTable`].
pub fn render_corollaries(title: &str, rows: &[CorollaryRow]) -> TextTable {
    let mut table = TextTable::new(
        title,
        &[
            "corollary",
            "m",
            "h",
            "k",
            "nodes",
            "degree bound",
            "degree measured",
            "holds",
        ],
    );
    for r in rows {
        table.push_row(vec![
            format!("{:?}", r.corollary),
            r.m.to_string(),
            r.h.to_string(),
            r.k.to_string(),
            format!("{}/{}", r.measured_nodes, r.expected_nodes),
            r.degree_bound.to_string(),
            r.measured_degree.to_string(),
            if r.holds() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}

/// One row of the THM1/THM2 tolerance-verification sweep.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct ToleranceRow {
    /// Base of the target graph.
    pub m: usize,
    /// Digits of the target graph.
    pub h: usize,
    /// Fault budget (and fault-set size checked).
    pub k: usize,
    /// Number of fault sets checked.
    pub checked: u64,
    /// Whether every fault set admitted a valid reconfiguration.
    pub tolerant: bool,
    /// Whether the check was exhaustive (`false` = random sampling).
    pub exhaustive: bool,
}

/// Verifies Theorem 1/2 for each parameter triple, exhaustively when
/// `C(m^h + k, k)` does not exceed `exhaustive_limit` and by sampling
/// `sample_count` random fault sets otherwise.
pub fn tolerance_sweep(
    params: &[(usize, usize, usize)],
    exhaustive_limit: u128,
    sample_count: u64,
    threads: usize,
) -> Vec<ToleranceRow> {
    params
        .iter()
        .map(|&(m, h, k)| {
            let (target, host): (ftdb_graph::Graph, ftdb_graph::Graph) = if m == 2 {
                let ft = FtDeBruijn2::new(h, k);
                (ft.target().graph().clone(), ft.graph().clone())
            } else {
                let ft = FtDeBruijnM::new(m, h, k);
                (ft.target().graph().clone(), ft.graph().clone())
            };
            let combos = ftdb_core::fault::Combinations::total(host.node_count(), k);
            let (report, exhaustive): (ToleranceReport, bool) = if combos <= exhaustive_limit {
                (verify_exhaustive(&target, &host, k, threads), true)
            } else {
                (
                    verify_sampled(&target, &host, k, sample_count, 0xF7DB),
                    false,
                )
            };
            ToleranceRow {
                m,
                h,
                k,
                checked: report.checked,
                tolerant: report.is_tolerant(),
                exhaustive,
            }
        })
        .collect()
}

/// Renders the tolerance sweep as a [`TextTable`].
pub fn render_tolerance(rows: &[ToleranceRow]) -> TextTable {
    let mut table = TextTable::new(
        "THM1-2: (k,G)-tolerance verification",
        &["m", "h", "k", "fault sets checked", "mode", "tolerant"],
    );
    for r in rows {
        table.push_row(vec![
            r.m.to_string(),
            r.h.to_string(),
            r.k.to_string(),
            r.checked.to_string(),
            if r.exhaustive {
                "exhaustive"
            } else {
                "sampled"
            }
            .to_string(),
            if r.tolerant { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base2_sweep_all_hold() {
        let rows = sweep_base2(&[3, 4, 5], &[0, 1, 2, 3]);
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().all(CorollaryRow::holds));
        assert!(rows.iter().any(|r| r.corollary == Corollary::C2));
    }

    #[test]
    fn base_m_sweep_all_hold() {
        let rows = sweep_base_m(&[(3, 3), (4, 2), (5, 2)], &[1, 2]);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(CorollaryRow::holds));
        assert!(rows.iter().any(|r| r.corollary == Corollary::C4));
        assert!(rows.iter().any(|r| r.corollary == Corollary::C3));
    }

    #[test]
    fn bus_sweep_all_hold() {
        let rows = sweep_bus(&[3, 4, 5], &[0, 1, 2]);
        assert!(rows.iter().all(CorollaryRow::holds));
    }

    #[test]
    fn render_marks_everything_yes() {
        let rows = sweep_base2(&[3], &[1]);
        let table = render_corollaries("COR", &rows);
        let text = table.render();
        assert!(text.contains("yes"));
        assert!(!text.contains("NO"));
    }

    #[test]
    fn tolerance_sweep_small_instances_exhaustive() {
        let rows = tolerance_sweep(&[(2, 3, 1), (2, 3, 2), (3, 3, 1)], 100_000, 50, 2);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.tolerant));
        assert!(rows.iter().all(|r| r.exhaustive));
        assert_eq!(rows[0].checked, 9);
    }

    #[test]
    fn tolerance_sweep_falls_back_to_sampling() {
        let rows = tolerance_sweep(&[(2, 6, 3)], 100, 25, 2);
        assert!(!rows[0].exhaustive);
        assert_eq!(rows[0].checked, 25);
        assert!(rows[0].tolerant);
        let table = render_tolerance(&rows);
        assert!(table.render().contains("sampled"));
    }
}
