//! Ablation experiments around the paper's design choices.
//!
//! Two questions the paper raises but does not answer empirically:
//!
//! * **ABL1 — are all the extra edges needed?** The construction widens each
//!   de Bruijn edge into a block of `2k + 2` offsets. Using the general
//!   (search-based) notion of tolerance from `ftdb_core::lowerbound`, we ask
//!   whether any single offset can be dropped while preserving
//!   `(k, B_{2,h})`-tolerance. (The paper's conclusion poses the matching
//!   open problem: are the degrees optimal?)
//! * **ABL2 — does the simple rank-based reconfiguration give anything
//!   away?** For every fault set of the small instances we compare the rank
//!   map against a full embedding search on the surviving subgraph: if the
//!   rank map ever failed where some other embedding existed, the paper's
//!   "reconfiguration is trivial" story would weaken. (It never does — that
//!   is Theorem 1 — and the experiment documents it mechanically.)

use crate::report::TextTable;
use ftdb_core::lowerbound::{is_tolerant_general, search_lower_degree, GeneralTolerance};
use ftdb_core::verify::verify_exhaustive;
use ftdb_core::FtDeBruijn2;

/// One row of the ABL1 offset-shaving table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OffsetAblationRow {
    /// Digits of the target graph.
    pub h: usize,
    /// Fault budget.
    pub k: usize,
    /// Measured degree of the full (paper) construction.
    pub paper_degree: usize,
    /// Number of shaved candidates examined (one per dropped offset).
    pub candidates: usize,
    /// Number of shaved candidates that remain tolerant (general sense).
    pub still_tolerant: usize,
    /// The smallest degree among still-tolerant shaved candidates, if any.
    pub best_shaved_degree: Option<usize>,
    /// Number of candidates whose verdict was left unresolved by the search
    /// budget.
    pub unresolved: usize,
}

/// Runs ABL1 for the given `(h, k)` pairs.
pub fn offset_ablation(params: &[(usize, usize)], per_fault_budget: u64) -> Vec<OffsetAblationRow> {
    params
        .iter()
        .map(|&(h, k)| {
            let search = search_lower_degree(h, k, per_fault_budget);
            let still_tolerant = search
                .candidates
                .iter()
                .filter(|c| c.tolerance.is_tolerant())
                .count();
            let unresolved = search
                .candidates
                .iter()
                .filter(|c| matches!(c.tolerance, GeneralTolerance::Unknown { .. }))
                .count();
            let best_shaved_degree = search
                .candidates
                .iter()
                .filter(|c| c.tolerance.is_tolerant())
                .map(|c| c.max_degree)
                .min();
            OffsetAblationRow {
                h,
                k,
                paper_degree: search.paper_degree,
                candidates: search.candidates.len(),
                still_tolerant,
                best_shaved_degree,
                unresolved,
            }
        })
        .collect()
}

/// Renders the ABL1 table.
pub fn render_offset_ablation(rows: &[OffsetAblationRow]) -> TextTable {
    let mut table = TextTable::new(
        "ABL1: can any offset be dropped from B^k(2,h)? (general, search-based tolerance)",
        &[
            "h",
            "k",
            "paper degree",
            "shaved candidates",
            "still tolerant",
            "best shaved degree",
            "unresolved",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.h.to_string(),
            r.k.to_string(),
            r.paper_degree.to_string(),
            r.candidates.to_string(),
            r.still_tolerant.to_string(),
            r.best_shaved_degree
                .map_or("-".to_string(), |d| d.to_string()),
            r.unresolved.to_string(),
        ]);
    }
    table
}

/// One row of the ABL2 rank-map-vs-search table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReconfigAblationRow {
    /// Digits of the target graph.
    pub h: usize,
    /// Fault budget.
    pub k: usize,
    /// Fault sets checked (all of them, exhaustively).
    pub fault_sets: u64,
    /// Fault sets where the rank map succeeded.
    pub rank_map_ok: bool,
    /// Whether a general embedding search also certifies tolerance
    /// (it must, since the rank map is a special case).
    pub search_ok: bool,
}

/// Runs ABL2 for the given `(h, k)` pairs (small instances only).
pub fn reconfig_ablation(
    params: &[(usize, usize)],
    per_fault_budget: u64,
) -> Vec<ReconfigAblationRow> {
    params
        .iter()
        .map(|&(h, k)| {
            let ft = FtDeBruijn2::new(h, k);
            let rank = verify_exhaustive(ft.target().graph(), ft.graph(), k, 4);
            let general = is_tolerant_general(ft.target().graph(), ft.graph(), k, per_fault_budget);
            ReconfigAblationRow {
                h,
                k,
                fault_sets: rank.checked,
                rank_map_ok: rank.is_tolerant(),
                search_ok: general.is_tolerant(),
            }
        })
        .collect()
}

/// Renders the ABL2 table.
pub fn render_reconfig_ablation(rows: &[ReconfigAblationRow]) -> TextTable {
    let mut table = TextTable::new(
        "ABL2: rank-based reconfiguration vs general embedding search",
        &[
            "h",
            "k",
            "fault sets",
            "rank map tolerant",
            "search tolerant",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.h.to_string(),
            r.k.to_string(),
            r.fault_sets.to_string(),
            if r.rank_map_ok { "yes" } else { "NO" }.to_string(),
            if r.search_ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_ablation_small_cases() {
        let rows = offset_ablation(&[(3, 1), (3, 2)], 10_000_000);
        assert_eq!(rows.len(), 2);
        // k = 1: no shaved candidate survives.
        assert_eq!(rows[0].still_tolerant, 0);
        assert!(rows[0].best_shaved_degree.is_none());
        // k = 2 at toy scale: some candidates survive with smaller degree.
        assert!(rows[1].still_tolerant > 0);
        assert!(rows[1].best_shaved_degree.unwrap() < rows[1].paper_degree);
        let table = render_offset_ablation(&rows);
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn reconfig_ablation_agrees_both_ways() {
        let rows = reconfig_ablation(&[(3, 1), (3, 2)], 10_000_000);
        assert!(rows.iter().all(|r| r.rank_map_ok && r.search_ok));
        let text = render_reconfig_ablation(&rows).render();
        assert!(!text.contains("NO"));
    }
}
